"""Result containers and reporting for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.utils.tables import Table


@dataclass
class SeriesResult:
    """One plotted series of a figure: a name plus aligned x/y values."""

    name: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one point."""
        self.x.append(float(x))
        self.y.append(float(y))

    def as_rows(self) -> List[tuple]:
        """Rows of ``(series, x, y)`` for tabular output."""
        return [(self.name, xv, yv) for xv, yv in zip(self.x, self.y, strict=True)]


@dataclass
class ExperimentResult:
    """The data behind one figure of the paper.

    Attributes:
        experiment: experiment identifier (``figure1`` .. ``figure8``).
        title: human-readable description.
        x_label / y_label: axis labels matching the paper's figure.
        series: one :class:`SeriesResult` per plotted curve / bar.
        notes: free-form annotations (scale used, seeds, paper reference
            values) recorded alongside the data.
    """

    experiment: str
    title: str
    x_label: str
    y_label: str
    series: List[SeriesResult] = field(default_factory=list)
    notes: Dict[str, str] = field(default_factory=dict)

    def add_series(self, name: str) -> SeriesResult:
        """Create, register and return a new series."""
        series = SeriesResult(name=name)
        self.series.append(series)
        return series

    def get_series(self, name: str) -> SeriesResult:
        """Return the series with the given name."""
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError("no series named %r in %s" % (name, self.experiment))

    def to_table(self) -> Table:
        """Render all series as one column-aligned table."""
        table = Table(
            [self.x_label, *[s.name for s in self.series]],
            title="%s — %s" % (self.experiment, self.title),
        )
        xs = sorted({x for s in self.series for x in s.x})
        for x in xs:
            row = [
                s.y[s.x.index(x)] if x in s.x else "-" for s in self.series
            ]
            table.add_row(x, *row)
        return table

    def render(self) -> str:
        """Table plus notes, ready to print."""
        lines = [self.to_table().render()]
        if self.notes:
            lines.append("")
            lines.extend(
                "note[%s]: %s" % (key, self.notes[key])
                for key in sorted(self.notes)
            )
        return "\n".join(lines)


__all__ = ["SeriesResult", "ExperimentResult"]
