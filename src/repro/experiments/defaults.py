"""Default scenario and fast/paper scaling for the experiment drivers.

The paper's default Web community (Section 6.1) is expensive to simulate for
every point of every figure, so each experiment accepts a *scale*:

* ``paper`` — the exact default community (n = 10 000, u = 1 000, m = 100,
  v_u = 1 000/day, l = 1.5 years) with measurement windows spanning several
  page lifetimes and multiple repetitions per point;
* ``fast`` — a proportionally scaled-down community (smaller n and shorter
  lifetime, same u/n, m/u and per-user visit rate) with shorter windows and
  fewer repetitions, suitable for CI and the pytest-benchmark harness.

The scaled community keeps the ratios the paper identifies as the governing
characteristics, so the qualitative shape of every figure is preserved; the
absolute QPC/TBP values differ (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.community.config import CommunityConfig
from repro.simulation.config import SimulationConfig

VALID_SCALES = ("paper", "fast", "smoke")


@dataclass(frozen=True)
class ExperimentScale:
    """Bundle of community + simulation settings for one scale level.

    Attributes:
        name: ``"paper"``, ``"fast"`` or ``"smoke"``.
        community: community configuration for the scale.
        warmup_lifetimes: warm-up window in units of the page lifetime.
        measure_lifetimes: measurement window in units of the page lifetime.
        repetitions: number of simulator repetitions per data point.
        probe_horizon_days: trajectory length for probe/TBP experiments.
        solver_quality_groups: quality-grouping granularity of the analytic
            solver at this scale.
    """

    name: str
    community: CommunityConfig
    warmup_lifetimes: float
    measure_lifetimes: float
    repetitions: int
    probe_horizon_days: int
    solver_quality_groups: int

    def simulation_config(self, mode: str = "stochastic", **kwargs) -> SimulationConfig:
        """Simulation window scaled to this community's page lifetime."""
        return SimulationConfig.for_community(
            self.community,
            warmup_lifetimes=self.warmup_lifetimes,
            measure_lifetimes=self.measure_lifetimes,
            mode=mode,
            **kwargs,
        )


def default_community() -> CommunityConfig:
    """The paper's default Web community (Section 6.1)."""
    return CommunityConfig()


def fast_community() -> CommunityConfig:
    """A scaled-down community preserving the paper's ratios.

    u/n = 10%, m/u = 10%, one visit per user per day; n and the lifetime are
    reduced together so warm-up still spans several lifetimes in little time.
    """
    return CommunityConfig(
        n_pages=2_000,
        n_users=200,
        monitored_fraction=0.10,
        visits_per_user_per_day=1.0,
        expected_lifetime_days=200.0,
    )


def smoke_community() -> CommunityConfig:
    """A tiny community for unit tests and smoke checks."""
    return CommunityConfig(
        n_pages=400,
        n_users=40,
        monitored_fraction=0.25,
        visits_per_user_per_day=1.0,
        expected_lifetime_days=60.0,
    )


def scaled_settings(scale: str = "fast") -> ExperimentScale:
    """Return the :class:`ExperimentScale` for a scale name."""
    if scale == "paper":
        return ExperimentScale(
            name="paper",
            community=default_community(),
            warmup_lifetimes=4.0,
            measure_lifetimes=8.0,
            repetitions=3,
            probe_horizon_days=500,
            solver_quality_groups=64,
        )
    if scale == "fast":
        return ExperimentScale(
            name="fast",
            community=fast_community(),
            warmup_lifetimes=4.0,
            measure_lifetimes=8.0,
            repetitions=3,
            probe_horizon_days=300,
            solver_quality_groups=48,
        )
    if scale == "smoke":
        return ExperimentScale(
            name="smoke",
            community=smoke_community(),
            warmup_lifetimes=2.0,
            measure_lifetimes=3.0,
            repetitions=1,
            probe_horizon_days=100,
            solver_quality_groups=24,
        )
    raise ValueError("scale must be one of %s, got %r" % (VALID_SCALES, scale))


__all__ = [
    "ExperimentScale",
    "default_community",
    "fast_community",
    "smoke_community",
    "scaled_settings",
    "VALID_SCALES",
]
