"""Figure 6 — quality-per-click as both k and r vary (selective promotion).

The paper sweeps r over [0, 1] for starting points k in {1, 2, 6, 11, 21}
using the simulator: larger k needs larger r to reach the same QPC, and with
k kept small roughly 10% randomization captures most of the benefit.
"""

from __future__ import annotations

from repro.core.policy import RankPromotionPolicy
from repro.experiments.defaults import scaled_settings
from repro.experiments.results import ExperimentResult
from repro.simulation.runner import measure_qpc
from repro.utils.rng import RandomSource, derive_seed

DEFAULT_K_VALUES = (1, 2, 6, 11, 21)
DEFAULT_R_VALUES = (0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95)


def run(
    scale: str = "fast",
    seed: RandomSource = 0,
    k_values=DEFAULT_K_VALUES,
    r_values=DEFAULT_R_VALUES,
) -> ExperimentResult:
    """Normalized QPC vs r for several starting points k (simulation)."""
    settings = scaled_settings(scale)
    community = settings.community
    config = settings.simulation_config()
    result = ExperimentResult(
        experiment="figure6",
        title="Quality-per-click under selective promotion as r and k vary",
        x_label="degree of randomization (r)",
        y_label="normalized QPC",
    )
    for k in k_values:
        series = result.add_series("k=%d" % k)
        for r in r_values:
            policy = (
                RankPromotionPolicy("none", 1, 0.0)
                if r == 0
                else RankPromotionPolicy("selective", k, r)
            )
            measured = measure_qpc(
                community,
                policy,
                config=config,
                repetitions=settings.repetitions,
                seed=derive_seed(seed, "fig6-%d-%.3f" % (k, r)),
            )
            series.add(r, measured["qpc_normalized"])
    result.notes["scale"] = scale
    result.notes["shape_check"] = (
        "larger k should need larger r to reach comparable QPC; k in {1, 2} with "
        "r around 0.1 should already capture most of the benefit"
    )
    return result


__all__ = ["run", "DEFAULT_K_VALUES", "DEFAULT_R_VALUES"]
