"""Figure 3 — steady-state awareness distribution of high-quality pages.

Under non-randomized ranking most high-quality pages sit at near-zero
awareness; under selective randomized promotion (r = 0.2, k = 1) most sit at
near-full awareness, with very little mass in between.  The driver evaluates
Theorem 1 with the solved visit-rate function for both ranking methods and
reports the awareness histogram of the highest-quality pages.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.spec import RankingSpec
from repro.analysis.solver import SteadyStateSolver
from repro.experiments.defaults import scaled_settings
from repro.experiments.results import ExperimentResult
from repro.utils.rng import RandomSource


def run(
    scale: str = "fast",
    seed: RandomSource = 0,
    quality: Optional[float] = None,
    r: float = 0.2,
    k: int = 1,
    bins: int = 10,
) -> ExperimentResult:
    """Awareness distribution of top-quality pages, both ranking methods."""
    settings = scaled_settings(scale)
    community = settings.community
    if quality is None:
        quality = community.quality_distribution.max_quality()

    models = {
        "no randomization": SteadyStateSolver(
            community, RankingSpec.nonrandomized(),
            quality_groups=settings.solver_quality_groups, seed=seed,
        ).solve(),
        "selective randomization (r=%.1f, k=%d)" % (r, k): SteadyStateSolver(
            community, RankingSpec.selective(r=r, k=k),
            quality_groups=settings.solver_quality_groups, seed=seed,
        ).solve(),
    }

    result = ExperimentResult(
        experiment="figure3",
        title="Awareness distribution of pages of quality %.2f" % quality,
        x_label="awareness",
        y_label="probability",
    )
    edges = np.linspace(0.0, 1.0, bins + 1)
    centers = (edges[:-1] + edges[1:]) / 2.0
    for name, model in models.items():
        distribution = model.awareness_distribution(quality)
        m = distribution.size - 1
        levels = np.arange(m + 1, dtype=float) / m
        probabilities, _ = np.histogram(levels, bins=edges, weights=distribution)
        series = result.add_series(name)
        for center, probability in zip(centers, probabilities, strict=True):
            series.add(center, probability)

    result.notes["shape_check"] = (
        "expected: mass near awareness 0 without randomization, near 1 with it"
    )
    result.notes["scale"] = scale
    return result


__all__ = ["run"]
