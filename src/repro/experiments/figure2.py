"""Figure 2 — the exploration/exploitation trade-off illustration.

The figure shows the visit-rate trajectory of a very-high-quality page over
its lifetime, with and without rank promotion: promotion brings visits
forward (exploration benefit) at the cost of a slightly lower plateau
(exploitation loss).  The driver produces both trajectories from the
analytical model and reports the two shaded areas.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.spec import RankingSpec
from repro.analysis.solver import SteadyStateSolver
from repro.experiments.defaults import scaled_settings
from repro.experiments.results import ExperimentResult
from repro.utils.rng import RandomSource


def run(
    scale: str = "fast",
    seed: RandomSource = 0,
    quality: float = 0.4,
    r: float = 0.2,
    k: int = 1,
    horizon_days: Optional[int] = None,
) -> ExperimentResult:
    """Compute visit-rate trajectories with and without rank promotion."""
    settings = scaled_settings(scale)
    community = settings.community
    if horizon_days is None:
        horizon_days = int(community.expected_lifetime_days)

    baseline = SteadyStateSolver(
        community, RankingSpec.nonrandomized(),
        quality_groups=settings.solver_quality_groups, seed=seed,
    ).solve()
    promoted = SteadyStateSolver(
        community, RankingSpec.selective(r=r, k=k),
        quality_groups=settings.solver_quality_groups, seed=seed,
    ).solve()

    days = np.arange(horizon_days, dtype=float)
    visits_without = baseline.visit_trajectory(quality, horizon_days)
    visits_with = promoted.visit_trajectory(quality, horizon_days)

    result = ExperimentResult(
        experiment="figure2",
        title="Exploration/exploitation tradeoff (visit rate of a quality-%.2f page)" % quality,
        x_label="day",
        y_label="monitored visits per day",
    )
    series_without = result.add_series("without rank promotion")
    series_with = result.add_series("with rank promotion")
    step = max(1, horizon_days // 25)
    for day in range(0, horizon_days, step):
        series_without.add(days[day], visits_without[day])
        series_with.add(days[day], visits_with[day])

    gain = float(np.clip(visits_with - visits_without, 0.0, None).sum())
    loss = float(np.clip(visits_without - visits_with, 0.0, None).sum())
    result.notes["exploration_benefit_visits"] = "%.2f" % gain
    result.notes["exploitation_loss_visits"] = "%.2f" % loss
    result.notes["settings"] = "selective promotion, r=%.2f, k=%d, %s scale" % (r, k, scale)
    return result


__all__ = ["run"]
