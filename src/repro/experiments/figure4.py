"""Figure 4 — effect of randomized rank promotion on TBP.

Panel (a): popularity evolution of a quality-0.4 page under non-randomized,
uniform-randomized and selective-randomized ranking (analysis).
Panel (b): time to become popular as the degree of randomization r varies,
for selective and uniform promotion, analysis and simulation side by side.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.spec import RankingSpec
from repro.analysis.solver import SteadyStateSolver
from repro.core.policy import RankPromotionPolicy
from repro.experiments.defaults import scaled_settings
from repro.experiments.results import ExperimentResult
from repro.simulation.runner import measure_tbp
from repro.utils.rng import RandomSource, derive_seed


def run_panel_a(
    scale: str = "fast",
    seed: RandomSource = 0,
    quality: float = 0.4,
    r: float = 0.2,
    k: int = 1,
    horizon_days: Optional[int] = None,
) -> ExperimentResult:
    """Popularity evolution of a quality-``quality`` page (analysis)."""
    settings = scaled_settings(scale)
    community = settings.community
    if horizon_days is None:
        horizon_days = settings.probe_horizon_days

    specs = {
        "no randomization": RankingSpec.nonrandomized(),
        "uniform randomization": RankingSpec.uniform(r=r, k=k),
        "selective randomization": RankingSpec.selective(r=r, k=k),
    }
    result = ExperimentResult(
        experiment="figure4a",
        title="Popularity evolution of a quality-%.2f page" % quality,
        x_label="time (days)",
        y_label="popularity",
    )
    step = max(1, horizon_days // 25)
    for name, spec in specs.items():
        model = SteadyStateSolver(
            community, spec, quality_groups=settings.solver_quality_groups, seed=seed
        ).solve()
        trajectory = model.popularity_trajectory(quality, horizon_days)
        series = result.add_series(name)
        for day in range(0, horizon_days, step):
            series.add(float(day), float(trajectory[day]))
    result.notes["settings"] = "r=%.2f, k=%d, %s scale" % (r, k, scale)
    return result


def run_panel_b(
    scale: str = "fast",
    seed: RandomSource = 0,
    quality: float = 0.4,
    k: int = 1,
    r_values=(0.0, 0.05, 0.1, 0.15, 0.2),
    include_simulation: bool = True,
) -> ExperimentResult:
    """TBP versus degree of randomization, analysis and simulation."""
    settings = scaled_settings(scale)
    community = settings.community
    result = ExperimentResult(
        experiment="figure4b",
        title="Time to become popular (quality %.2f) vs degree of randomization" % quality,
        x_label="degree of randomization (r)",
        y_label="TBP (days)",
    )

    analysis_series = {
        "selective (analysis)": lambda r: RankingSpec.selective(r=r, k=k),
        "uniform (analysis)": lambda r: RankingSpec.uniform(r=r, k=k),
    }
    for name, make_spec in analysis_series.items():
        series = result.add_series(name)
        for r in r_values:
            spec = RankingSpec.nonrandomized() if r == 0 else make_spec(r)
            model = SteadyStateSolver(
                community, spec, quality_groups=settings.solver_quality_groups, seed=seed
            ).solve()
            tbp = model.tbp(quality)
            horizon_cap = 10.0 * community.expected_lifetime_days
            series.add(r, min(tbp, horizon_cap))

    if include_simulation:
        config = settings.simulation_config(probe_quality=quality,
                                            probe_horizon_days=settings.probe_horizon_days)
        simulation_series = {
            "selective (simulation)": "selective",
            "uniform (simulation)": "uniform",
        }
        for name, rule in simulation_series.items():
            series = result.add_series(name)
            for r in r_values:
                policy = (
                    RankPromotionPolicy("none", 1, 0.0)
                    if r == 0
                    else RankPromotionPolicy(rule, k, r)
                )
                measured = measure_tbp(
                    community,
                    policy,
                    probe_quality=quality,
                    config=config,
                    repetitions=settings.repetitions,
                    seed=derive_seed(seed, "fig4b-%s-%.3f" % (rule, r)),
                )
                series.add(r, measured["tbp_days"])
        result.notes["censoring"] = (
            "simulated probes that never reach 99%% of quality are counted at the "
            "%d-day horizon" % settings.probe_horizon_days
        )

    result.notes["scale"] = scale
    result.notes["shape_check"] = "TBP should fall as r grows, fastest for selective promotion"
    return result


def run(scale: str = "fast", seed: RandomSource = 0, **kwargs) -> ExperimentResult:
    """Default entry point: panel (b), the quantitative TBP sweep."""
    return run_panel_b(scale=scale, seed=seed, **kwargs)


__all__ = ["run", "run_panel_a", "run_panel_b"]
