"""Experiment drivers: one module per figure of the paper's evaluation.

Each driver exposes a ``run(scale=..., seed=...)`` function returning an
:class:`~repro.experiments.results.ExperimentResult` whose rows are the same
series the corresponding figure plots.  The registry maps experiment names
(``figure1`` .. ``figure8``) to drivers for the CLI and the benchmark
harness.
"""

from repro.experiments.defaults import ExperimentScale, default_community, scaled_settings
from repro.experiments.results import ExperimentResult, SeriesResult
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments

__all__ = [
    "ExperimentScale",
    "default_community",
    "scaled_settings",
    "ExperimentResult",
    "SeriesResult",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
]
