"""Figure 8 — mixed surfing and searching.

When a fraction x of page visits comes from random surfing (link following
plus teleportation) rather than from the search engine, absolute QPC changes:
a little surfing helps deterministic ranking (teleportation explores for
free), too much hurts everyone, and randomized rank promotion is never worse
than deterministic ranking at any x.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.policy import RankPromotionPolicy
from repro.experiments.defaults import scaled_settings
from repro.experiments.figure7 import POLICIES
from repro.experiments.results import ExperimentResult
from repro.simulation.runner import measure_qpc
from repro.utils.rng import RandomSource, derive_seed
from repro.visits.surfing import MixedSurfingModel

DEFAULT_X_VALUES = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def run(
    scale: str = "fast",
    seed: RandomSource = 0,
    x_values: Sequence[float] = DEFAULT_X_VALUES,
    teleportation: float = 0.15,
) -> ExperimentResult:
    """Absolute QPC vs fraction of random surfing for the three rankings."""
    settings = scaled_settings(scale)
    community = settings.community
    config = settings.simulation_config()
    result = ExperimentResult(
        experiment="figure8",
        title="Influence of the extent of random surfing",
        x_label="fraction of random surfing (x)",
        y_label="absolute QPC",
    )
    series = {name: result.add_series(name) for name in POLICIES}
    for x in x_values:
        surfing = MixedSurfingModel(surfing_fraction=x, teleportation=teleportation)
        for name, policy in POLICIES.items():
            measured = measure_qpc(
                community,
                policy,
                config=config,
                surfing=surfing,
                repetitions=settings.repetitions,
                seed=derive_seed(seed, "fig8-%s-%.2f" % (name, x)),
            )
            series[name].add(x, measured["qpc_absolute"])
    result.notes["scale"] = scale
    result.notes["teleportation"] = "%.2f" % teleportation
    result.notes["shape_check"] = (
        "randomized promotion should never fall below deterministic ranking; a small "
        "amount of surfing should help deterministic ranking"
    )
    return result


__all__ = ["run", "DEFAULT_X_VALUES"]
