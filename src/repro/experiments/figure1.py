"""Figure 1 / Appendix A — the live-study funny-vote ratio experiment.

The paper reports that the user group exposed to rank promotion produced a
funny-vote ratio roughly 60% higher than the strict-popularity group over the
final 15 days of the 45-day study.  The driver runs the behavioural
simulation of that study (see :mod:`repro.livestudy`) one or more times and
reports the two ratios plus the relative improvement.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.experiments.results import ExperimentResult
from repro.livestudy.experiment import LiveStudyConfig, LiveStudyExperiment
from repro.utils.rng import RandomSource, spawn_rngs


def run(scale: str = "fast", seed: RandomSource = 0, repetitions: Optional[int] = None) -> ExperimentResult:
    """Run the two-group live study and report funny-vote ratios.

    ``scale`` only affects the number of repetitions (the study itself is
    small): ``paper`` averages over 5 simulated studies, ``fast`` over 3,
    ``smoke`` runs a single shortened study.
    """
    if repetitions is None:
        repetitions = {"paper": 10, "fast": 6, "smoke": 5}.get(scale, 6)
    # The study itself is small (1000 items, <500 users per group), so every
    # scale runs it at full size; only the number of repetitions varies.
    # Individual runs are noisy because a handful of genuinely funny items
    # dominate the ratio, so the driver always averages several runs.
    config = LiveStudyConfig()

    control_ratios, treatment_ratios = [], []
    for rng in spawn_rngs(seed, repetitions):
        outcome = LiveStudyExperiment(config, seed=rng).run()
        control_ratios.append(outcome.control.funny_ratio)
        treatment_ratios.append(outcome.treatment.funny_ratio)

    result = ExperimentResult(
        experiment="figure1",
        title="Improvement in overall quality due to rank promotion (live study)",
        x_label="group",
        y_label="ratio of funny votes",
    )
    series = result.add_series("funny-vote ratio")
    series.add(0.0, float(np.mean(control_ratios)))
    series.add(1.0, float(np.mean(treatment_ratios)))
    control_mean = float(np.mean(control_ratios))
    treatment_mean = float(np.mean(treatment_ratios))
    improvement = treatment_mean / control_mean - 1.0 if control_mean > 0 else float("inf")
    result.notes["groups"] = "x=0: without rank promotion, x=1: with rank promotion"
    result.notes["improvement"] = "%.1f%% (paper reports ~60%%)" % (100.0 * improvement)
    result.notes["repetitions"] = str(repetitions)
    return result


__all__ = ["run"]
