"""Registry mapping experiment names to driver callables.

The CLI and the benchmark harness resolve experiments through this registry
so that the mapping between paper figures and code lives in one place (the
same mapping is documented in DESIGN.md).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.experiments import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
)
from repro.experiments.results import ExperimentResult

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "figure1": figure1.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "figure4a": figure4.run_panel_a,
    "figure4b": figure4.run_panel_b,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "figure7a": figure7.run_community_size,
    "figure7b": figure7.run_page_lifetime,
    "figure7c": figure7.run_visit_rate,
    "figure7d": figure7.run_user_population,
    "figure8": figure8.run,
}


def list_experiments() -> List[str]:
    """Names of all registered experiments, in figure order."""
    return list(EXPERIMENTS)


def get_experiment(name: str) -> Callable[..., ExperimentResult]:
    """Return the driver for ``name``; raise ``KeyError`` with guidance otherwise."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            "unknown experiment %r; available: %s" % (name, ", ".join(EXPERIMENTS))
        ) from None


__all__ = ["EXPERIMENTS", "list_experiments", "get_experiment"]
