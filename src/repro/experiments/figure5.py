"""Figure 5 — quality-per-click vs degree of randomization (k = 1).

Normalized QPC for selective and uniform promotion as r varies over
[0, 0.2], from both the analytical model and the simulator.  The paper's
shape: QPC rises quickly with a modest amount of randomization and selective
promotion dominates uniform promotion.
"""

from __future__ import annotations

from repro.analysis.spec import RankingSpec
from repro.analysis.solver import SteadyStateSolver
from repro.core.policy import RankPromotionPolicy
from repro.experiments.defaults import scaled_settings
from repro.experiments.results import ExperimentResult
from repro.simulation.runner import measure_qpc
from repro.utils.rng import RandomSource, derive_seed


def run(
    scale: str = "fast",
    seed: RandomSource = 0,
    k: int = 1,
    r_values=(0.0, 0.05, 0.1, 0.15, 0.2),
    include_simulation: bool = True,
) -> ExperimentResult:
    """Normalized QPC vs r for selective and uniform promotion."""
    settings = scaled_settings(scale)
    community = settings.community
    result = ExperimentResult(
        experiment="figure5",
        title="Quality-per-click vs degree of randomization (k=%d)" % k,
        x_label="degree of randomization (r)",
        y_label="normalized QPC",
    )

    for name, rule in (("selective (analysis)", "selective"), ("uniform (analysis)", "uniform")):
        series = result.add_series(name)
        for r in r_values:
            if r == 0:
                spec = RankingSpec.nonrandomized()
            elif rule == "selective":
                spec = RankingSpec.selective(r=r, k=k)
            else:
                spec = RankingSpec.uniform(r=r, k=k)
            model = SteadyStateSolver(
                community, spec, quality_groups=settings.solver_quality_groups, seed=seed
            ).solve()
            series.add(r, model.qpc_normalized())

    if include_simulation:
        config = settings.simulation_config()
        for name, rule in (
            ("selective (simulation)", "selective"),
            ("uniform (simulation)", "uniform"),
        ):
            series = result.add_series(name)
            for r in r_values:
                policy = (
                    RankPromotionPolicy("none", 1, 0.0)
                    if r == 0
                    else RankPromotionPolicy(rule, k, r)
                )
                measured = measure_qpc(
                    community,
                    policy,
                    config=config,
                    repetitions=settings.repetitions,
                    seed=derive_seed(seed, "fig5-%s-%.3f" % (rule, r)),
                )
                series.add(r, measured["qpc_normalized"])

    result.notes["scale"] = scale
    result.notes["shape_check"] = (
        "QPC should increase with r over this range, with selective above uniform"
    )
    return result


__all__ = ["run"]
