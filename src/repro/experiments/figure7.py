"""Figure 7 — robustness of the recommended recipe across community types.

Four sweeps, each comparing non-randomized ranking against selective
promotion with r = 0.1 and k in {1, 2} (the paper's recommendation):

* (a) community size n, holding u/n, m/u and per-user visit rate fixed;
* (b) expected page lifetime l;
* (c) total user visit rate v_u, holding v_u/u fixed;
* (d) number of users u, holding total visits fixed.

The expected shape: randomized promotion never hurts, and the advantage over
deterministic ranking is largest for big, slow-visit, high-churn communities.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from repro.community.config import CommunityConfig
from repro.core.policy import RankPromotionPolicy
from repro.experiments.defaults import ExperimentScale, scaled_settings
from repro.experiments.results import ExperimentResult
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import measure_qpc
from repro.utils.rng import RandomSource, derive_seed

POLICIES: Dict[str, RankPromotionPolicy] = {
    "no randomization": RankPromotionPolicy("none", 1, 0.0),
    "selective randomization (k=1)": RankPromotionPolicy("selective", 1, 0.1),
    "selective randomization (k=2)": RankPromotionPolicy("selective", 2, 0.1),
}


def _measure_point(
    community: CommunityConfig,
    settings: ExperimentScale,
    seed: RandomSource,
    label: str,
) -> Dict[str, float]:
    config = SimulationConfig.for_community(
        community,
        warmup_lifetimes=settings.warmup_lifetimes,
        measure_lifetimes=settings.measure_lifetimes,
        mode="stochastic",
    )
    values = {}
    for name, policy in POLICIES.items():
        measured = measure_qpc(
            community,
            policy,
            config=config,
            repetitions=settings.repetitions,
            seed=derive_seed(seed, "%s-%s" % (label, name)),
        )
        values[name] = measured["qpc_normalized"]
    return values


def run_community_size(
    scale: str = "fast",
    seed: RandomSource = 0,
    sizes: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Panel (a): QPC vs community size n."""
    settings = scaled_settings(scale)
    base = settings.community
    if sizes is None:
        sizes = {
            "paper": (1_000, 10_000, 100_000),
            "fast": (500, 2_000, 8_000),
            "smoke": (200, 400),
        }.get(scale, (500, 2_000, 8_000))
    result = ExperimentResult(
        experiment="figure7a",
        title="Influence of community size",
        x_label="community size (n)",
        y_label="normalized QPC",
    )
    series = {name: result.add_series(name) for name in POLICIES}
    for n in sizes:
        community = base.scaled(n)
        values = _measure_point(community, settings, seed, "fig7a-%d" % n)
        for name, value in values.items():
            series[name].add(float(n), value)
    result.notes["scale"] = scale
    result.notes["shape_check"] = (
        "deterministic QPC should decline with n while randomized stays higher/flatter"
    )
    return result


def run_page_lifetime(
    scale: str = "fast",
    seed: RandomSource = 0,
    lifetimes_years: Sequence[float] = (0.5, 1.5, 2.5, 3.5, 4.5),
) -> ExperimentResult:
    """Panel (b): QPC vs expected page lifetime."""
    settings = scaled_settings(scale)
    base = settings.community
    # Keep the same lifetime *ratios* the paper sweeps, scaled to this
    # community's default lifetime so fast-scale runs stay fast.
    reference = base.expected_lifetime_days / (1.5 * 365.0)
    result = ExperimentResult(
        experiment="figure7b",
        title="Influence of page lifetime",
        x_label="expected page lifetime (years)",
        y_label="normalized QPC",
    )
    series = {name: result.add_series(name) for name in POLICIES}
    for years in lifetimes_years:
        community = replace(base, expected_lifetime_days=years * 365.0 * reference)
        values = _measure_point(community, settings, seed, "fig7b-%.2f" % years)
        for name, value in values.items():
            series[name].add(years, value)
    result.notes["scale"] = scale
    result.notes["lifetime_scaling"] = (
        "lifetimes are scaled by %.3f relative to the paper's values at this scale" % reference
    )
    result.notes["shape_check"] = (
        "QPC should improve with lifetime for all methods; the randomized advantage "
        "should be larger for long-lived pages"
    )
    return result


def run_visit_rate(
    scale: str = "fast",
    seed: RandomSource = 0,
    visit_multipliers: Sequence[float] = (0.1, 1.0, 10.0, 100.0),
) -> ExperimentResult:
    """Panel (c): QPC vs total user visit rate."""
    settings = scaled_settings(scale)
    base = settings.community
    result = ExperimentResult(
        experiment="figure7c",
        title="Influence of visit rate",
        x_label="total visits per day (v_u)",
        y_label="normalized QPC",
    )
    series = {name: result.add_series(name) for name in POLICIES}
    for multiplier in visit_multipliers:
        visits = base.total_visit_rate * multiplier
        community = base.with_total_visit_rate(visits)
        values = _measure_point(community, settings, seed, "fig7c-%.2f" % multiplier)
        for name, value in values.items():
            series[name].add(visits, value)
    result.notes["scale"] = scale
    result.notes["shape_check"] = (
        "all methods fail when visits are scarce and converge when visits are abundant; "
        "randomization helps most in between"
    )
    return result


def run_user_population(
    scale: str = "fast",
    seed: RandomSource = 0,
    user_multipliers: Sequence[float] = (0.1, 1.0, 10.0),
) -> ExperimentResult:
    """Panel (d): QPC vs number of users with total visits held fixed."""
    settings = scaled_settings(scale)
    base = settings.community
    total_visits = base.total_visit_rate
    result = ExperimentResult(
        experiment="figure7d",
        title="Influence of size of user population",
        x_label="number of users (u)",
        y_label="normalized QPC",
    )
    series = {name: result.add_series(name) for name in POLICIES}
    for multiplier in user_multipliers:
        users = max(10, int(round(base.n_users * multiplier)))
        community = replace(
            base,
            n_users=users,
            visits_per_user_per_day=total_visits / users,
        )
        values = _measure_point(community, settings, seed, "fig7d-%d" % users)
        for name, value in values.items():
            series[name].add(float(users), value)
    result.notes["scale"] = scale
    result.notes["shape_check"] = (
        "performance ratios between methods should stay roughly constant as the user "
        "pool grows, with all methods somewhat worse for very large pools"
    )
    return result


def run(scale: str = "fast", seed: RandomSource = 0, panel: str = "a", **kwargs) -> ExperimentResult:
    """Dispatch to one of the four panels (default: community size)."""
    panels = {
        "a": run_community_size,
        "b": run_page_lifetime,
        "c": run_visit_rate,
        "d": run_user_population,
    }
    if panel not in panels:
        raise ValueError("panel must be one of %s" % sorted(panels))
    return panels[panel](scale=scale, seed=seed, **kwargs)


__all__ = [
    "run",
    "run_community_size",
    "run_page_lifetime",
    "run_visit_rate",
    "run_user_population",
    "POLICIES",
]
