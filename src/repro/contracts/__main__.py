"""``python -m repro.contracts`` entry point."""

import sys

from repro.contracts.cli import main

sys.exit(main())
