"""Per-file result cache keyed on content hash and rule-set version.

Re-linting an unchanged tree should cost file reads and hashing, nothing
else: the cache maps ``sha256(file bytes)`` (plus the rule-set version
and the rule selection) to the file's serialized findings.  Keying on
content rather than mtime makes the cache safe under checkouts and
worktree switches; bumping :data:`~repro.contracts.core.CONTRACTS_VERSION`
invalidates everything when rule semantics change.

The cache file lives at ``.contracts-cache.json`` under the repository
root and is best-effort: unreadable or corrupt caches are discarded, and
a read-only tree simply never persists one.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.contracts.core import CONTRACTS_VERSION, Finding

CACHE_NAME = ".contracts-cache.json"


def content_key(data: bytes, rule_ids: Tuple[str, ...]) -> str:
    digest = hashlib.sha256()
    digest.update(CONTRACTS_VERSION.encode())
    digest.update("|".join(rule_ids).encode())
    digest.update(data)
    return digest.hexdigest()


class ResultCache:
    """Load-mutate-save wrapper over the JSON cache file."""

    def __init__(self, repo_root: Path, enabled: bool = True) -> None:
        self.path = repo_root / CACHE_NAME
        self.enabled = enabled
        self._entries: Dict[str, List[Dict]] = {}
        self._dirty = False
        if enabled and self.path.exists():
            try:
                payload = json.loads(self.path.read_text())
                if payload.get("version") == CONTRACTS_VERSION:
                    self._entries = payload.get("files", {})
            except (ValueError, OSError):
                self._entries = {}

    def get(self, key: str) -> Optional[List[Finding]]:
        if not self.enabled:
            return None
        cached = self._entries.get(key)
        if cached is None:
            return None
        return [Finding.from_dict(entry) for entry in cached]

    def put(self, key: str, findings: List[Finding]) -> None:
        if not self.enabled:
            return
        self._entries[key] = [finding.to_dict() for finding in findings]
        self._dirty = True

    def save(self) -> None:
        if not (self.enabled and self._dirty):
            return
        try:
            self.path.write_text(
                json.dumps(
                    {"version": CONTRACTS_VERSION, "files": self._entries},
                    sort_keys=True,
                )
            )
        except OSError:  # pragma: no cover - read-only checkouts
            pass


__all__ = ["CACHE_NAME", "ResultCache", "content_key"]
