"""no-wall-clock-in-kernels: deterministic paths never read the clock.

The core kernels, the community/visits math and the analysis layer are
the bit-parity surface: two runs at equal seeds must be equal bit for
bit, and a wall-clock read is the classic way nondeterminism sneaks in
(timestamped tie-breaks, time-dependent branching).  Timing belongs to
the telemetry spans module and the bench drivers, which live outside
this rule's scope on purpose — the one allowlisted *consumer* of kernel
timings is ``repro.telemetry.spans``, which wraps backends from the
outside rather than reading clocks inside them.
"""

from __future__ import annotations

import ast
from typing import List

from repro.contracts.core import FileContext, FileRule, Finding, call_name, register

#: Dotted call targets that read a clock.
_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Suffixes catching ``from datetime import datetime; datetime.now()``.
_CLOCK_SUFFIXES = ("datetime.now", "datetime.utcnow", "date.today")

#: Names importable from ``time``/``datetime`` that read a clock when
#: called bare (``from time import perf_counter``).
_CLOCK_BARE = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
}


@register
class NoWallClockInKernels(FileRule):
    rule_id = "no-wall-clock-in-kernels"
    description = (
        "forbid time.time/perf_counter/datetime.now in the deterministic "
        "core (kernels, community, visits, metrics, analysis, webgraph)"
    )
    origin = "PR 4-5: kernel bit-parity contract across backends and modes"
    include = (
        "src/repro/core/",
        "src/repro/community/",
        "src/repro/visits/",
        "src/repro/metrics/",
        "src/repro/analysis/",
        "src/repro/webgraph/",
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        clock_aliases = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "time",
                "datetime",
            ):
                for alias in node.names:
                    if alias.name in _CLOCK_BARE:
                        clock_aliases.add(alias.asname or alias.name)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if (
                name in _CLOCK_CALLS
                or name.endswith(_CLOCK_SUFFIXES)
                or name in clock_aliases
            ):
                findings.append(
                    ctx.finding(
                        self.rule_id,
                        node,
                        "%s() reads the wall clock inside a deterministic "
                        "path; timing belongs in repro.telemetry.spans or "
                        "the bench drivers" % name,
                    )
                )
        return findings
