"""no-unseeded-rng: every random draw comes from a caller-threaded seed.

Bit-parity across the looped simulator, the batch engine, the lockstep
sweep and the serving replay only holds because every generator in the
tree descends deterministically from the experiment's root seed (via
``repro.utils.rng``).  One ``np.random.default_rng()`` with no argument,
one module-level ``np.random.shuffle`` or one stdlib ``random`` call
breaks that silently — the run still "works", it just stops being
reproducible, and only a lucky hypothesis case would notice.
"""

from __future__ import annotations

import ast
from typing import List

from repro.contracts.core import FileContext, FileRule, Finding, call_name, register

#: ``np.random`` attributes that are deterministic constructors/types, not
#: module-level stream draws.
_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}


@register
class NoUnseededRng(FileRule):
    rule_id = "no-unseeded-rng"
    description = (
        "forbid np.random.default_rng() with no seed, module-level "
        "np.random.* draws, and the stdlib random module"
    )
    origin = "PR 2: _deterministic_order requires a caller rng; bit-parity contract"
    include = ("src/repro/",)
    # The as_rng funnel is the one designed None -> fresh-entropy door;
    # everything else must thread a RandomSource through it.
    exclude = ("src/repro/utils/rng.py",)

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        findings.append(
                            ctx.finding(
                                self.rule_id,
                                node,
                                "stdlib 'random' is banned: draws bypass the "
                                "seeded numpy generator chain; use "
                                "repro.utils.rng.as_rng",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    findings.append(
                        ctx.finding(
                            self.rule_id,
                            node,
                            "stdlib 'random' is banned: draws bypass the "
                            "seeded numpy generator chain; use "
                            "repro.utils.rng.as_rng",
                        )
                    )
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name.endswith("np.random.default_rng") or name == (
                    "numpy.random.default_rng"
                ):
                    if not node.args and not node.keywords:
                        findings.append(
                            ctx.finding(
                                self.rule_id,
                                node,
                                "np.random.default_rng() without a seed draws "
                                "OS entropy; thread the caller's RandomSource "
                                "(repro.utils.rng.as_rng) instead",
                            )
                        )
                    continue
                parts = name.split(".")
                if (
                    len(parts) == 3
                    and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                    and parts[2] not in _CONSTRUCTORS
                ):
                    findings.append(
                        ctx.finding(
                            self.rule_id,
                            node,
                            "module-level np.random.%s() draws from the "
                            "global legacy stream; draw from a seeded "
                            "Generator instead" % parts[2],
                        )
                    )
        return findings
