"""occ-write-discipline: popularity state mutates only through the OCC door.

The serving pool's shared-memory popularity arrays follow Laux & Laiho's
SQL access pattern: a writer presents the version it read, the
version-check-and-apply runs atomically under the per-shard lock inside
``commit_visits_at``, and a conflicting commit is rejected without
touching state.  Any *other* store into the version word, the commit
counters, the awareness/quality arrays or the dirty mask is a write that
bypassed the conflict check — exactly the class of bug that silently
loses visits under concurrency.

This is a lockset-style static check over the modules that own the
state: a store into a protected field is legal only

* inside one of the contract methods (``commit_visits_at``,
  ``bump_version``, the constructors, the checkpoint capture/restore
  path, the dirty-set consumer), or
* lexically within a ``with self._lock:`` (or ``with <x>._lock:``)
  block.

Everything else — a helper that "just fixes up" ``aware_count``, a test
hook poking ``_header`` — is a violation.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.contracts.core import FileContext, FileRule, Finding, register

#: Attribute names whose stores are guarded.  ``version`` covers the
#: base class's plain counter, ``_header`` the shared block's words.
PROTECTED_FIELDS = {
    "_header",
    "_dirty_mask",
    "_popularity",
    "aware_count",
    "quality",
    "version",
}

#: Methods that ARE the write contract: the OCC commit itself, the
#: constructors that lay out a block nothing else can see yet, the
#: single-consumer dirty drain, and checkpoint capture/restore (which
#: rebuild a private state before it is published).  ``version`` is the
#: SharedPopularityState property setter whose body IS the shared word.
ALLOWED_METHODS = {
    "__init__",
    "create",
    "attach",
    "close",
    "version",
    "commit_visits_at",
    "bump_version",
    "apply_visits_at",
    "apply_visit_feedback",
    "set_awareness",
    "note_replaced",
    "consume_dirty",
    "_mark_changed",
    "restore_state",
    "capture",
}


def _is_lock_with(stmt: ast.With) -> bool:
    for item in stmt.items:
        try:
            expr = ast.unparse(item.context_expr)
        except Exception:  # pragma: no cover - unparse is total here
            continue
        if expr.endswith("._lock") or expr.endswith("._lock()"):
            return True
    return False


def _store_field(target: ast.AST) -> str:
    """Protected-field name a store target hits, or ``''``.

    Handles plain attribute stores (``state.version = ...``), subscript
    stores through an attribute (``pool.aware_count[idx] = ...``), and
    the same shapes under ``+=``.
    """
    node = target
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute) and node.attr in PROTECTED_FIELDS:
        return node.attr
    return ""


@register
class OccWriteDiscipline(FileRule):
    rule_id = "occ-write-discipline"
    description = (
        "stores to PopularityState/SharedPopularityState array fields and "
        "header words only inside the OCC contract methods or under the "
        "shard lock"
    )
    origin = "PR 7-8: Laux & Laiho version-check commit; shared-memory pool"
    include = (
        "src/repro/serving/state.py",
        "src/repro/serving/pool.py",
        "src/repro/robustness/occ.py",
        "src/repro/robustness/journal.py",
        "src/repro/robustness/supervisor.py",
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        self._walk(ctx, ctx.tree, in_allowed=False, in_lock=False, findings=findings)
        return findings

    def _walk(
        self,
        ctx: FileContext,
        node: ast.AST,
        in_allowed: bool,
        in_lock: bool,
        findings: List[Finding],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            child_allowed = in_allowed
            child_lock = in_lock
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested def starts a fresh context: the lock held by
                # the enclosing function is not held when the closure runs.
                child_allowed = child.name in ALLOWED_METHODS
                child_lock = False
            elif isinstance(child, ast.With) and _is_lock_with(child):
                child_lock = True
            if isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    field = _store_field(target)
                    if field and not (child_allowed or child_lock):
                        findings.append(
                            ctx.finding(
                                self.rule_id,
                                child,
                                "store to protected field %r outside the OCC "
                                "contract methods and outside any 'with "
                                "...._lock' block; route the mutation through "
                                "commit_visits_at (or hold the shard lock)"
                                % field,
                            )
                        )
            self._walk(ctx, child, child_allowed, child_lock, findings)
