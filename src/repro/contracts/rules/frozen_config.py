"""frozen-config-mutation: ServingConfig is data, never mutated in place.

``ServingConfig`` is the frozen JSON-round-trippable deployment
description that crosses process boundaries verbatim (PR 8): the parent
validates it once and every worker/client rebuilds identical state from
it.  An attribute assignment on a config instance would raise
``FrozenInstanceError`` at runtime — but only on the code path that
executes.  This rule catches the write statically: assignments through
a name bound from a ``ServingConfig`` constructor / ``from_json`` /
``from_dict`` / ``.replace`` call, or through the conventional
``config``-named locals and ``.config`` attributes, are violations
everywhere except the dataclass's own ``__init__``/``__post_init__``
and ``replace``.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.contracts.core import FileContext, FileRule, Finding, call_name, register

#: Call targets whose result is (or copies) a ServingConfig.
_CONSTRUCTORS = (
    "ServingConfig",
    "ServingConfig.from_json",
    "ServingConfig.from_dict",
    "serving_config_from_args",
)

#: Names conventionally bound to a ServingConfig in this tree.
_CONFIG_NAMES = {"config", "cfg", "serving_config"}

_ALLOWED_METHODS = {"__init__", "__post_init__", "replace"}


def _config_bound_names(scope: ast.AST) -> Set[str]:
    """Names assigned from a ServingConfig-producing call in ``scope``."""
    names: Set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = call_name(node.value)
            if callee.split(".")[-1] == "replace" or any(
                callee == c or callee.endswith("." + c) for c in _CONSTRUCTORS
            ):
                if callee.split(".")[-1] == "replace" and not (
                    isinstance(node.value.func, ast.Attribute)
                    and _names_config(node.value.func.value)
                ):
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            try:
                annotation = ast.unparse(node.annotation)
            except Exception:  # pragma: no cover
                continue
            if "ServingConfig" in annotation:
                names.add(node.target.id)
    return names


def _config_annotated_params(scope: ast.AST) -> Set[str]:
    """Parameter names annotated as ServingConfig in ``scope``'s signature."""
    names: Set[str] = set()
    args = scope.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.annotation is None:
            continue
        try:
            annotation = ast.unparse(arg.annotation)
        except Exception:  # pragma: no cover - unparse is total here
            continue
        if "ServingConfig" in annotation:
            names.add(arg.arg)
    return names


def _names_config(node: ast.AST) -> bool:
    """True for ``config``-style names and ``<x>.config`` attributes."""
    if isinstance(node, ast.Name):
        return node.id in _CONFIG_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _CONFIG_NAMES
    return False


@register
class FrozenConfigMutation(FileRule):
    rule_id = "frozen-config-mutation"
    description = (
        "forbid attribute assignment to ServingConfig instances outside "
        "__init__/__post_init__/replace; use config.replace(...)"
    )
    origin = "PR 8: frozen cross-process ServingConfig construction surface"
    include = ("src/repro/",)

    def check(self, ctx: FileContext) -> List[Finding]:
        if "ServingConfig" not in ctx.source and not any(
            name in ctx.source for name in _CONFIG_NAMES
        ):
            return []
        findings: List[Finding] = []
        bound = _config_bound_names(ctx.tree)
        for scope in ast.walk(ctx.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if scope.name in _ALLOWED_METHODS:
                continue
            local = bound | _config_bound_names(scope)
            local |= _config_annotated_params(scope)
            for node in ast.walk(scope):
                if not isinstance(node, (ast.Assign, ast.AugAssign)):
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    owner = target.value
                    is_config = (
                        isinstance(owner, ast.Name) and owner.id in local
                    ) or _names_config(owner)
                    if is_config:
                        findings.append(
                            ctx.finding(
                                self.rule_id,
                                node,
                                "attribute store %r on a ServingConfig: the "
                                "config is frozen data; build a new one with "
                                "config.replace(%s=...)"
                                % (target.attr, target.attr),
                            )
                        )
        return findings
