"""numba-backend-purity: JIT kernels keep RNG and the pow ufunc on numpy.

PR 4's stubbed-njit parity harness discovered that numpy's SIMD float64
``pow`` and libm's ``pow`` (what ``**`` lowers to inside a numba nest)
disagree in the last ulp — enough to break the bit-parity contract
between backends.  The fix was a discipline, not a patch: every RNG draw
and every float pow is precomputed by numpy *outside* the JIT region and
passed in as an array.  This rule pins that discipline: inside any
``@njit``-decorated function, calls into ``np.random``, ``np.power``,
float ``**`` exponents and ``objmode`` escapes are violations.

Integer-constant exponents (``x ** 2``) are exempt: they lower to exact
multiplies on both sides and carry no ulp hazard.
"""

from __future__ import annotations

import ast
from typing import List

from repro.contracts.core import FileContext, FileRule, Finding, call_name, register


def _is_njit_decorated(node: ast.AST) -> bool:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        try:
            name = ast.unparse(target)
        except Exception:  # pragma: no cover - unparse is total here
            continue
        if name.split(".")[-1] in ("njit", "jit", "guvectorize", "vectorize"):
            return True
    return False


@register
class NumbaBackendPurity(FileRule):
    rule_id = "numba-backend-purity"
    description = (
        "inside @njit functions, forbid np.random.*, np.power/float **, "
        "and objmode escapes (RNG and pow stay on numpy for bit parity)"
    )
    origin = "PR 4: numpy SIMD pow != libm pow by 1 ulp; RNG parity mandate"
    include = ("src/repro/",)

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if _is_njit_decorated(node):
                findings.extend(self._check_kernel(ctx, node))
        return findings

    def _check_kernel(self, ctx: FileContext, kernel: ast.AST) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(kernel):
            if isinstance(node, ast.Call):
                name = call_name(node)
                parts = name.split(".")
                if len(parts) >= 3 and parts[-3] in ("np", "numpy") and (
                    parts[-2] == "random"
                ):
                    findings.append(
                        ctx.finding(
                            self.rule_id,
                            node,
                            "RNG draw %s inside an @njit kernel: parity "
                            "mandates all draws happen in numpy outside the "
                            "JIT region" % name,
                        )
                    )
                elif name in ("np.power", "numpy.power", "math.pow", "pow"):
                    findings.append(
                        ctx.finding(
                            self.rule_id,
                            node,
                            "%s inside an @njit kernel lowers to libm pow, "
                            "which differs from numpy's SIMD pow by 1 ulp; "
                            "precompute the pow pass in numpy" % name,
                        )
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow):
                exponent = node.right
                if isinstance(exponent, ast.Constant) and isinstance(
                    exponent.value, int
                ):
                    continue  # x ** 2 lowers to exact multiplies
                findings.append(
                    ctx.finding(
                        self.rule_id,
                        node,
                        "float ** inside an @njit kernel lowers to libm pow "
                        "(1-ulp mismatch vs numpy's SIMD pow); precompute "
                        "the pow pass in numpy and pass the array in",
                    )
                )
            elif isinstance(node, ast.withitem):
                try:
                    expr = ast.unparse(node.context_expr)
                except Exception:  # pragma: no cover
                    continue
                if "objmode" in expr:
                    findings.append(
                        ctx.finding(
                            self.rule_id,
                            node.context_expr,
                            "objmode escape inside an @njit kernel reopens "
                            "the interpreter mid-nest; hoist the object work "
                            "out of the kernel",
                        )
                    )
        return findings
