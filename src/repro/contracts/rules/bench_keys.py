"""bench-extra-info-keys: every gated floor metric exists in the code.

The CI regression gate (``benchmarks/check_regression.py``) floors the
``extra_info`` metrics named in ``benchmarks/baselines/bench-floor.json``
— but the gate only compares keys that *appear* in the benchmark JSON.
A metric that gets renamed in the bench driver while its floor keeps the
old name is silently unfloored: the gate reports nothing, the regression
ships.  This rule closes the loop statically: every floored key must
occur as a string literal somewhere under ``src/`` or ``benchmarks/``
(or extend a literal prefix ending in ``_``, covering families like the
per-shard ``qps_shard_<i>`` keys built at runtime).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Set

from repro.contracts.core import Finding, ProjectContext, ProjectRule, register

FLOOR_REL = "benchmarks/baselines/bench-floor.json"
_SCAN_ROOTS = ("src", "benchmarks")


def _string_literals(root: Path) -> Set[str]:
    literals: Set[str] = set()
    for path in root.rglob("*.py"):
        if "__pycache__" in path.parts:
            continue
        try:
            tree = ast.parse(path.read_text())
        except SyntaxError:
            continue  # the syntax-error file rule reports this
        for node in ast.walk(tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                literals.add(node.value)
    return literals


@register
class BenchExtraInfoKeys(ProjectRule):
    rule_id = "bench-extra-info-keys"
    description = (
        "floored bench-floor.json metric keys must exist as string "
        "literals in src/ or benchmarks/ (no silently-unfloored gates)"
    )
    origin = "PR 3: benchmark regression gate over extra_info ratio floors"

    def check_project(self, ctx: ProjectContext) -> List[Finding]:
        import json

        floor_path = ctx.repo_root / FLOOR_REL
        if not floor_path.exists():
            return []  # partial trees (fixture runs) have nothing to check
        try:
            payload = json.loads(floor_path.read_text())
        except ValueError as error:
            return [
                Finding(
                    rule=self.rule_id,
                    path=FLOOR_REL,
                    line=1,
                    col=1,
                    message="bench-floor.json does not parse: %s" % error,
                )
            ]
        keys: Set[str] = set()
        for metrics in payload.get("benchmarks", {}).values():
            keys.update(metrics)
        literals: Set[str] = set()
        for root in _SCAN_ROOTS:
            scan_root = ctx.repo_root / root
            if scan_root.is_dir():
                literals |= _string_literals(scan_root)
        prefixes = [s for s in literals if s.endswith("_") and len(s) >= 4]
        findings: List[Finding] = []
        for key in sorted(keys):
            if key in literals:
                continue
            if any(key.startswith(prefix) for prefix in prefixes):
                continue
            findings.append(
                Finding(
                    rule=self.rule_id,
                    path=FLOOR_REL,
                    line=1,
                    col=1,
                    message=(
                        "floored metric %r is not produced by any string "
                        "literal under src/ or benchmarks/ — the gate would "
                        "silently stop flooring it" % key
                    ),
                )
            )
        return findings
