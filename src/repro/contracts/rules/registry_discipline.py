"""kernel-registry-discipline: backends resolve through the registry.

Backend selection (``REPRO_KERNEL_BACKEND``, ``--backend``, the numba
import-failure fallback, telemetry's span instrumentation proxy) all
live in ``repro.core.kernels.get_backend``/``use_backend``.  A module
that imports ``numpy_backend``/``numba_backend`` symbols directly pins
one backend, skips the fallback path, and — worse — bypasses the
instrumentation hook, so its kernel calls vanish from the span table.
Shared helpers the engines legitimately need (``merge_repair``,
``ROUTE_STATS``) are re-exported by ``repro.core.kernels`` itself;
import them from there.

Tests and benchmarks are exempt by scope: parity suites compare the two
backend singletons on purpose.
"""

from __future__ import annotations

import ast
from typing import List

from repro.contracts.core import FileContext, FileRule, Finding, register

_BACKEND_MODULES = ("numpy_backend", "numba_backend")


@register
class KernelRegistryDiscipline(FileRule):
    rule_id = "kernel-registry-discipline"
    description = (
        "obtain backends via get_backend/use_backend; never import "
        "numpy_backend/numba_backend symbols outside core/kernels"
    )
    origin = "PR 4: kernel dispatch registry with fallback + instrumentation"
    include = ("src/repro/",)
    exclude = ("src/repro/core/kernels/",)

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.split(".")[-1] in _BACKEND_MODULES:
                    findings.append(self._finding(ctx, node, module))
                elif module.endswith("core.kernels") or module == "kernels":
                    for alias in node.names:
                        if alias.name in _BACKEND_MODULES:
                            findings.append(self._finding(ctx, node, alias.name))
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[-1] in _BACKEND_MODULES:
                        findings.append(self._finding(ctx, node, alias.name))
        return findings

    def _finding(self, ctx: FileContext, node: ast.AST, module: str) -> Finding:
        return ctx.finding(
            self.rule_id,
            node,
            "direct import of %s pins one backend and bypasses the "
            "registry's fallback and instrumentation; use "
            "repro.core.kernels.get_backend/use_backend (shared helpers "
            "are re-exported by repro.core.kernels)" % module,
        )
