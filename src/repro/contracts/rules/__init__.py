"""Rule modules; importing this package populates the rule registry."""

from repro.contracts.rules import (  # noqa: F401  (import-for-registration)
    bench_keys,
    frozen_config,
    numba_purity,
    occ_discipline,
    registry_discipline,
    rng,
    telemetry_lock,
    wallclock,
)
