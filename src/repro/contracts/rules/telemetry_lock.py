"""telemetry-schema-append-only: BASE_FIELDS never reorders or renames.

The sliding-window counter layout in ``repro.telemetry.recorder`` is the
wire format of the JSONL telemetry rows AND the hot-path cumulative
indices the recorder bumps by position (PR 6/7/9 all appended for this
reason).  Reordering, renaming or removing a field silently corrupts
every dashboard and every committed baseline that reads the stream.

The committed schema lives in ``src/repro/contracts/telemetry_fields.lock``
(one field per line).  The lock must be an exact prefix of the live
``BASE_FIELDS`` tuple; a legal append still fails until the lockfile is
refreshed (``python -m repro.contracts --write-locks``), so schema drift
is always an explicit, reviewed diff.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional, Tuple

from repro.contracts.core import Finding, ProjectContext, ProjectRule, register

RECORDER_REL = "src/repro/telemetry/recorder.py"
LOCKFILE_REL = "src/repro/contracts/telemetry_fields.lock"


def read_base_fields(recorder_path: Path) -> Optional[Tuple[str, ...]]:
    """Extract the BASE_FIELDS tuple of string literals, or None."""
    tree = ast.parse(recorder_path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "BASE_FIELDS" in names and isinstance(
                node.value, (ast.Tuple, ast.List)
            ):
                fields = []
                for element in node.value.elts:
                    if not isinstance(element, ast.Constant) or not isinstance(
                        element.value, str
                    ):
                        return None
                    fields.append(element.value)
                return tuple(fields)
    return None


def read_lockfile(lock_path: Path) -> Tuple[str, ...]:
    fields = []
    for line in lock_path.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            fields.append(line)
    return tuple(fields)


def write_lockfile(lock_path: Path, fields: Tuple[str, ...]) -> None:
    lines = [
        "# Committed telemetry counter schema (append-only contract).",
        "# Regenerate with: python -m repro.contracts --write-locks",
    ]
    lines.extend(fields)
    lock_path.write_text("\n".join(lines) + "\n")


@register
class TelemetrySchemaAppendOnly(ProjectRule):
    rule_id = "telemetry-schema-append-only"
    description = (
        "BASE_FIELDS must extend the committed lockfile exactly: no "
        "reorder, rename or removal; appends refresh the lock"
    )
    origin = "PR 6: windowed counter wire format; PR 7/9 appended under it"

    def check_project(self, ctx: ProjectContext) -> List[Finding]:
        recorder = ctx.repo_root / RECORDER_REL
        lock = ctx.repo_root / LOCKFILE_REL
        if not recorder.exists():
            return []  # partial trees (fixture runs) have nothing to check
        current = read_base_fields(recorder)
        if current is None:
            return [
                Finding(
                    rule=self.rule_id,
                    path=RECORDER_REL,
                    line=1,
                    col=1,
                    message=(
                        "BASE_FIELDS is not a tuple of string literals; the "
                        "schema must stay statically parseable"
                    ),
                )
            ]
        if not lock.exists():
            return [
                Finding(
                    rule=self.rule_id,
                    path=LOCKFILE_REL,
                    line=1,
                    col=1,
                    message=(
                        "telemetry schema lockfile is missing; create it "
                        "with --write-locks and commit it"
                    ),
                )
            ]
        locked = read_lockfile(lock)
        findings: List[Finding] = []
        overlap = min(len(locked), len(current))
        for position, (want, have) in enumerate(
            zip(locked[:overlap], current[:overlap], strict=True)
        ):
            if want != have:
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        path=RECORDER_REL,
                        line=1,
                        col=1,
                        message=(
                            "BASE_FIELDS[%d] is %r but the committed schema "
                            "pins %r: fields are append-only (hot-path "
                            "cumulative indices and the JSONL wire format "
                            "depend on positions)" % (position, have, want)
                        ),
                    )
                )
        if len(current) < len(locked):
            findings.append(
                Finding(
                    rule=self.rule_id,
                    path=RECORDER_REL,
                    line=1,
                    col=1,
                    message=(
                        "BASE_FIELDS dropped %d committed field(s) (%s): "
                        "fields are append-only"
                        % (
                            len(locked) - len(current),
                            ", ".join(locked[len(current):]),
                        )
                    ),
                )
            )
        elif len(current) > len(locked) and not findings:
            findings.append(
                Finding(
                    rule=self.rule_id,
                    path=LOCKFILE_REL,
                    line=1,
                    col=1,
                    message=(
                        "BASE_FIELDS appended %s but the lockfile was not "
                        "refreshed; run python -m repro.contracts "
                        "--write-locks and commit the diff"
                        % ", ".join(repr(f) for f in current[len(locked):])
                    ),
                )
            )
        return findings
