"""The contract linter's core: findings, rules, suppressions, file checks.

The repository's load-bearing invariants — every RNG draw comes from a
caller-threaded seeded generator, numba kernels keep RNG and the pow
ufunc on numpy, shared popularity arrays mutate only through the OCC
commit contract, the telemetry schema is append-only — have historically
lived in docstrings and runtime tests.  This package turns each of them
into an AST-based static check that runs *before* the test suite, the
way production stacks wire sanitizers and custom lints into CI.

Two rule shapes exist:

:class:`FileRule`
    Checked once per parsed source file against its AST
    (:class:`FileContext`).  Scoped by repository-relative path prefixes
    so e.g. the wall-clock ban applies to the deterministic core but not
    to the benchmark drivers that legitimately time themselves.
:class:`ProjectRule`
    Checked once per run against the whole tree
    (:class:`ProjectContext`) — schema lockfiles and cross-file key
    consistency live here.

A violation is silenced inline with::

    offending_call()  # contracts: ignore[rule-id] -- why this is safe

The rationale after ``--`` is mandatory: a suppression without one is
itself reported (rule id ``bad-suppression``), so every exemption in the
tree carries its justification next to the code it exempts.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Bump when rule semantics change: invalidates every cached file result.
CONTRACTS_VERSION = "1"

_SUPPRESSION_RE = re.compile(
    r"#\s*contracts:\s*ignore\[(?P<rules>[a-z0-9*,\s-]+)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?"
)


@dataclass(frozen=True)
class Finding:
    """One contract violation (or suppressed would-be violation)."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    reason: str = ""

    def to_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "Finding":
        return cls(**payload)

    def render(self) -> str:
        tag = " [suppressed: %s]" % self.reason if self.suppressed else ""
        return "%s:%d:%d: %s %s%s" % (
            self.path, self.line, self.col, self.rule, self.message, tag
        )


@dataclass
class Suppression:
    """One parsed ``# contracts: ignore[...]`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str
    own_line: bool  # comment-only line: covers the next code line too

    def covers(self, rule_id: str) -> bool:
        return "*" in self.rules or rule_id in self.rules


@dataclass
class FileContext:
    """Everything a :class:`FileRule` sees about one source file.

    ``rel`` is the repository-relative posix path used for rule scoping;
    the fixture suite overrides it to exercise path-scoped rules on
    files that live elsewhere.
    """

    path: Path
    rel: str
    source: str
    tree: ast.AST
    repo_root: Path

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule_id,
            path=self.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


@dataclass
class ProjectContext:
    """What a :class:`ProjectRule` sees: the root and the scanned files."""

    repo_root: Path
    files: List[Path] = field(default_factory=list)

    def rel(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.repo_root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()


class FileRule:
    """Base class: one per-file AST check with path-prefix scoping."""

    rule_id: str = ""
    description: str = ""
    #: Where the invariant came from (PR / paper discipline) — rendered
    #: by ``--list-rules`` and the README rule table.
    origin: str = ""
    #: Repo-relative posix prefixes the rule applies to.
    include: Tuple[str, ...] = ("src/repro/",)
    #: Prefixes exempted even when included (the rule's allowlist).
    exclude: Tuple[str, ...] = ()

    def applies_to(self, rel: str) -> bool:
        if not any(rel.startswith(prefix) for prefix in self.include):
            return False
        return not any(rel.startswith(prefix) for prefix in self.exclude)

    def check(self, ctx: FileContext) -> List[Finding]:  # pragma: no cover
        raise NotImplementedError


class ProjectRule:
    """Base class: one whole-tree check (lockfiles, cross-file keys)."""

    rule_id: str = ""
    description: str = ""
    origin: str = ""

    def check_project(self, ctx: ProjectContext) -> List[Finding]:  # pragma: no cover
        raise NotImplementedError


#: Registry: rule id -> instance.  Populated by the ``register``
#: decorator as ``repro.contracts.rules`` imports its rule modules.
FILE_RULES: Dict[str, FileRule] = {}
PROJECT_RULES: Dict[str, ProjectRule] = {}


def register(cls):
    """Class decorator adding one rule instance to the registry."""
    instance = cls()
    if not instance.rule_id:
        raise ValueError("rule %r has no rule_id" % cls.__name__)
    target = FILE_RULES if isinstance(instance, FileRule) else PROJECT_RULES
    if instance.rule_id in FILE_RULES or instance.rule_id in PROJECT_RULES:
        raise ValueError("duplicate rule id %r" % instance.rule_id)
    target[instance.rule_id] = instance
    return cls


def all_rules() -> List:
    """Every registered rule, file rules first, sorted by id."""
    return [FILE_RULES[k] for k in sorted(FILE_RULES)] + [
        PROJECT_RULES[k] for k in sorted(PROJECT_RULES)
    ]


def parse_suppressions(source: str) -> List[Suppression]:
    """Extract every ``contracts: ignore`` comment with its location."""
    suppressions = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(line)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        reason = (match.group("reason") or "").strip()
        own_line = line.lstrip().startswith("#")
        suppressions.append(
            Suppression(line=lineno, rules=rules, reason=reason, own_line=own_line)
        )
    return suppressions


def apply_suppressions(
    findings: Sequence[Finding], suppressions: Sequence[Suppression], rel: str
) -> List[Finding]:
    """Mark suppressed findings; flag suppressions lacking a rationale.

    A suppression on a code line covers that line; a comment-only
    suppression line covers the immediately following line (so multi-line
    statements can carry the comment above them).  Suppressions without a
    ``-- reason`` trailer never silence anything and are reported as
    ``bad-suppression`` findings of their own.
    """
    out: List[Finding] = []
    by_line: Dict[int, List[Suppression]] = {}
    for sup in suppressions:
        if not sup.reason:
            out.append(
                Finding(
                    rule="bad-suppression",
                    path=rel,
                    line=sup.line,
                    col=1,
                    message=(
                        "suppression of %s has no rationale; write "
                        "'# contracts: ignore[%s] -- <why this is safe>'"
                        % (", ".join(sup.rules), ", ".join(sup.rules))
                    ),
                )
            )
            continue
        by_line.setdefault(sup.line, []).append(sup)
        if sup.own_line:
            by_line.setdefault(sup.line + 1, []).append(sup)
    for finding in findings:
        for sup in by_line.get(finding.line, ()):
            if sup.covers(finding.rule):
                finding = replace(finding, suppressed=True, reason=sup.reason)
                break
        out.append(finding)
    return out


def check_file(
    path: Path,
    repo_root: Path,
    rel: Optional[str] = None,
    rule_ids: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run every applicable file rule over one source file.

    Returns the full finding list including suppressed entries;
    callers filter on ``suppressed`` for the exit status.  A file that
    fails to parse yields a single ``syntax-error`` finding rather than
    crashing the run.
    """
    if rel is None:
        try:
            rel = path.resolve().relative_to(repo_root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [
            Finding(
                rule="syntax-error",
                path=rel,
                line=error.lineno or 1,
                col=(error.offset or 0) + 1,
                message="file does not parse: %s" % error.msg,
            )
        ]
    ctx = FileContext(
        path=path, rel=rel, source=source, tree=tree, repo_root=repo_root
    )
    wanted = set(rule_ids) if rule_ids is not None else None
    findings: List[Finding] = []
    for rule in FILE_RULES.values():
        if wanted is not None and rule.rule_id not in wanted:
            continue
        if not rule.applies_to(rel):
            continue
        findings.extend(rule.check(ctx))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return apply_suppressions(findings, parse_suppressions(source), rel)


def check_project(
    repo_root: Path,
    files: Sequence[Path],
    rule_ids: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run every project-level rule once over the scanned tree."""
    ctx = ProjectContext(repo_root=repo_root, files=list(files))
    wanted = set(rule_ids) if rule_ids is not None else None
    findings: List[Finding] = []
    for rule in PROJECT_RULES.values():
        if wanted is not None and rule.rule_id not in wanted:
            continue
        findings.extend(rule.check_project(ctx))
    return findings


def call_name(node: ast.Call) -> str:
    """Dotted name of a call target (``''`` for non-name targets)."""
    try:
        return ast.unparse(node.func)
    except Exception:  # pragma: no cover - unparse is total on parse output
        return ""


__all__ = [
    "CONTRACTS_VERSION",
    "FileContext",
    "FileRule",
    "Finding",
    "ProjectContext",
    "ProjectRule",
    "FILE_RULES",
    "PROJECT_RULES",
    "all_rules",
    "apply_suppressions",
    "call_name",
    "check_file",
    "check_project",
    "parse_suppressions",
    "register",
]
