"""Render a :class:`~repro.contracts.runner.LintReport` as text or JSON."""

from __future__ import annotations

import json
from typing import List

from repro.contracts.core import CONTRACTS_VERSION
from repro.contracts.runner import LintReport


def render_text(report: LintReport, verbose: bool = False) -> str:
    """Human-oriented listing: active findings, then a one-line summary."""
    lines: List[str] = [f.render() for f in report.active]
    if verbose:
        lines.extend(f.render() for f in report.suppressed)
    summary = (
        "checked %d file(s) (%d cached): %d finding(s), %d suppressed "
        "[%.2fs]"
        % (
            report.checked_files,
            report.cached_files,
            len(report.active),
            len(report.suppressed),
            report.elapsed_seconds,
        )
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport, root: str, rules: List[str]) -> str:
    """Machine-oriented payload for the CI artifact."""
    payload = {
        "version": CONTRACTS_VERSION,
        "root": root,
        "checked_files": report.checked_files,
        "cached_files": report.cached_files,
        "rules": rules,
        "findings": [f.to_dict() for f in report.active],
        "suppressed": [f.to_dict() for f in report.suppressed],
        "elapsed_seconds": round(report.elapsed_seconds, 4),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


__all__ = ["render_json", "render_text"]
