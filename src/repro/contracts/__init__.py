"""AST-based contract linter for the repository's determinism invariants.

``python -m repro.contracts`` (or the ``repro-contracts`` entry point)
statically enforces the contracts the test suite can only probe
dynamically: seeded-RNG threading, kernel purity, OCC write discipline,
schema lockfiles.  See :mod:`repro.contracts.core` for the framework and
``repro.contracts.rules`` for the individual checks.
"""

from repro.contracts import rules  # noqa: F401  (import-for-registration)
from repro.contracts.core import (
    CONTRACTS_VERSION,
    FILE_RULES,
    PROJECT_RULES,
    FileContext,
    FileRule,
    Finding,
    ProjectContext,
    ProjectRule,
    all_rules,
    check_file,
    check_project,
    register,
)
from repro.contracts.runner import LintReport, discover, lint_paths

__all__ = [
    "CONTRACTS_VERSION",
    "FILE_RULES",
    "PROJECT_RULES",
    "FileContext",
    "FileRule",
    "Finding",
    "LintReport",
    "ProjectContext",
    "ProjectRule",
    "all_rules",
    "check_file",
    "check_project",
    "discover",
    "lint_paths",
    "register",
]
