"""Command line driver: ``repro-contracts`` / ``python -m repro.contracts``.

Exit status: 0 when every finding is suppressed (or none exist), 1 when
unsuppressed findings remain, 2 on usage errors.  ``--self-test``
verifies the linter itself still has teeth by injecting known
violations into a scratch copy of ``serving/state.py`` and requiring
them to be caught — the same trust-but-verify move as
``benchmarks/check_regression.py --self-test``.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path
from typing import List, Optional, Sequence

from repro.contracts.core import all_rules, check_file
from repro.contracts.reporters import render_json, render_text
from repro.contracts.rules.telemetry_lock import (
    LOCKFILE_REL,
    RECORDER_REL,
    read_base_fields,
    write_lockfile,
)
from repro.contracts.runner import lint_paths


def find_repo_root(start: Path) -> Path:
    """Walk upward until a directory containing ``src/repro`` appears."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    # Installed-package fallback: src/repro/contracts/cli.py -> repo root.
    return Path(__file__).resolve().parents[3]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-contracts",
        description="AST-based contract linter for repro invariants",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--rules",
        metavar="ID[,ID...]",
        help="only run the named rules",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not update .contracts-cache.json",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help="worker process count (default: auto, capped by REPRO_MAX_WORKERS)",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        help="repository root (default: walk up from the first path)",
    )
    parser.add_argument(
        "--write-locks",
        action="store_true",
        help="refresh the telemetry schema lockfile from the live BASE_FIELDS",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the linter catches injected violations, then exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list suppressed findings in text output",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        kind = "project" if not hasattr(rule, "applies_to") else "file"
        lines.append("%-28s %-8s %s" % (rule.rule_id, kind, rule.description))
        if rule.origin:
            lines.append("%-28s %-8s origin: %s" % ("", "", rule.origin))
    return "\n".join(lines)


def _write_locks(root: Path) -> int:
    recorder = root / RECORDER_REL
    if not recorder.exists():
        print("no recorder at %s" % recorder, file=sys.stderr)
        return 2
    fields = read_base_fields(recorder)
    if fields is None:
        print("BASE_FIELDS is not statically parseable", file=sys.stderr)
        return 2
    lock = root / LOCKFILE_REL
    lock.parent.mkdir(parents=True, exist_ok=True)
    write_lockfile(lock, fields)
    print("wrote %d field(s) to %s" % (len(fields), lock))
    return 0


_INJECTIONS = (
    # (rule expected to fire, line of python appended inside the state
    #  module at top level / method scope as noted)
    ("no-unseeded-rng", "_SELFTEST_RNG = np.random.default_rng()\n"),
    (
        "occ-write-discipline",
        "def _selftest_unlocked_bump(state):\n"
        "    state._header[0] = 5\n",
    ),
)


def run_self_test(root: Path) -> int:
    """Inject known violations into a scratch copy of serving/state.py.

    The linter must flag every injection; a clean pass on corrupted
    input means the rules have silently stopped firing and the gate is
    theater.
    """
    source_path = root / "src/repro/serving/state.py"
    if not source_path.exists():
        print("self-test: %s missing" % source_path, file=sys.stderr)
        return 2
    original = source_path.read_text()
    failures: List[str] = []
    with tempfile.TemporaryDirectory(prefix="contracts-selftest-") as tmp:
        for rule_id, injection in _INJECTIONS:
            scratch = Path(tmp) / ("state_%s.py" % rule_id.replace("-", "_"))
            scratch.write_text(original + "\n\n" + injection)
            findings = check_file(
                scratch,
                root,
                rel="src/repro/serving/state.py",
                rule_ids=[rule_id],
            )
            if not any(f.rule == rule_id and not f.suppressed for f in findings):
                failures.append(rule_id)
        # The pristine copy must stay clean, or the probe proves nothing.
        pristine = Path(tmp) / "state_clean.py"
        pristine.write_text(original)
        clean = check_file(pristine, root, rel="src/repro/serving/state.py")
        if any(not f.suppressed for f in clean):
            failures.append("clean-baseline")
    if failures:
        print("self-test FAILED: %s" % ", ".join(failures), file=sys.stderr)
        return 1
    print("self-test OK: %d injected violation(s) caught" % len(_INJECTIONS))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    first = Path(args.paths[0]) if args.paths else Path.cwd()
    root = Path(args.root).resolve() if args.root else find_repo_root(first)

    if args.write_locks:
        return _write_locks(root)
    if args.self_test:
        return run_self_test(root)

    rule_ids = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
        known = {rule.rule_id for rule in all_rules()}
        unknown = sorted(set(rule_ids) - known)
        if unknown:
            parser.error("unknown rule id(s): %s" % ", ".join(unknown))

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error("no such path: %s" % ", ".join(str(p) for p in missing))

    report = lint_paths(
        paths,
        root,
        rule_ids=rule_ids,
        jobs=args.jobs,
        use_cache=not args.no_cache,
    )
    if args.format == "json":
        selected = sorted(rule_ids) if rule_ids else sorted(
            rule.rule_id for rule in all_rules()
        )
        rendered = render_json(report, str(root), selected)
    else:
        rendered = render_text(report, verbose=args.verbose)
    if args.output:
        Path(args.output).write_text(rendered + "\n")
    else:
        print(rendered)
    return 1 if report.active else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
