"""File discovery and the file-parallel lint driver.

The full tree is ~100 files; one process parses and checks it in well
under a second warm, but the runner still shards uncached files across
a process pool (sized by :func:`repro.utils.parallel.default_workers`,
so ``REPRO_MAX_WORKERS`` caps it like every other parallel path here)
once the uncached batch is large enough to amortize worker startup.
Cached files never leave the parent process.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.contracts.cache import ResultCache, content_key
from repro.contracts.core import Finding, check_file, check_project
from repro.utils.parallel import default_workers

#: Below this many uncached files a process pool costs more than it saves.
_PARALLEL_THRESHOLD = 24

_SKIP_PARTS = {"__pycache__", ".git", ".contracts-cache.json"}


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    checked_files: int = 0
    cached_files: int = 0
    elapsed_seconds: float = 0.0

    @property
    def active(self) -> List[Finding]:
        """Findings that gate the exit status (not suppressed)."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]


def discover(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of python sources."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if not (_SKIP_PARTS & set(p.parts))
            )
        elif path.suffix == ".py":
            files.append(path)
    seen = set()
    unique = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _lint_one(args: Tuple[str, str, Optional[Tuple[str, ...]]]) -> List[Finding]:
    path, repo_root, rule_ids = args
    return check_file(Path(path), Path(repo_root), rule_ids=rule_ids)


def lint_paths(
    paths: Sequence[Path],
    repo_root: Path,
    rule_ids: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
    use_cache: bool = True,
) -> LintReport:
    """Lint ``paths`` (files or directories) under ``repo_root``.

    Returns every finding including suppressed ones;
    :attr:`LintReport.active` is what a gate should fail on.  Project
    rules (lockfile, bench keys) run once per call regardless of which
    files were selected.
    """
    started = time.perf_counter()
    rule_tuple = tuple(sorted(rule_ids)) if rule_ids is not None else ("*",)
    files = discover([Path(p) for p in paths])
    cache = ResultCache(repo_root, enabled=use_cache)
    report = LintReport()

    pending: List[Tuple[Path, str]] = []
    for path in files:
        key = content_key(path.read_bytes(), rule_tuple)
        cached = cache.get(key)
        if cached is not None:
            report.findings.extend(cached)
            report.cached_files += 1
        else:
            pending.append((path, key))

    results: List[List[Finding]] = []
    if pending:
        workers = jobs if jobs is not None else default_workers(len(pending))
        if len(pending) >= _PARALLEL_THRESHOLD and workers > 1:
            work = [
                (str(path), str(repo_root), None if rule_ids is None else rule_tuple)
                for path, _ in pending
            ]
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    results = list(pool.map(_lint_one, work, chunksize=8))
            except (OSError, ValueError):  # pragma: no cover - no semaphores
                results = []
        if not results:
            results = [
                check_file(path, repo_root, rule_ids=rule_ids)
                for path, _ in pending
            ]
        for (path, key), findings in zip(pending, results, strict=True):
            cache.put(key, findings)
            report.findings.extend(findings)

    report.findings.extend(check_project(repo_root, files, rule_ids=rule_ids))
    report.checked_files = len(files)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    cache.save()
    report.elapsed_seconds = time.perf_counter() - started
    return report


__all__ = ["LintReport", "discover", "lint_paths"]
