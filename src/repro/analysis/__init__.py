"""Analytical model of page popularity evolution (Section 5 of the paper).

The analysis couples three ingredients:

* the steady-state awareness distribution ``f(a_i | q)`` of Theorem 1;
* the popularity-to-rank function ``F1`` (and its randomized-promotion
  variant ``F1'``) together with the rank-to-visit law ``F2``;
* an iterative fixed-point procedure that solves the circular dependency
  between the two, fitting the popularity-to-visit-rate function ``F(x)``
  with a quadratic curve in log-log space between iterations.

The solved model exposes analytic QPC, TBP and popularity-evolution curves,
which the experiments compare side by side with the simulator.
"""

from repro.analysis.spec import RankingSpec
from repro.analysis.awareness import awareness_distribution, expected_awareness
from repro.analysis.rank_visit import (
    RankToVisitLaw,
    expected_promoted_visit_rate,
    popularity_to_rank,
)
from repro.analysis.solver import SolvedModel, SteadyStateSolver, solve_model

__all__ = [
    "RankingSpec",
    "awareness_distribution",
    "expected_awareness",
    "RankToVisitLaw",
    "popularity_to_rank",
    "expected_promoted_visit_rate",
    "SteadyStateSolver",
    "SolvedModel",
    "solve_model",
]
