"""Iterative fixed-point solver for the popularity-to-visit-rate function.

The awareness distribution (Theorem 1) depends on ``F``, and ``F = F2 o F1``
depends on the awareness distribution of every page — a circular dependency
with no closed form.  Following Section 5.3 we solve it iteratively:

1. start from a popularity-proportional guess for ``F``;
2. compute the steady-state awareness distribution of every quality group;
3. evaluate the expected rank ``F1`` (plus the promotion shift for
   randomized ranking) on a popularity grid, map it through ``F2``, and
   compute ``F(0)`` from the promotion-slot visit mass;
4. refit ``log F`` as a quadratic in ``log x`` and repeat until the fitted
   values stop changing.

The converged :class:`SolvedModel` exposes the analytic QPC, TBP and
popularity-evolution curves used by the experiment drivers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.analysis.awareness import awareness_distribution
from repro.analysis.rank_visit import (
    RankToVisitLaw,
    expected_promoted_visit_rate,
    popularity_to_rank,
    selective_rank_shift,
    uniform_rank_adjustment,
)
from repro.analysis.spec import RankingSpec
from repro.community.config import CommunityConfig
from repro.core.policy import RankPromotionPolicy
from repro.metrics.qpc import ideal_qpc
from repro.utils.mathutils import LogQuadraticCurve, fit_log_quadratic
from repro.utils.rng import RandomSource, as_rng
from repro.visits.attention import PowerLawAttention


def _group_qualities(qualities: np.ndarray, max_groups: int):
    """Collapse the quality pool into at most ``max_groups`` (value, count) pairs.

    Exact distinct values are kept when there are few of them; otherwise the
    pool is binned on a *logarithmic* quality grid.  Log-spaced bins are
    essential for the heavy-tailed quality distributions the paper uses: the
    handful of high-quality pages that dominate QPC land in their own bins
    instead of being averaged away, while the long tail of near-zero-quality
    pages is aggressively collapsed.  Grouping keeps the per-iteration cost
    of the solver independent of the community size.
    """
    qualities = np.asarray(qualities, dtype=float)
    values, counts = np.unique(qualities, return_counts=True)
    if values.size <= max_groups:
        return values, counts.astype(float)
    positive = qualities[qualities > 0]
    q_min, q_max = float(positive.min()), float(positive.max())
    edges = np.geomspace(q_min, q_max, max_groups + 1)
    bin_index = np.clip(np.searchsorted(edges, positive, side="right") - 1, 0, max_groups - 1)
    grouped_values, grouped_counts = [], []
    zero_count = int(np.sum(qualities <= 0))
    if zero_count:
        grouped_values.append(q_min * 1e-3)
        grouped_counts.append(float(zero_count))
    for b in range(max_groups):
        mask = bin_index == b
        if not np.any(mask):
            continue
        grouped_values.append(float(positive[mask].mean()))
        grouped_counts.append(float(np.sum(mask)))
    return np.asarray(grouped_values), np.asarray(grouped_counts)


@dataclass
class SolvedModel:
    """The converged analytical model for one community and ranking method."""

    community: CommunityConfig
    spec: RankingSpec
    visit_rate: LogQuadraticCurve
    law: RankToVisitLaw
    quality_values: np.ndarray
    quality_counts: np.ndarray
    awareness_by_quality: Dict[float, np.ndarray]
    expected_zero_awareness: float
    iterations: int
    converged: bool
    quality_pool: Optional[np.ndarray] = None

    # ----------------------------------------------------------- evaluation

    def awareness_distribution(self, quality: float) -> np.ndarray:
        """Steady-state ``f(a_i | q)`` for an arbitrary quality value."""
        return awareness_distribution(
            quality,
            self.visit_rate,
            self.community.death_rate,
            self.community.n_monitored_users,
        )

    def expected_visit_rate(self, popularity) -> np.ndarray:
        """The solved ``F(x)`` in monitored visits per day."""
        return self.visit_rate(popularity)

    def qpc_absolute(self) -> float:
        """Analytic quality-per-click (Section 5.2)."""
        m = self.community.n_monitored_users
        levels = np.arange(m + 1, dtype=float) / m
        numerator = 0.0
        denominator = 0.0
        for q, count in zip(self.quality_values, self.quality_counts, strict=True):
            f = self.awareness_by_quality[float(q)]
            visits = np.clip(np.asarray(self.visit_rate(levels * q), dtype=float), 0.0, None)
            weighted = count * float(np.dot(f, visits))
            numerator += weighted * q
            denominator += weighted
        if denominator <= 0:
            return 0.0
        return numerator / denominator

    def qpc_normalized(self) -> float:
        """QPC normalized by the quality-ordered ideal ranking."""
        if self.quality_pool is not None and self.quality_pool.size:
            pool = self.quality_pool
        else:
            pool = np.repeat(self.quality_values, self.quality_counts.astype(int))
        if pool.size == 0:
            return 0.0
        ideal = ideal_qpc(pool, PowerLawAttention(self.law.exponent))
        if ideal <= 0:
            return 0.0
        return self.qpc_absolute() / ideal

    def climb_rates(self, quality: float) -> np.ndarray:
        """Per-day probability of climbing one awareness level from each state."""
        m = self.community.n_monitored_users
        levels = np.arange(m + 1, dtype=float) / m
        visits = np.clip(np.asarray(self.visit_rate(levels * quality), dtype=float), 0.0, None)
        return np.clip(visits * (1.0 - levels), 0.0, 1.0)

    def tbp(self, quality: float, threshold: float = 0.99) -> float:
        """Expected time (days) for a new page of ``quality`` to become popular.

        Expected hitting time of awareness ``threshold`` in the birth-death
        chain of awareness levels, ignoring retirement (so this is the TBP of
        a page that lives long enough).  Returns ``inf`` when some
        intermediate state can never be left.
        """
        if not 0 < threshold <= 1:
            raise ValueError("threshold must lie in (0, 1]")
        m = self.community.n_monitored_users
        target_level = int(np.ceil(threshold * m))
        rates = self.climb_rates(quality)[:target_level]
        if np.any(rates <= 0):
            return float("inf")
        return float(np.sum(1.0 / rates))

    def popularity_trajectory(self, quality: float, horizon_days: int) -> np.ndarray:
        """Expected popularity of a fresh page of ``quality`` over time.

        Evolves the awareness-level occupancy distribution of a single
        surviving page day by day (retirement is conditioned away, as in the
        paper's Figure 4(a) which follows one page from creation).
        """
        if horizon_days < 1:
            raise ValueError("horizon_days must be >= 1")
        m = self.community.n_monitored_users
        levels = np.arange(m + 1, dtype=float) / m
        climb = self.climb_rates(quality)
        occupancy = np.zeros(m + 1)
        occupancy[0] = 1.0
        trajectory = np.empty(horizon_days)
        for day in range(horizon_days):
            trajectory[day] = quality * float(np.dot(occupancy, levels))
            moving = occupancy * climb
            moving[m] = 0.0
            occupancy = occupancy - moving
            occupancy[1:] += moving[:-1]
        return trajectory

    def visit_trajectory(self, quality: float, horizon_days: int) -> np.ndarray:
        """Expected monitored visits per day for a fresh page of ``quality``."""
        popularity = self.popularity_trajectory(quality, horizon_days)
        return np.clip(np.asarray(self.visit_rate(popularity), dtype=float), 0.0, None)

    def summary(self) -> str:
        """One-line description of the solved model."""
        return "%s: QPC=%.4f (normalized %.4f), z=%.1f, %d iterations%s" % (
            self.spec.describe(),
            self.qpc_absolute(),
            self.qpc_normalized(),
            self.expected_zero_awareness,
            self.iterations,
            "" if self.converged else " (not converged)",
        )


@dataclass
class SteadyStateSolver:
    """Fixed-point solver producing a :class:`SolvedModel`.

    Attributes:
        community: the community characteristics (Table 1 symbols).
        spec: which ranking method to analyze.
        grid_size: number of popularity grid points used for curve fitting.
        max_iterations: iteration cap.
        tolerance: relative change in fitted ``F`` values below which the
            iteration is declared converged.
        damping: fraction of the new fit blended into the current curve per
            iteration (1.0 = undamped).
        quality_groups: maximum number of quality levels used to summarize
            the community's quality pool.
        seed: seed for drawing the stationary quality pool.
    """

    community: CommunityConfig
    spec: RankingSpec = field(default_factory=RankingSpec.nonrandomized)
    grid_size: int = 40
    max_iterations: int = 60
    tolerance: float = 1e-3
    damping: float = 0.7
    quality_groups: int = 64
    seed: RandomSource = 0

    def solve(self) -> SolvedModel:
        """Run the fixed-point iteration and return the converged model."""
        community = self.community
        m = community.n_monitored_users
        lam = community.death_rate
        law = RankToVisitLaw(
            n_pages=community.n_pages, total_visits=community.monitored_visit_rate
        )
        qualities = community.sample_qualities(as_rng(self.seed))
        q_values, q_counts = _group_qualities(qualities, self.quality_groups)
        q_max = float(q_values.max())

        grid = np.geomspace(max(1e-6, q_max * 1e-5), q_max, self.grid_size)
        current = self._initial_curve(law, q_values, q_counts, q_max)

        converged = False
        iterations = 0
        z = 0.0
        z_previous = None
        awareness_by_quality: Dict[float, np.ndarray] = {}
        for iterations in range(1, self.max_iterations + 1):
            awareness_by_quality = {
                float(q): awareness_distribution(float(q), current, lam, m)
                for q in q_values
            }
            z_new = float(
                sum(
                    count * awareness_by_quality[float(q)][0]
                    for q, count in zip(q_values, q_counts, strict=True)
                )
            )
            # Damp the promotion-pool size too: the pool size and the
            # per-promoted-page visit rate push each other in opposite
            # directions, and the undamped iteration can oscillate between
            # "everything explored" and "nothing explored" states.
            if z_previous is None:
                z = z_new
            else:
                z = (1.0 - self.damping) * z_previous + self.damping * z_new
            z_previous = z
            fitted = self._refit(
                current, law, grid, q_values, q_counts, awareness_by_quality, z
            )
            blended = self._blend(current, fitted)
            if self._relative_change(current, blended, grid) < self.tolerance:
                current = blended
                converged = True
                break
            current = blended

        return SolvedModel(
            community=community,
            spec=self.spec,
            visit_rate=current,
            law=law,
            quality_values=q_values,
            quality_counts=q_counts,
            awareness_by_quality=awareness_by_quality,
            expected_zero_awareness=z,
            iterations=iterations,
            converged=converged,
            quality_pool=qualities,
        )

    # ------------------------------------------------------------ internals

    def _initial_curve(self, law, q_values, q_counts, q_max) -> LogQuadraticCurve:
        """Popularity-proportional initial guess with a pessimistic F(0)."""
        expected_total_popularity = float(np.dot(q_values, q_counts)) * 0.5
        scale = law.total_visits / max(expected_total_popularity, 1e-9)
        grid = np.geomspace(max(1e-6, q_max * 1e-5), q_max, self.grid_size)
        return fit_log_quadratic(grid, scale * grid, value_at_zero=float(law(law.n_pages)))

    def _refit(
        self, current, law, grid, q_values, q_counts, awareness_by_quality, z
    ) -> LogQuadraticCurve:
        """One application of the fixed-point map: awareness -> F1 -> F2 -> fit."""
        base_rank = popularity_to_rank(grid, q_values, q_counts, awareness_by_quality)
        rank_at_zero = float(
            popularity_to_rank(np.array([0.0]), q_values, q_counts, awareness_by_quality)[0]
        )
        if self.spec.kind == "nonrandomized" or not self.spec.is_randomized:
            visits = law(base_rank)
            value_at_zero = float(law(rank_at_zero))
        elif self.spec.kind == "selective":
            shifted = selective_rank_shift(base_rank, self.spec.k, self.spec.r, z)
            visits = law(shifted)
            value_at_zero = expected_promoted_visit_rate(law, z, self.spec.k, self.spec.r)
        else:  # uniform promotion
            visits = uniform_rank_adjustment(base_rank, law, self.spec.k, self.spec.r)
            value_at_zero = float(
                uniform_rank_adjustment(
                    np.array([rank_at_zero]), law, self.spec.k, self.spec.r
                )[0]
            )
        return fit_log_quadratic(grid, visits, value_at_zero=value_at_zero)

    def _blend(self, current: LogQuadraticCurve, fitted: LogQuadraticCurve) -> LogQuadraticCurve:
        """Damped coefficient update to stabilize the iteration."""
        d = self.damping
        coefficients = (1.0 - d) * current.coefficients() + d * fitted.coefficients()
        value_at_zero = (1.0 - d) * current.value_at_zero + d * fitted.value_at_zero
        return LogQuadraticCurve(
            a=float(coefficients[0]),
            b=float(coefficients[1]),
            c=float(coefficients[2]),
            value_at_zero=float(value_at_zero),
        )

    def _relative_change(self, old, new, grid) -> float:
        """Maximum relative difference of the two curves over the grid."""
        old_values = np.clip(np.asarray(old(grid), dtype=float), 1e-12, None)
        new_values = np.clip(np.asarray(new(grid), dtype=float), 1e-12, None)
        zero_change = abs(new.value_at_zero - old.value_at_zero) / max(
            old.value_at_zero, 1e-12
        )
        return float(max(np.max(np.abs(new_values - old_values) / old_values), zero_change))


def solve_model(
    community: CommunityConfig,
    ranking,
    seed: RandomSource = 0,
    **solver_kwargs,
) -> SolvedModel:
    """Convenience wrapper: solve the analytical model for a policy or spec."""
    if isinstance(ranking, RankPromotionPolicy):
        spec = RankingSpec.from_policy(ranking)
    elif isinstance(ranking, RankingSpec):
        spec = ranking
    else:
        raise TypeError("ranking must be a RankPromotionPolicy or RankingSpec")
    solver = SteadyStateSolver(community=community, spec=spec, seed=seed, **solver_kwargs)
    return solver.solve()


__all__ = ["SteadyStateSolver", "SolvedModel", "solve_model"]
