"""Declarative ranking specification consumed by the analytical model.

The simulator works with concrete :class:`~repro.core.rankers.Ranker`
objects; the analytical model only needs to know *which* of the closed-form
rank-shift formulas applies.  :class:`RankingSpec` carries that information
and converts from :class:`~repro.core.policy.RankPromotionPolicy`, so a
single policy object can drive both evaluation paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policy import RankPromotionPolicy
from repro.utils.validation import check_probability

VALID_KINDS = ("nonrandomized", "selective", "uniform")


@dataclass(frozen=True)
class RankingSpec:
    """Which ranking method the analytical model should evaluate.

    Attributes:
        kind: ``"nonrandomized"``, ``"selective"`` or ``"uniform"``.
        k: starting point of rank promotion (ignored for nonrandomized).
        r: degree of randomization (ignored for nonrandomized).
    """

    kind: str = "nonrandomized"
    k: int = 1
    r: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in VALID_KINDS:
            raise ValueError("kind must be one of %s, got %r" % (VALID_KINDS, self.kind))
        if self.k < 1:
            raise ValueError("k must be >= 1, got %d" % self.k)
        check_probability("r", self.r)
        if self.kind != "nonrandomized" and self.r >= 1.0:
            raise ValueError("the analytical model requires r < 1 for randomized ranking")

    @property
    def is_randomized(self) -> bool:
        """True when rank promotion is active."""
        return self.kind != "nonrandomized" and self.r > 0.0

    @classmethod
    def from_policy(cls, policy: RankPromotionPolicy) -> "RankingSpec":
        """Build the analytic spec matching a simulator policy."""
        if policy.is_deterministic:
            return cls(kind="nonrandomized")
        return cls(kind=policy.rule, k=policy.k, r=policy.r)

    @classmethod
    def nonrandomized(cls) -> "RankingSpec":
        """Pure popularity ranking."""
        return cls(kind="nonrandomized")

    @classmethod
    def selective(cls, r: float = 0.1, k: int = 1) -> "RankingSpec":
        """Selective randomized rank promotion."""
        return cls(kind="selective", k=k, r=r)

    @classmethod
    def uniform(cls, r: float = 0.1, k: int = 1) -> "RankingSpec":
        """Uniform randomized rank promotion."""
        return cls(kind="uniform", k=k, r=r)

    def describe(self) -> str:
        """Short description used in experiment reports."""
        if not self.is_randomized:
            return "No randomization (analysis)"
        return "%s randomization (k=%d, r=%.2f, analysis)" % (
            self.kind.capitalize(), self.k, self.r,
        )


__all__ = ["RankingSpec", "VALID_KINDS"]
