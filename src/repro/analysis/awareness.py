"""Steady-state awareness distribution (Theorem 1).

Among pages of quality ``q``, the steady-state fraction with awareness
``a_i = i / m`` is

``f(a_i | q) = lambda / ((lambda + F(0)) (1 - a_i)) * prod_{j=1..i} F(a_{j-1} q) / (lambda + F(a_j q))``

The published product form divides by ``(1 - a_i)`` and therefore breaks
down at full awareness (``a_m = 1``).  We close the boundary with the same
balance argument used in the proof: pages at full awareness are only removed
by retirement, so in steady state

``f(a_m) * lambda = f(a_{m-1}) * F(q a_{m-1}) * (1 - a_{m-1})``.

The whole vector is then normalized to sum to one.  Because the ratios
``F / lambda`` can exceed ``10^4`` the product is evaluated in log space.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.utils.validation import check_positive, check_positive_int

_LOG_EPS = 1e-300


def awareness_distribution(
    quality: float,
    visit_rate: Callable[[float], float],
    death_rate: float,
    m: int,
) -> np.ndarray:
    """Return ``f(a_i | q)`` for ``i = 0 .. m`` as a normalized vector.

    Args:
        quality: page quality ``q`` in ``(0, 1]``.
        visit_rate: the solved popularity-to-visit-rate function ``F`` in
            monitored visits per day; evaluated at the popularity values
            ``a_i * q``.
        death_rate: the Poisson retirement rate ``lambda`` per day.
        m: number of monitored users (so awareness levels are ``i / m``).
    """
    if not 0 < quality <= 1:
        raise ValueError("quality must lie in (0, 1], got %r" % quality)
    check_positive("death_rate", death_rate)
    check_positive_int("m", m)

    levels = np.arange(m + 1, dtype=float) / m
    visits = _evaluate_visit_rate(visit_rate, levels * quality)
    lam = float(death_rate)

    log_f = np.empty(m + 1)
    log_f[0] = np.log(lam) - np.log(lam + visits[0] + _LOG_EPS)
    # Interior states: the paper's ratio between consecutive awareness levels.
    for i in range(1, m):
        numerator = visits[i - 1] * (1.0 - levels[i - 1])
        denominator = (lam + visits[i]) * (1.0 - levels[i])
        log_f[i] = log_f[i - 1] + np.log(numerator + _LOG_EPS) - np.log(denominator + _LOG_EPS)
    # Boundary state a_m = 1: inflow from a_{m-1}, outflow only through death.
    inflow = visits[m - 1] * (1.0 - levels[m - 1])
    log_f[m] = log_f[m - 1] + np.log(inflow + _LOG_EPS) - np.log(lam)

    log_f -= log_f.max()
    f = np.exp(log_f)
    total = f.sum()
    if not np.isfinite(total) or total <= 0:
        raise ArithmeticError("awareness distribution failed to normalize")
    return f / total


def _evaluate_visit_rate(visit_rate: Callable, popularity: np.ndarray) -> np.ndarray:
    """Evaluate ``F`` over an array, falling back to scalar calls if needed."""
    try:
        values = np.asarray(visit_rate(popularity), dtype=float)
        if values.shape != popularity.shape:
            raise TypeError("visit_rate did not broadcast")
    except (TypeError, ValueError):
        values = np.array([float(visit_rate(float(p))) for p in popularity])
    return np.clip(values, 0.0, None)


def expected_awareness(distribution: np.ndarray) -> float:
    """Mean awareness ``E[a]`` of a distribution over levels ``i / m``."""
    distribution = np.asarray(distribution, dtype=float)
    m = distribution.size - 1
    if m < 1:
        raise ValueError("distribution must cover at least two awareness levels")
    levels = np.arange(m + 1, dtype=float) / m
    return float(np.dot(distribution, levels))


def zero_awareness_probability(distribution: np.ndarray) -> float:
    """Probability mass at awareness zero, ``f(a_0 | q)``."""
    return float(np.asarray(distribution, dtype=float)[0])


__all__ = [
    "awareness_distribution",
    "expected_awareness",
    "zero_awareness_probability",
]
