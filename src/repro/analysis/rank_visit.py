"""Popularity-to-rank and rank-to-visit relationships (Section 5.3).

The expected visit rate of a page of popularity ``x`` factors as
``F(x) = F2(F1(x))`` where:

* ``F2(rank) = theta * rank**(-3/2)`` is the rank-to-visit power law
  (Equation 4) with ``theta`` chosen so total monitored visits equal ``v``;
* ``F1(x)`` is the expected rank of a page of popularity ``x`` — one plus
  the expected number of pages whose popularity exceeds ``x`` (Equation 5),
  computed from the steady-state awareness distribution of every quality
  group in the community;
* under selective randomized promotion the rank is shifted down by the
  expected number of promoted pages inserted above it,
  ``F1'(x) = F1(x) + min(r (F1(x) - k + 1) / (1 - r), z)`` where ``z`` is the
  expected number of zero-awareness pages;
* the visit rate of a zero-awareness page (popularity 0) is computed
  directly from the expected visits landing in promotion slots, via a fluid
  walk over the merged result list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.spec import RankingSpec
from repro.utils.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class RankToVisitLaw:
    """The paper's ``F2``: visits per day of the page at a given rank.

    ``theta`` normalizes so that summing over all ``n`` ranks yields
    ``total_visits`` per day.
    """

    n_pages: int
    total_visits: float
    exponent: float = 1.5

    def __post_init__(self) -> None:
        check_positive_int("n_pages", self.n_pages)
        check_positive("total_visits", self.total_visits)
        check_positive("exponent", self.exponent)

    @property
    def theta(self) -> float:
        """Normalization constant ``theta = v / sum_i i**(-exponent)``."""
        ranks = np.arange(1, self.n_pages + 1, dtype=float)
        return self.total_visits / float(np.sum(ranks ** (-self.exponent)))

    def __call__(self, rank) -> np.ndarray:
        """Evaluate ``F2`` at (possibly fractional) rank positions >= 1."""
        rank = np.asarray(rank, dtype=float)
        clipped = np.clip(rank, 1.0, float(self.n_pages))
        return self.theta * clipped ** (-self.exponent)

    def visits_by_rank(self) -> np.ndarray:
        """Expected visits for every integer rank ``1..n``."""
        return self(np.arange(1, self.n_pages + 1, dtype=float))


def popularity_to_rank(
    x_values: np.ndarray,
    quality_values: np.ndarray,
    quality_counts: np.ndarray,
    awareness_distributions: Dict[float, np.ndarray],
) -> np.ndarray:
    """Expected rank ``F1(x)`` under non-randomized ranking (Equation 5).

    ``F1(x)`` is one plus the expected number of pages whose popularity
    exceeds ``x``.  A page of quality ``q`` exceeds popularity ``x`` when its
    awareness exceeds ``x / q``; the probability of that event is the tail
    mass of the steady-state awareness distribution above level
    ``floor(m x / q)``.

    Args:
        x_values: popularity values at which to evaluate ``F1``.
        quality_values: distinct quality levels present in the community.
        quality_counts: number of pages at each quality level.
        awareness_distributions: mapping from quality level to its
            ``f(a_i | q)`` vector of length ``m + 1``.
    """
    x_values = np.asarray(x_values, dtype=float)
    quality_values = np.asarray(quality_values, dtype=float)
    quality_counts = np.asarray(quality_counts, dtype=float)
    if quality_values.shape != quality_counts.shape:
        raise ValueError("quality_values and quality_counts must align")

    sample = next(iter(awareness_distributions.values()))
    m = sample.size - 1
    ranks = np.ones_like(x_values)
    for q, count in zip(quality_values, quality_counts, strict=True):
        f = awareness_distributions[float(q)]
        # Suffix sums: tail[j] = P(awareness >= j / m).
        tail = np.concatenate([np.cumsum(f[::-1])[::-1], [0.0]])
        # A page of quality q surpasses popularity x when i > m * x / q.
        first_exceeding = np.floor(m * x_values / q).astype(int) + 1
        first_exceeding = np.clip(first_exceeding, 0, m + 1)
        ranks += count * tail[first_exceeding]
    return ranks


def selective_rank_shift(
    base_rank: np.ndarray, k: int, r: float, expected_zero_awareness: float
) -> np.ndarray:
    """Apply the paper's selective-promotion rank shift ``F1'`` for ``x > 0``.

    Ranks better than ``k`` are unaffected; deeper ranks are pushed down by
    the promoted pages inserted above them, capped at the expected size of
    the promotion pool ``z``.
    """
    base_rank = np.asarray(base_rank, dtype=float)
    if r >= 1.0:
        raise ValueError("selective rank shift requires r < 1")
    shift = np.minimum(r * (base_rank - k + 1) / (1.0 - r), expected_zero_awareness)
    shift = np.clip(shift, 0.0, None)
    return np.where(base_rank < k, base_rank, base_rank + shift)


def expected_promoted_visit_rate(
    law: RankToVisitLaw, pool_size: float, k: int, r: float
) -> float:
    """Expected visits per day of a page in the promotion pool.

    A fluid walk over the merged result list: starting below the protected
    prefix, each slot takes mass ``r`` from the (shuffled) promotion list
    and ``1 - r`` from the deterministic list until one of them drains.  The
    promotion pool holds ``pool_size`` pages in expectation, all equally
    likely to occupy any promotion slot, so the per-page rate is the total
    visit mass landing in promotion slots divided by ``pool_size``.
    """
    if pool_size <= 0:
        return 0.0
    if not 0 < r <= 1:
        return 0.0
    n = law.n_pages
    visits = law.visits_by_rank()
    protected = min(k - 1, n)
    remaining_promoted = float(pool_size)
    remaining_deterministic = float(n - pool_size - protected)
    total_to_promoted = 0.0
    position = protected  # zero-based slot index; slot i has rank i + 1
    while position < n and remaining_promoted > 1e-12:
        if remaining_deterministic <= 1e-12:
            take = min(1.0, remaining_promoted)
        else:
            take = min(r, remaining_promoted)
        total_to_promoted += take * visits[position]
        remaining_promoted -= take
        remaining_deterministic -= max(0.0, 1.0 - take)
        position += 1
    return total_to_promoted / float(pool_size)


def uniform_rank_adjustment(
    base_rank: np.ndarray,
    law: RankToVisitLaw,
    k: int,
    r: float,
) -> np.ndarray:
    """Expected visit rate under *uniform* promotion for pages of popularity > 0.

    The paper omits the (complex) closed form; we use the natural
    approximation.  A page is promoted with probability ``r`` — in that case
    it receives the average promotion-slot visit rate — and with probability
    ``1 - r`` it stays in the deterministic list, where its rank within
    ``L_d`` shrinks to ``(1 - r)`` of the pages above it but the merge pushes
    its final slot back down by the interleaved promotion slots.  Those two
    effects cancel to first order below the protected prefix, so the
    deterministic branch keeps its base rank.

    Returns expected *visits*, not ranks, because the two branches must be
    averaged in visit space.
    """
    base_rank = np.asarray(base_rank, dtype=float)
    pool_size = r * law.n_pages
    promoted_rate = expected_promoted_visit_rate(law, pool_size, k, r)
    deterministic_rate = law(base_rank)
    return (1.0 - r) * deterministic_rate + r * promoted_rate


__all__ = [
    "RankToVisitLaw",
    "popularity_to_rank",
    "selective_rank_shift",
    "expected_promoted_visit_rate",
    "uniform_rank_adjustment",
]
