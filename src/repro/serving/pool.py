"""Multi-tenant process-per-shard serving pool with real concurrent writers.

One :class:`ServingPool` hosts many tenant communities behind a single
front door.  The parent process allocates each tenant shard's popularity
arrays in ``multiprocessing.shared_memory``
(:class:`~repro.serving.state.SharedPopularityState`: a version word,
commit counters, awareness, quality and a dirty mask per shard) and forks
worker processes that rebuild their shard engines *over* those shared
arrays through the one construction path
(:func:`repro.serving.config.build_router` with ``states=``), so a pool
worker's router cannot drift from the single-process initialization.

Because the version word is shared, any number of extra *client*
processes can attach to a shard and race feedback commits through the
same OCC contract the single-process router uses: read the version,
commit-if-unchanged under the shard lock, retry with jittered backoff,
dead-letter after ``max_attempts``.  Conflicts now arise *organically*
from genuine inter-process races — no :class:`~repro.robustness.faults.
FaultPlan` script involved — while remaining seed-stable per (tenant,
worker) and per client stream.

Robustness: worker inboxes are bounded queues, so a front door that
outruns a worker observes backpressure (counted, then blocking) instead
of unbounded queue growth; :meth:`ServingPool.ensure_alive` restarts
crashed workers, whose shard state survives in shared memory.

``serve-bench --tenants T --clients C --workers W`` drives
:func:`run_pool_benchmark`, which reports the aggregate-QPS scaling
ratio, the organic-conflict and zero-lost-visits invariants, and the
saturation/backpressure check that CI gates.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.robustness.occ import DeadLetter, DeadLetterQueue
from repro.serving.bench import sample_steady_awareness
from repro.serving.config import ServingConfig, build_router
from repro.serving.state import (
    SharedPopularityState,
    SharedShardHandle,
    shared_memory_available,
)
from repro.serving.tenancy import TenantSpec, plan_tenancy
from repro.serving.workload import StreamingWorkload, WorkloadConfig, run_stream
from repro.telemetry.recorder import NULL_RECORDER
from repro.utils.rng import as_rng, derive_seed, spawn_rngs


def _pool_context():
    """Fork context when available (cheap worker start, inherited locks)."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# ---------------------------------------------------------------- workers


def _worker_main(
    worker_index: int,
    config: ServingConfig,
    specs: Sequence[TenantSpec],
    handles: Dict[int, List[SharedShardHandle]],
    locks: Dict[int, list],
    inbox,
    outbox,
) -> None:
    """Entry point of one pool worker process.

    Rebuilds this worker's tenant routers over the shared shard blocks,
    then serves ``("run", tenant, n_queries)`` work items from the inbox
    until a ``("stop",)`` message, finishing with a final flush plus
    dead-letter redelivery and one stats payload on the outbox.
    """
    routers = {}
    workloads = {}
    for spec in specs:
        states = [
            SharedPopularityState.attach(handle, lock)
            for handle, lock in zip(handles[spec.tenant], locks[spec.tenant], strict=True)
        ]
        routers[spec.tenant] = build_router(config, seed=spec.seed, states=states)
        workloads[spec.tenant] = StreamingWorkload(
            WorkloadConfig(feedback_rate=config.feedback_rate),
            seed=derive_seed(spec.seed, "pool-stream"),
        )
    queries_per_tenant = {spec.tenant: 0.0 for spec in specs}
    busy_seconds = 0.0
    feedback_events = 0.0
    committed = 0.0
    while True:
        message = inbox.get()
        if message[0] == "stop":
            break
        _, tenant, n_queries = message
        stats = run_stream(routers[tenant], int(n_queries), workload=workloads[tenant])
        queries_per_tenant[tenant] += float(stats.queries)
        busy_seconds += stats.elapsed_seconds
        feedback_events += float(stats.feedback_events)
        committed += stats.extra.get("flush_committed", 0.0)
    # Drain: buffered feedback, then parked batches.  Redelivery converges
    # because every conflict means another writer's commit landed — once
    # the racing writers finish, the next attempt sees a stable version.
    leftover_events = 0.0
    for router in routers.values():
        report = router.flush_feedback()
        rounds = 0
        while len(router.dead_letters) and rounds < 64:
            report.merge(router.redeliver_dead_letters())
            rounds += 1
        committed += float(report.committed)
        leftover_events += float(
            sum(letter.events for letter in router.dead_letters.letters)
        )
    payload = {
        "worker": float(worker_index),
        "queries": float(sum(queries_per_tenant.values())),
        "busy_seconds": busy_seconds,
        "feedback_events": feedback_events,
        "committed_events": committed,
        "dead_letter_events": leftover_events,
        "occ_conflicts": float(sum(r.occ_conflicts for r in routers.values())),
        "occ_retries": float(sum(r.occ_retries for r in routers.values())),
    }
    for tenant, count in queries_per_tenant.items():
        payload["queries_tenant_%d" % tenant] = count
    outbox.put(("stats", worker_index, payload))


# ---------------------------------------------------------------- clients


def _client_main(
    client_index: int,
    config: ServingConfig,
    targets: Sequence[Tuple[SharedShardHandle, object]],
    barrier,
    sync_rounds: int,
    rounds: int,
    batch: int,
    outbox,
) -> None:
    """Entry point of one concurrent OCC writer process.

    Attaches to the target shards and commits ``rounds`` feedback batches
    through the exact commit loop contract the router uses: read the
    version *outside* the lock, commit-if-unchanged, retry with the
    config's jittered backoff, dead-letter after ``max_attempts``, then
    redeliver parked batches until the queue drains.

    During the first ``sync_rounds`` rounds the clients rendezvous at
    ``barrier`` twice: once before reading the version and once *between*
    the version read and the commit.  The second rendezvous makes the
    race deterministic on any core count — every synchronized client
    provably holds the same expected version when the commits start, so
    with two or more clients each such round produces at least one
    organic conflict (only one commit per shard can win the version).
    """
    states = [SharedPopularityState.attach(handle, lock) for handle, lock in targets]
    policy = config.retry_policy()
    draw_rng = as_rng(derive_seed(config.seed, "pool-client-%d" % client_index))
    retry_rng = as_rng(derive_seed(config.seed, "pool-client-retry-%d" % client_index))
    dead = DeadLetterQueue()
    sent = 0
    committed = 0
    conflicts = 0
    retries = 0

    def rendezvous() -> None:
        try:
            barrier.wait(timeout=30.0)
        except threading.BrokenBarrierError:
            pass

    def commit_batch(
        shard: int,
        indices: np.ndarray,
        visits: np.ndarray,
        expected: Optional[int] = None,
    ) -> bool:
        nonlocal committed, conflicts, retries
        state = states[shard]
        attempts = 0
        while True:
            if expected is None:
                expected = state.version
            if state.commit_visits_at(indices, visits, expected, rng=retry_rng):
                committed += int(indices.size)
                return True
            expected = None
            attempts += 1
            conflicts += 1
            if attempts >= policy.max_attempts:
                return False
            retries += 1
            backoff = policy.backoff_seconds(attempts, retry_rng)
            if backoff > 0.0:
                time.sleep(backoff)

    for round_index in range(rounds):
        synchronized = barrier is not None and round_index < sync_rounds
        shard = round_index % len(states)
        indices = draw_rng.integers(0, states[shard].n, size=batch)
        visits = np.ones(batch, dtype=float)
        sent += batch
        expected = None
        if synchronized:
            rendezvous()
            expected = states[shard].version
            rendezvous()
        if not commit_batch(shard, indices, visits, expected=expected):
            dead.park(
                DeadLetter(
                    shard=shard,
                    indices=indices,
                    visits=visits,
                    attempts=policy.max_attempts,
                )
            )
    redelivery_rounds = 0
    while len(dead) and redelivery_rounds < 1000:
        redelivery_rounds += 1
        for letter in dead.drain():
            if not commit_batch(letter.shard, letter.indices, letter.visits):
                dead.park(letter)
    leftover = sum(letter.events for letter in dead.letters)
    for state in states:
        state.close()
    outbox.put(
        (
            "client",
            client_index,
            {
                "client": float(client_index),
                "sent_events": float(sent),
                "committed_events": float(committed),
                "conflicts": float(conflicts),
                "retries": float(retries),
                "dead_letter_events": float(leftover),
                "redelivery_rounds": float(redelivery_rounds),
            },
        )
    )


# ------------------------------------------------------------------- pool


class ServingPool:
    """Process-per-shard serving pool over shared-memory popularity state.

    The parent owns the shared blocks and the front door; each worker
    process owns the serving engines of the tenants assigned to it by
    :func:`~repro.serving.tenancy.plan_tenancy`.  Work arrives as
    ``submit(tenant, n_queries)`` batches routed to the owning worker's
    bounded inbox.
    """

    def __init__(
        self,
        config: ServingConfig,
        telemetry=None,
        warm: bool = False,
    ) -> None:
        if config.workers < 1:
            raise ValueError(
                "a serving pool needs workers >= 1, got %d "
                "(use build_router for the in-process path)" % config.workers
            )
        if not shared_memory_available():
            raise RuntimeError(
                "multiprocessing.shared_memory is unavailable on this platform"
            )
        self.config = config
        self.telemetry = telemetry if telemetry is not None else NULL_RECORDER
        self.specs = plan_tenancy(
            config.tenants, config.workers, config.seed, config.n_pages
        )
        self._context = _pool_context()
        self.backpressure_events = 0
        self.worker_restarts = 0
        self._released = False

        # One shared block + lock per (tenant, shard), partitioned exactly
        # the way build_router partitions a community, with the quality
        # draw consumed from the same per-shard child stream — workers
        # re-derive identical generators from the tenant seed.
        self.states: Dict[int, List[SharedPopularityState]] = {}
        self.locks: Dict[int, list] = {}
        self.handles: Dict[int, List[SharedShardHandle]] = {}
        community = config.community()
        base, remainder = divmod(community.n_pages, config.n_shards)
        for spec in self.specs:
            rngs = spawn_rngs(spec.seed, config.n_shards)
            tenant_states = []
            tenant_locks = []
            for shard, rng in enumerate(rngs):
                shard_community = community.scaled(
                    base + (1 if shard < remainder else 0)
                )
                lock = self._context.Lock()
                tenant_states.append(
                    SharedPopularityState.create(
                        shard_community, rng, config.mode, lock=lock
                    )
                )
                tenant_locks.append(lock)
            self.states[spec.tenant] = tenant_states
            self.locks[spec.tenant] = tenant_locks
            self.handles[spec.tenant] = [state.handle for state in tenant_states]
        if warm:
            self.warm()

        self._inboxes = [
            self._context.Queue(maxsize=config.inbox_capacity)
            for _ in range(config.workers)
        ]
        self._outbox = self._context.Queue()
        self._client_outbox = self._context.Queue()
        self._workers = [
            self._spawn_worker(index) for index in range(config.workers)
        ]

    # ------------------------------------------------------------ workers

    def _spawn_worker(self, index: int):
        specs = [spec for spec in self.specs if spec.worker == index]
        process = self._context.Process(
            target=_worker_main,
            args=(
                index,
                self.config,
                specs,
                self.handles,
                self.locks,
                self._inboxes[index],
                self._outbox,
            ),
            daemon=True,
        )
        process.start()
        return process

    def ensure_alive(self) -> List[int]:
        """Restart any dead worker; its shard state survived in shared memory.

        Returns the restarted worker indices.  A restarted worker rebuilds
        its engines over the live shared arrays (popularity is preserved;
        process-local lifecycle clocks restart) and consumes a *fresh*
        inbox: a process killed while blocked in ``Queue.get`` dies holding
        the queue's internal reader lock, which would deadlock any
        successor on the old queue.  Batches in flight at crash time are
        therefore at-most-once; their feedback, if already committed, is
        durable in the shared arrays.
        """
        restarted = []
        for index, process in enumerate(self._workers):
            if not process.is_alive():
                self._inboxes[index] = self._context.Queue(
                    maxsize=self.config.inbox_capacity
                )
                self._workers[index] = self._spawn_worker(index)
                self.worker_restarts += 1
                restarted.append(index)
        return restarted

    # --------------------------------------------------------- front door

    def worker_for(self, tenant: int) -> int:
        """Worker index hosting ``tenant``."""
        return self.specs[tenant].worker

    def submit(self, tenant: int, n_queries: int) -> None:
        """Enqueue one batch of ``tenant`` queries on its worker's inbox.

        Inboxes are bounded: when the owning worker has fallen behind the
        submission is counted as a backpressure event and then blocks
        until the worker drains a slot — the queue cannot grow without
        bound.
        """
        message = ("run", int(tenant), int(n_queries))
        inbox = self._inboxes[self.worker_for(tenant)]
        try:
            inbox.put_nowait(message)
        except queue_module.Full:
            self.backpressure_events += 1
            inbox.put(message)

    def warm(self) -> None:
        """Seed every tenant shard with a steady-state awareness profile.

        Per tenant this is :func:`~repro.serving.bench.
        seed_steady_state_awareness`'s recipe with the tenant's derived
        warm stream, applied before the workers fork.
        """
        for spec in self.specs:
            generator = as_rng(derive_seed(spec.seed, "serving-warm"))
            for state in self.states[spec.tenant]:
                state.set_awareness(
                    sample_steady_awareness(
                        state.n, state.pool.monitored_population, generator
                    )
                )

    # ------------------------------------------------------------ clients

    def start_clients(
        self,
        clients: int,
        rounds: int = 8,
        batch: int = 16,
        sync_rounds: int = 2,
        tenant: int = 0,
    ) -> list:
        """Launch ``clients`` concurrent OCC writer processes on ``tenant``.

        Returns the started processes; collect their reports with
        :meth:`join_clients`.  With two or more clients the first
        ``sync_rounds`` rounds rendezvous at a barrier so at least one
        organic conflict is guaranteed even on a single-core host.
        """
        if clients < 1:
            return []
        barrier = self._context.Barrier(clients) if clients > 1 else None
        targets = list(zip(self.handles[tenant], self.locks[tenant], strict=True))
        processes = []
        for index in range(clients):
            process = self._context.Process(
                target=_client_main,
                args=(
                    index,
                    self.config,
                    targets,
                    barrier,
                    sync_rounds,
                    rounds,
                    batch,
                    self._client_outbox,
                ),
                daemon=True,
            )
            process.start()
            processes.append(process)
        return processes

    def join_clients(self, processes, timeout: float = 120.0) -> List[Dict]:
        """Wait for client writers and return their report payloads."""
        payloads = []
        deadline = time.monotonic() + timeout
        while len(payloads) < len(processes) and time.monotonic() < deadline:
            try:
                kind, _, payload = self._client_outbox.get(timeout=1.0)
            except queue_module.Empty:
                continue
            if kind == "client":
                payloads.append(payload)
                if self.telemetry.enabled:
                    row = dict(payload)
                    row["kind"] = "pool_client"
                    self.telemetry.emit_row(row)
        for process in processes:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
        return payloads

    # ----------------------------------------------------------- shutdown

    def shutdown(self, timeout: float = 120.0) -> Dict[str, float]:
        """Stop the workers, gather their reports, release shared memory.

        Returns the aggregated pool statistics (per-worker and per-tenant
        query counts, OCC accounting from both the workers and the shared
        headers, backpressure and restart counters).
        """
        for inbox in self._inboxes:
            inbox.put(("stop",))
        payloads: Dict[int, Dict] = {}
        deadline = time.monotonic() + timeout
        while len(payloads) < len(self._workers) and time.monotonic() < deadline:
            try:
                kind, index, payload = self._outbox.get(timeout=1.0)
            except queue_module.Empty:
                continue
            if kind == "stats":
                payloads[index] = payload
        for process in self._workers:
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
        stats = self._aggregate(payloads)
        self.release()
        return stats

    def shared_counters(self) -> Dict[str, float]:
        """Commit accounting summed over every tenant shard's header."""
        totals = {
            "shared_committed_events": 0.0,
            "shared_committed_batches": 0.0,
            "shared_conflicts": 0.0,
        }
        for states in self.states.values():
            for state in states:
                counters = state.counters()
                for key in totals:
                    totals[key] += counters[key]
        return totals

    def _aggregate(self, payloads: Dict[int, Dict]) -> Dict[str, float]:
        stats = {
            "tenants": float(self.config.tenants),
            "workers": float(self.config.workers),
            "queries": 0.0,
            "busy_seconds": 0.0,
            "feedback_events": 0.0,
            "worker_committed_events": 0.0,
            "worker_dead_letter_events": 0.0,
            "occ_conflicts": 0.0,
            "occ_retries": 0.0,
            "worker_reports": float(len(payloads)),
            "backpressure_events": float(self.backpressure_events),
            "worker_restarts": float(self.worker_restarts),
        }
        for payload in payloads.values():
            stats["queries"] += payload["queries"]
            stats["busy_seconds"] += payload["busy_seconds"]
            stats["feedback_events"] += payload["feedback_events"]
            stats["worker_committed_events"] += payload["committed_events"]
            stats["worker_dead_letter_events"] += payload["dead_letter_events"]
            stats["occ_conflicts"] += payload["occ_conflicts"]
            stats["occ_retries"] += payload["occ_retries"]
            for key, value in payload.items():
                if key.startswith("queries_tenant_"):
                    stats[key] = stats.get(key, 0.0) + value
            if self.telemetry.enabled:
                row = dict(payload)
                row["kind"] = "pool_worker"
                self.telemetry.emit_row(row)
        stats.update(self.shared_counters())
        return stats

    def release(self) -> None:
        """Close and unlink every shared block (idempotent)."""
        if self._released:
            return
        self._released = True
        for states in self.states.values():
            for state in states:
                state.close()
                state.unlink()


# -------------------------------------------------------------- benchmark


def run_pool_benchmark(
    n_pages: int = 2_000,
    n_shards: int = 2,
    tenants: int = 2,
    workers: int = 2,
    clients: int = 2,
    n_queries: int = 2_000,
    batches_per_tenant: int = 4,
    client_rounds: int = 6,
    client_batch: int = 16,
    seed: int = 0,
    mode: str = "fluid",
    cache_capacity: Optional[int] = 64,
    staleness_budget: int = 4,
    inbox_capacity: int = 8,
    max_attempts: int = 4,
    telemetry=None,
    config: Optional[ServingConfig] = None,
) -> Dict[str, float]:
    """Measure aggregate-QPS scaling and the pool's OCC invariants.

    Three phases over identical per-tenant workloads:

    1. *reference* — the same tenants behind a single worker;
    2. *pool* — ``workers`` worker processes plus ``clients`` concurrent
       OCC writer processes hammering tenant 0's shards;
    3. *saturation* — a burst of submissions against a deliberately tiny
       inbox, asserting backpressure engages (bounded queues block, they
       do not grow).

    The headline ``pool_scaling_ratio`` normalizes the pool-vs-reference
    speedup by ``min(workers, cpu_count)`` so the floor is
    machine-independent: perfect scaling is ~1.0 on any core count, and a
    single-core host (where the pool cannot beat one worker) still lands
    near 1.0 instead of failing the gate.  ``pool_zero_lost`` is 1.0 iff
    every feedback event sent by any writer is accounted for as committed
    or parked *and* the writers' commit counts equal the shared headers';
    ``pool_organic_conflict`` is 1.0 iff the shared headers saw a real
    racing commit rejected.
    """
    if config is None:
        config = ServingConfig(
            n_pages=n_pages,
            n_shards=n_shards,
            mode=mode,
            cache_capacity=cache_capacity,
            staleness_budget=staleness_budget,
            seed=seed,
            tenants=tenants,
            workers=workers,
            clients=clients,
            inbox_capacity=inbox_capacity,
            max_attempts=max_attempts,
        )
    per_batch = max(1, int(n_queries) // max(1, batches_per_tenant))

    def drive(pool: ServingPool) -> float:
        started = time.perf_counter()
        for _batch_index in range(batches_per_tenant):
            for tenant in range(pool.config.tenants):
                pool.submit(tenant, per_batch)
        return started

    # Phase 1: single-worker reference over the same tenants and batches.
    reference = ServingPool(config.replace(workers=1, clients=0), warm=True)
    started = drive(reference)
    reference_stats = reference.shutdown()
    reference_seconds = time.perf_counter() - started
    qps_single = reference_stats["queries"] / max(reference_seconds, 1e-9)

    # Phase 2: the full pool with concurrent client writers.
    pool = ServingPool(config, telemetry=telemetry, warm=True)
    client_processes = pool.start_clients(
        config.clients, rounds=client_rounds, batch=client_batch
    )
    started = drive(pool)
    client_payloads = pool.join_clients(client_processes)
    pool_stats = pool.shutdown()
    pool_seconds = time.perf_counter() - started
    qps_pool = pool_stats["queries"] / max(pool_seconds, 1e-9)

    # Phase 3: saturation — a burst against a tiny inbox must engage
    # backpressure rather than grow the queue.
    saturation = ServingPool(
        config.replace(workers=1, clients=0, inbox_capacity=1), warm=True
    )
    for _ in range(8):
        saturation.submit(0, per_batch)
    saturation_stats = saturation.shutdown()

    client_sent = sum(p["sent_events"] for p in client_payloads)
    client_committed = sum(p["committed_events"] for p in client_payloads)
    client_leftover = sum(p["dead_letter_events"] for p in client_payloads)
    client_conflicts = sum(p["conflicts"] for p in client_payloads)
    total_sent = pool_stats["feedback_events"] + client_sent
    total_committed = pool_stats["worker_committed_events"] + client_committed
    total_leftover = pool_stats["worker_dead_letter_events"] + client_leftover
    lost_events = total_sent - total_committed - total_leftover
    header_matches = (
        pool_stats["shared_committed_events"] == total_committed
    )
    organic_conflicts = pool_stats["shared_conflicts"]

    cores = os.cpu_count() or 1
    scaling = (qps_pool / max(qps_single, 1e-9)) / min(config.workers, cores)
    report = {
        "kernel_backend": os.environ.get("REPRO_KERNEL_BACKEND", "numpy"),
        "tenants": float(config.tenants),
        "workers": float(config.workers),
        "clients": float(config.clients),
        "n_pages": float(config.n_pages),
        "n_shards": float(config.n_shards),
        "queries": pool_stats["queries"],
        "queries_per_second": qps_pool,
        "qps_single_worker": qps_single,
        "pool_scaling_ratio": scaling,
        "pool_organic_conflict": 1.0 if organic_conflicts >= 1 else 0.0,
        "pool_zero_lost": 1.0 if (lost_events == 0 and header_matches) else 0.0,
        "pool_backpressure_engaged": (
            1.0 if saturation_stats["backpressure_events"] >= 1 else 0.0
        ),
        "lost_events": float(lost_events),
        "organic_conflicts": float(organic_conflicts),
        "client_sent_events": float(client_sent),
        "client_committed_events": float(client_committed),
        "client_conflicts": float(client_conflicts),
        "client_dead_letter_events": float(client_leftover),
        "worker_feedback_events": pool_stats["feedback_events"],
        "worker_committed_events": pool_stats["worker_committed_events"],
        "worker_dead_letter_events": pool_stats["worker_dead_letter_events"],
        "shared_committed_events": pool_stats["shared_committed_events"],
        "shared_conflicts": pool_stats["shared_conflicts"],
        "backpressure_events": saturation_stats["backpressure_events"],
        "worker_restarts": pool_stats["worker_restarts"],
    }
    for key, value in pool_stats.items():
        if key.startswith("queries_tenant_"):
            report[key] = value
    if telemetry is not None:
        row = dict(report)
        row["kind"] = "pool_summary"
        telemetry.emit_row(row)
        # Snapshot keys arrive already ``telemetry_``-prefixed.
        report.update(telemetry.snapshot())
    return report


__all__ = [
    "ServingPool",
    "run_pool_benchmark",
]
