"""Online ranking service: incremental serving over the paper's model.

Where the :mod:`repro.simulation` package recomputes a full ranking per
simulated day, this package answers a *stream of queries*:

* :class:`PopularityState` — versioned per-page popularity updated in
  O(batch) from visit feedback;
* :class:`ServingEngine` — lazy ``top_k`` serving with an incrementally
  repaired popularity order and prefix-only randomized promotion;
* :class:`ResultPageCache` — version-stamped LRU result pages with
  optimistic validate-on-read invalidation;
* :class:`ShardedRouter` — hashes queries across community shards and
  batches feedback application;
* :class:`ServingConfig` / :func:`build_router` / :func:`build_pool` —
  the one frozen, JSON-round-trippable construction surface for the
  whole serving tier;
* :class:`ServingPool` — multi-tenant process-per-shard pool over
  shared-memory popularity state
  (:class:`SharedPopularityState`), with real concurrent OCC writers;
* :class:`StreamingWorkload` / :func:`run_stream` — Zipf-skewed query
  traffic with click feedback for end-to-end driving;
* :func:`run_serving_benchmark` / :func:`run_pool_benchmark` — the
  ``serve-bench`` drivers (in-process and pool modes).

The exact offline semantics stay reachable through
:func:`repro.simulation.replay.replay_day`, which replays a simulator day
through an engine with bit-identical results.
"""

from repro.serving.cache import CacheStats, ResultPageCache, page_key
from repro.serving.config import ServingConfig, build_pool, build_router
from repro.serving.engine import ServingEngine
from repro.serving.router import (
    RouterRobustnessState,
    ShardedRouter,
    stable_shard_hash,
)
from repro.serving.state import (
    PopularityState,
    SharedPopularityState,
    SharedShardHandle,
    shared_memory_available,
)
from repro.serving.tenancy import TenantSpec, plan_tenancy
from repro.serving.workload import (
    ServingStats,
    StreamingWorkload,
    WorkloadConfig,
    run_stream,
)
from repro.serving.workload import RecordedTrace, record_trace
from repro.serving.bench import run_serving_benchmark
from repro.serving.pool import ServingPool, run_pool_benchmark
from repro.serving.sweep import (
    ServingSweep,
    SweepResult,
    SweepVariant,
    build_variant_router,
    run_sweep,
    run_sweep_benchmark,
    variant_grid,
)

__all__ = [
    "PopularityState",
    "SharedPopularityState",
    "SharedShardHandle",
    "shared_memory_available",
    "ServingEngine",
    "ResultPageCache",
    "CacheStats",
    "page_key",
    "ShardedRouter",
    "RouterRobustnessState",
    "stable_shard_hash",
    "ServingConfig",
    "build_router",
    "build_pool",
    "ServingPool",
    "run_pool_benchmark",
    "TenantSpec",
    "plan_tenancy",
    "StreamingWorkload",
    "WorkloadConfig",
    "RecordedTrace",
    "record_trace",
    "ServingStats",
    "run_stream",
    "run_serving_benchmark",
    "ServingSweep",
    "SweepResult",
    "SweepVariant",
    "variant_grid",
    "build_variant_router",
    "run_sweep",
    "run_sweep_benchmark",
]
