"""Online ranking service: incremental serving over the paper's model.

Where the :mod:`repro.simulation` package recomputes a full ranking per
simulated day, this package answers a *stream of queries*:

* :class:`PopularityState` — versioned per-page popularity updated in
  O(batch) from visit feedback;
* :class:`ServingEngine` — lazy ``top_k`` serving with an incrementally
  repaired popularity order and prefix-only randomized promotion;
* :class:`ResultPageCache` — version-stamped LRU result pages with
  optimistic validate-on-read invalidation;
* :class:`ShardedRouter` — hashes queries across community shards and
  batches feedback application;
* :class:`StreamingWorkload` / :func:`run_stream` — Zipf-skewed query
  traffic with click feedback for end-to-end driving;
* :func:`run_serving_benchmark` — the ``serve-bench`` driver.

The exact offline semantics stay reachable through
:func:`repro.simulation.replay.replay_day`, which replays a simulator day
through an engine with bit-identical results.
"""

from repro.serving.cache import CacheStats, ResultPageCache, page_key
from repro.serving.engine import ServingEngine
from repro.serving.router import ShardedRouter, stable_shard_hash
from repro.serving.state import PopularityState
from repro.serving.workload import (
    ServingStats,
    StreamingWorkload,
    WorkloadConfig,
    run_stream,
)
from repro.serving.workload import RecordedTrace, record_trace
from repro.serving.bench import run_serving_benchmark
from repro.serving.sweep import (
    ServingSweep,
    SweepResult,
    SweepVariant,
    build_variant_router,
    run_sweep,
    run_sweep_benchmark,
    variant_grid,
)

__all__ = [
    "PopularityState",
    "ServingEngine",
    "ResultPageCache",
    "CacheStats",
    "page_key",
    "ShardedRouter",
    "stable_shard_hash",
    "StreamingWorkload",
    "WorkloadConfig",
    "RecordedTrace",
    "record_trace",
    "ServingStats",
    "run_stream",
    "run_serving_benchmark",
    "ServingSweep",
    "SweepResult",
    "SweepVariant",
    "variant_grid",
    "build_variant_router",
    "run_sweep",
    "run_sweep_benchmark",
]
