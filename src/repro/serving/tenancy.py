"""Tenant planning for the multi-tenant serving pool.

A *tenant* is one independent community (its own pages, popularity state
and random stream) hosted behind the pool's shared front door.  Planning
is deliberately trivial and deterministic: tenant ``t`` always gets the
seed ``derive_seed(root, "tenant-t")`` and lands on worker ``t % W``, so
a pool with the same ``(tenants, workers, seed)`` shape reproduces every
per-tenant stream regardless of how queries interleave at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class TenantSpec:
    """Where one tenant community lives and which stream drives it.

    Attributes:
        tenant: tenant index in ``[0, tenants)``.
        worker: index of the worker process hosting this tenant's shards.
        seed: derived root seed for the tenant's engines and workload.
        n_pages: community size of the tenant.
    """

    tenant: int
    worker: int
    seed: int
    n_pages: int

    @property
    def name(self) -> str:
        return "tenant-%d" % self.tenant


def plan_tenancy(
    tenants: int, workers: int, seed: int, n_pages: int
) -> List[TenantSpec]:
    """Assign ``tenants`` communities round-robin over ``workers`` processes.

    Round-robin keeps the per-worker tenant counts within one of each
    other, and — because the assignment depends only on the indices — a
    resized pool moves whole tenants rather than reshuffling pages.
    """
    if tenants < 1:
        raise ValueError("tenants must be >= 1, got %d" % tenants)
    if workers < 1:
        raise ValueError("workers must be >= 1, got %d" % workers)
    return [
        TenantSpec(
            tenant=tenant,
            worker=tenant % workers,
            seed=derive_seed(seed, "tenant-%d" % tenant),
            n_pages=n_pages,
        )
        for tenant in range(tenants)
    ]


__all__ = ["TenantSpec", "plan_tenancy"]
