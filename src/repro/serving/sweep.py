"""Batched serving-replay sweep: R serving variants replayed in lockstep.

Choosing a serving configuration — page length ``k``, promotion ratio
``r``, cache budget, shard count — means replaying the *same* recorded
query stream under every candidate and comparing the outcomes.  Replaying
the variants one at a time costs R full Python-level query loops; this
module replays them **in lockstep** instead, and the per-variant outcome is
**bit-identical** to running each variant's
:class:`~repro.serving.router.ShardedRouter` alone at equal seeds (the
ground truth is :func:`repro.simulation.replay.replay_trace`; the parity
tests assert digest/state equality per variant).

The lockstep structure exploits one invariant of the serving stack: between
two feedback flushes (and lifecycle days) every variant's popularity state
is *frozen*, because the router buffers click feedback.  The sweep
therefore advances the stream one **window** at a time (windows end at the
trace's flush/day boundaries, :meth:`RecordedTrace.boundaries`):

* each variant's shard lane serves at most one *distinct* result page per
  window, so the R x window_length standalone ``serve`` calls collapse to
  at most one cache validate-on-read per lane (the OCC version-stamp check)
  plus arithmetic hit accounting;
* the lanes whose stamps went stale recompute **together**: fresh lanes
  bootstrap their maintained orders through one batched
  :func:`~repro.core.batch_rank.batched_deterministic_order` call (stacked
  ``(L, n)`` popularity, per-lane generators — the same batched argsort +
  exact tie-run repair the batch simulator uses), and the randomized
  prefix merges share one
  :func:`~repro.core.batch_rank.batched_prefix_promotion_slots` call (the
  clipped-cumsum slot algebra) for their coin-to-slot bookkeeping;
* served pages, click positions and feedback routing are computed for the
  whole window as array programs (one gather + one CRC per variant per
  window instead of per query).

Parity is structural where it matters: every lane *is* a real
:class:`~repro.serving.engine.ServingEngine` (same construction order,
same spawned generators, same cache/state/repair code), and the sweep only
replaces the per-query outer loop — each engine's generator is consumed in
exactly the standalone order (order bootstrap → pool mask → merge coins →
pool sample per recompute; flush and lifecycle draws via the router's own
methods).  Variants whose configuration defeats window collapsing (no
cache *and* a randomized policy: every query legitimately re-rolls its
promotions) fall back to the per-query path lane-by-lane and stay exact.
"""

from __future__ import annotations

import itertools
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.community.config import CommunityConfig, DEFAULT_COMMUNITY
from repro.core.batch_rank import (
    batched_deterministic_order,
    batched_prefix_promotion_slots,
)
from repro.core.kernels import get_backend
from repro.core.kernels import ROUTE_STATS
from repro.core.policy import VALID_RULES, RankPromotionPolicy
from repro.serving.cache import page_key
from repro.serving.engine import ServingEngine
from repro.serving.router import ShardedRouter, stable_shard_hash
from repro.serving.workload import RecordedTrace, StreamingWorkload, WorkloadConfig, record_trace
from repro.utils.parallel import default_workers
from repro.utils.rng import derive_seed
from repro.visits.attention import AttentionModel, PowerLawAttention

_SEED_MASK = 0xFFFFFFFFFFFFFFFF

#: Shared scratch for single-shard routing: every query lands on lane 0, so
#: all single-shard variants can view one constant zero vector per window
#: instead of allocating their own.
_ZERO_SHARDS = np.zeros(4096, dtype=np.int64)
_ZERO_SHARDS.setflags(write=False)
_SINGLE_LANE = np.zeros(1, dtype=np.int64)
_SINGLE_LANE.setflags(write=False)


@dataclass(frozen=True)
class SweepVariant:
    """One serving configuration in a sweep grid.

    Attributes:
        k: result-page length served per query.
        r: degree of randomization of the promotion merge.
        rule: promotion rule kind (``none``/``uniform``/``selective``).
        promote_k: protected prefix — ranks better than this never move.
        cache_capacity: result pages cached per shard; ``None`` or ``0``
            disables caching.
        staleness_budget: state versions a cached page may lag before the
            validate-on-read check discards it.
        n_shards: community shards behind the variant's router.
        mode: popularity update mode (``fluid`` or ``stochastic``).
    """

    k: int = 10
    r: float = 0.1
    rule: str = "selective"
    promote_k: int = 1
    cache_capacity: Optional[int] = 64
    staleness_budget: int = 0
    n_shards: int = 1
    mode: str = "fluid"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1, got %d" % self.k)
        # Promotion parameters are validated by the policy construction.
        self.policy()

    def policy(self) -> RankPromotionPolicy:
        """The rank promotion policy this variant serves under."""
        return RankPromotionPolicy(self.rule, self.promote_k, self.r)

    @property
    def effective_cache_capacity(self) -> Optional[int]:
        """Cache capacity with ``0`` normalized to "no cache"."""
        if not self.cache_capacity:
            return None
        return self.cache_capacity

    def label(self) -> str:
        """Short row label used in sweep tables."""
        cache = (
            "off"
            if self.effective_cache_capacity is None
            else "%d/lag%d" % (self.effective_cache_capacity, self.staleness_budget)
        )
        return "k=%d r=%.2f %s cache=%s shards=%d" % (
            self.k, self.r, self.rule, cache, self.n_shards,
        )


def variant_grid(
    ks: Sequence[int] = (10, 20),
    rs: Sequence[float] = (0.0, 0.1, 0.2, 0.3),
    staleness_budgets: Sequence[int] = (0, 4),
    shard_counts: Sequence[int] = (1, 2),
    cache_capacity: Optional[int] = 64,
    rule: str = "selective",
    promote_k: int = 1,
    mode: str = "fluid",
) -> List[SweepVariant]:
    """Cartesian grid of sweep variants over the paper's serving knobs.

    The four grid axes are page length ``k``, randomization degree ``r``,
    the cache's bounded-staleness budget (the OCC validate-on-read knob),
    and the shard count.  The grid order is deterministic (``ks``
    outermost, ``shard_counts`` innermost), so variant ``i`` maps to the
    same configuration on every run — which is what keeps per-variant
    seeds stable across the sweep and the standalone baseline.
    """
    if rule not in VALID_RULES:
        raise ValueError("rule must be one of %s, got %r" % (VALID_RULES, rule))
    return [
        SweepVariant(
            k=int(k),
            r=float(r),
            rule=rule,
            promote_k=promote_k,
            cache_capacity=cache_capacity,
            staleness_budget=int(budget),
            n_shards=int(shards),
            mode=mode,
        )
        for k, r, budget, shards in itertools.product(
            ks, rs, staleness_budgets, shard_counts
        )
    ]


def parse_grid_values(
    spec: str,
    kind: type = int,
    name: str = "grid",
    minimum=None,
    maximum=None,
) -> List:
    """Parse a comma-separated CLI grid spec (``"10,20"``) into values.

    ``minimum``/``maximum`` bound every parsed value with a clear error —
    the same early validation the kernel layer applies to ``k`` and ``r``,
    so an out-of-range grid axis fails at parse time instead of deep inside
    a sweep worker.
    """
    values = [kind(part.strip()) for part in str(spec).split(",") if part.strip()]
    if not values:
        raise ValueError("empty grid spec %r" % spec)
    for value in values:
        if minimum is not None and value < minimum:
            raise ValueError(
                "%s values must be >= %s, got %r in %r" % (name, minimum, value, spec)
            )
        if maximum is not None and value > maximum:
            raise ValueError(
                "%s values must be <= %s, got %r in %r" % (name, maximum, value, spec)
            )
    return values


def variant_seed(seed: Optional[int], index: int):
    """Deterministic per-variant seed, stable across sweep and baseline.

    A fresh :class:`numpy.random.SeedSequence` is built from
    ``(seed, index)`` entropy on every call — unlike
    ``SeedSequence.spawn``, repeated calls hand out the *same* child, so
    the lockstep sweep and the standalone single-variant replay construct
    identical routers.  Derived uses append a stream tag to this entropy
    (:func:`build_variant_router` appends ``1`` for the warm-awareness
    profile), keeping them independent of the construction stream without
    a second seeding convention.
    """
    root = 0 if seed is None else int(seed) & _SEED_MASK
    return np.random.SeedSequence(entropy=(root, int(index)))


def build_variant_router(
    community: CommunityConfig,
    variant: SweepVariant,
    seed,
    warm_awareness: bool = False,
) -> ShardedRouter:
    """Build the router for one variant (shared by sweep and baseline).

    Both replay paths must call this one constructor so shard partitioning,
    engine seeds and the optional warm steady-state awareness profile are
    identical — the precondition for bit-identical replays.
    """
    router = ShardedRouter.from_community(
        community,
        variant.policy(),
        n_shards=variant.n_shards,
        mode=variant.mode,
        cache_capacity=variant.effective_cache_capacity,
        staleness_budget=variant.staleness_budget,
        seed=seed,
    )
    if warm_awareness:
        from repro.serving.bench import seed_steady_state_awareness

        if not isinstance(seed, np.random.SeedSequence):
            raise ValueError(
                "warm_awareness requires a per-variant SeedSequence from "
                "variant_seed(), so the warm profile is reproducible"
            )
        entropy = seed.entropy
        if not isinstance(entropy, (tuple, list)):
            entropy = (int(entropy),)
        warm = np.random.SeedSequence(entropy=tuple(entropy) + (1,))
        seed_steady_state_awareness(router, rng=np.random.default_rng(warm))
    return router


class _Lane:
    """Per-shard serving lane of one variant inside the sweep."""

    __slots__ = ("engine", "key", "k", "per_query")

    def __init__(self, engine: ServingEngine, k: int, per_query: bool) -> None:
        self.engine = engine
        self.k = min(int(k), engine.state.n)
        self.key = page_key(engine.name, self.k, engine._policy_tag)
        self.per_query = per_query


class _LaneGroup:
    """Equal-size lanes whose per-page state shares (L, n) matrices.

    Stacking copies each lane's current arrays into matrix rows and then
    re-binds the lane's ``PagePool``/``PopularityState`` attributes to the
    row views, so all later in-place mutations (feedback, lifecycle,
    awareness seeding) land in the matrices.  ``version`` counters and the
    page-id/creation arrays stay per-lane — only the arrays the batched
    kernels address are stacked.
    """

    __slots__ = ("lanes", "n", "m", "aware", "popularity", "dirty", "quality")

    def __init__(self, lanes: List["_Lane"], n: int) -> None:
        self.lanes = lanes
        self.n = n
        self.m = lanes[0].engine.state.pool.monitored_population
        self.aware = np.stack(
            [lane.engine.state.pool.aware_count for lane in lanes]
        )
        self.popularity = np.stack(
            [lane.engine.state.popularity for lane in lanes]
        )
        self.dirty = np.stack(
            [lane.engine.state._dirty_mask for lane in lanes]
        )
        self.quality = np.stack(
            [lane.engine.state.pool.quality for lane in lanes]
        )
        for row, lane in enumerate(lanes):
            state = lane.engine.state
            state.pool.aware_count = self.aware[row]
            state.pool.quality = self.quality[row]
            state._popularity = self.popularity[row]
            state._dirty_mask = self.dirty[row]


class _VariantReplay:
    """Mutable lockstep-replay context of one variant."""

    def __init__(
        self,
        variant: SweepVariant,
        router: ShardedRouter,
        attention: AttentionModel,
    ) -> None:
        self.variant = variant
        self.router = router
        policy = variant.policy()
        self.deterministic = policy.is_deterministic
        self.per_query = (
            variant.effective_cache_capacity is None and not self.deterministic
        )
        self.lanes = [
            _Lane(engine, variant.k, self.per_query) for engine in router.engines
        ]
        self.click_cdf = np.cumsum(attention.visit_shares(max(variant.k, 1)))
        self.shard_table: Optional[np.ndarray] = None  # set by the sweep
        self.pages_crc = 0
        self.clicked_crc = 0
        self.feedback_events = 0
        self.clicked_quality_sum = 0.0
        # Window scratch, set by route()/finish().
        self._w_shards: Optional[np.ndarray] = None
        self._w_lanes: Optional[np.ndarray] = None
        self._w_counts: Optional[np.ndarray] = None
        self._w_pages: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------- windowing

    def route(self, inverse_w: np.ndarray) -> List[Tuple["_VariantReplay", int]]:
        """Route a window's queries to lanes; return lanes needing recompute.

        Serving a lane more than once inside a window repeats the first
        answer: the state version cannot move until the boundary flush, so
        after the first validate-on-read (or recompute-and-store) every
        further lookup is a guaranteed cache hit.  Only the first serve per
        lane is therefore performed for real; the rest become hit-counter
        arithmetic in :meth:`finish`.
        """
        if self.shard_table is None:
            shards = _ZERO_SHARDS[: inverse_w.size]
            if shards.size < inverse_w.size:
                shards = np.zeros(inverse_w.size, dtype=np.int64)
            lanes = _SINGLE_LANE
            counts = np.asarray([inverse_w.size], dtype=np.int64)
        else:
            shards = self.shard_table[inverse_w]
            tally = np.bincount(shards, minlength=len(self.lanes))
            lanes = np.flatnonzero(tally)
            counts = tally[lanes]
        self._w_shards, self._w_lanes, self._w_counts = shards, lanes, counts
        pages = self._w_pages
        pages.clear()
        if self.per_query:
            return []  # served query-by-query in finish()
        stale: List[Tuple["_VariantReplay", int]] = []
        for lane_index in lanes:
            lane = self.lanes[int(lane_index)]
            engine = lane.engine
            if engine.cache is not None:
                page = engine.cache.lookup(lane.key, engine.state.version)
                if page is None:
                    stale.append((self, int(lane_index)))
                else:
                    pages[int(lane_index)] = page
            else:
                # Deterministic and uncached: the page is a pure function of
                # the frozen state, recomputed once per window (the
                # standalone path recomputes it per query to the same bits).
                stale.append((self, int(lane_index)))
        return stale

    def store_page(self, lane_index: int, page: np.ndarray) -> None:
        """Accept a freshly recomputed page for one lane (cache it if any)."""
        self._w_pages[lane_index] = page
        engine = self.lanes[lane_index].engine
        if engine.cache is not None:
            engine.cache.store(self.lanes[lane_index].key, page, engine._order_version)

    def finish(
        self,
        trace: RecordedTrace,
        start: int,
        end: int,
        clicks: np.ndarray,
        positions_by_k: Dict[int, np.ndarray],
    ) -> None:
        """Digest the window's pages and buffer its click feedback."""
        shards, lanes, counts = self._w_shards, self._w_lanes, self._w_counts
        pages = self._w_pages
        router = self.router
        window = end - start

        if self.per_query:
            self._finish_per_query(trace, start, end)
            return

        # Result-page digest over the window, in query order.  A streaming
        # CRC over equal bytes gives the same digest as the standalone
        # per-query accumulation.
        if lanes.size == 1:
            page = pages[int(lanes[0])]
            self.pages_crc = zlib.crc32(page.tobytes() * window, self.pages_crc)
        else:
            sizes = {pages[int(lane)].size for lane in lanes}
            if len(sizes) == 1:
                stacked = np.stack([pages[int(lane)] for lane in lanes])
                block = stacked[np.searchsorted(lanes, shards)]
                self.pages_crc = zlib.crc32(
                    np.ascontiguousarray(block).tobytes(), self.pages_crc
                )
            else:  # ragged page lengths (k exceeds a shard's size)
                for lane_of_query in shards:
                    self.pages_crc = zlib.crc32(
                        pages[int(lane_of_query)].tobytes(), self.pages_crc
                    )

        if clicks.size:
            positions = positions_by_k[self.variant.k]
            if lanes.size == 1:
                page = pages[int(lanes[0])]
                ranks = np.minimum(positions, page.size - 1)
                clicked = page[ranks].astype(np.int64, copy=False)
                # Buffer straight into the router's per-shard feedback lists
                # (the shard is already known, so rehashing the query id the
                # way submit_feedback does would be pure overhead).
                pending = router._pending_indices[int(lanes[0])]
                pending.extend(clicked.tolist())
                router._pending_visits[int(lanes[0])].extend(
                    [1.0] * clicked.size
                )
                self.clicked_quality_sum += float(
                    self.lanes[int(lanes[0])].engine.state.pool.quality[clicked].sum()
                )
            else:
                click_lanes = shards[clicks]
                clicked = np.empty(clicks.size, dtype=np.int64)
                for lane_index in lanes:
                    lane_index = int(lane_index)
                    mine = click_lanes == lane_index
                    hits = int(mine.sum())
                    if not hits:
                        continue
                    page = pages[lane_index]
                    ranks = np.minimum(positions[mine], page.size - 1)
                    values = page[ranks]
                    clicked[mine] = values
                    router._pending_indices[lane_index].extend(values.tolist())
                    router._pending_visits[lane_index].extend([1.0] * hits)
                    self.clicked_quality_sum += float(
                        self.lanes[lane_index].engine.state.pool.quality[values].sum()
                    )
            router.feedback_buffered += int(clicks.size)
            self.feedback_events += int(clicks.size)
            self.clicked_crc = zlib.crc32(clicked.tobytes(), self.clicked_crc)

        router.queries_routed += window
        per_shard = router.queries_per_shard
        for lane_index, count in zip(lanes, counts, strict=True):
            lane_index = int(lane_index)
            per_shard[lane_index] += int(count)
            engine = self.lanes[lane_index].engine
            if engine.cache is not None and count > 1:
                engine.cache.stats.hits += int(count) - 1

    def _finish_per_query(
        self, trace: RecordedTrace, start: int, end: int
    ) -> None:
        """Exact per-query window replay for uncached randomized variants.

        Every standalone ``serve`` legitimately re-rolls its promotion
        coins here, so there is nothing to collapse — the loop mirrors
        :func:`repro.simulation.replay.replay_trace` for this variant's
        window, consuming each lane's generator query by query.
        """
        shards = self._w_shards
        router = self.router
        clicked: List[int] = []
        for offset in range(end - start):
            position_in_trace = start + offset
            lane = self.lanes[int(shards[offset])]
            page = lane.engine.top_k(lane.k)  # per-query lanes are uncached
            self.pages_crc = zlib.crc32(page.tobytes(), self.pages_crc)
            if trace.coin_u[position_in_trace] < trace.feedback_rate:
                rank = int(
                    np.searchsorted(
                        self.click_cdf,
                        trace.position_u[position_in_trace],
                        side="right",
                    )
                )
                rank = min(rank, page.size - 1)
                clicked.append(int(page[rank]))
                router._pending_indices[int(shards[offset])].append(clicked[-1])
                router._pending_visits[int(shards[offset])].append(1.0)
                router.feedback_buffered += 1
                self.feedback_events += 1
                self.clicked_quality_sum += float(
                    lane.engine.state.pool.quality[clicked[-1]]
                )
        router.queries_routed += end - start
        per_shard = router.queries_per_shard
        for shard, count in enumerate(
            np.bincount(shards, minlength=len(per_shard))
        ):
            if count:
                per_shard[shard] += int(count)
        if clicked:
            self.clicked_crc = zlib.crc32(
                np.asarray(clicked, dtype=np.int64).tobytes(), self.clicked_crc
            )

    # --------------------------------------------------------------- results

    def result(self, trace: RecordedTrace):
        """Freeze this variant's replay into a :class:`TraceReplayResult`."""
        from repro.simulation.replay import snapshot_router

        result = snapshot_router(self.router)
        result.queries = trace.n_queries
        result.feedback_events = self.feedback_events
        result.pages_crc = self.pages_crc
        result.clicked_crc = self.clicked_crc  # crc32 of b"" is 0, matching
        result.clicked_quality_sum = self.clicked_quality_sum
        return result


class ServingSweep:
    """Replays one recorded stream against R serving variants in lockstep.

    Construction builds each variant's router exactly as
    :func:`build_variant_router` does for the standalone baseline (same
    per-variant seeds via :func:`variant_seed`), so parity holds from the
    first served page.  :meth:`run` then advances all variants window by
    window; see the module docstring for the algorithm.
    """

    def __init__(
        self,
        community: CommunityConfig,
        variants: Sequence[SweepVariant],
        *,
        seed: Optional[int] = None,
        seeds: Optional[Sequence] = None,
        attention: Optional[AttentionModel] = None,
        warm_awareness: bool = False,
    ) -> None:
        variants = list(variants)
        if not variants:
            raise ValueError("a sweep needs at least one variant")
        self.community = community
        self.variants = variants
        self.attention = attention or PowerLawAttention()
        if seeds is None:
            seeds = [variant_seed(seed, index) for index in range(len(variants))]
        if len(seeds) != len(variants):
            raise ValueError("need exactly one seed per variant")
        self._replays = [
            _VariantReplay(
                variant,
                build_variant_router(
                    community, variant, child, warm_awareness=warm_awareness
                ),
                self.attention,
            )
            for variant, child in zip(variants, seeds, strict=True)
        ]
        self._inverse: Optional[np.ndarray] = None  # set per run()
        self._stack_lane_state()

    def _stack_lane_state(self) -> None:
        """Re-bind equal-size lanes' per-page state to shared (L, n) matrices.

        Every lane's popularity store stays a live ``PopularityState`` —
        but its backing arrays (awareness, materialized popularity, dirty
        mask, quality) become *row views* of one matrix per community
        size.  Engine and state code keeps mutating its rows in place and
        never notices; the sweep's batched kernels (the fluid feedback
        flush, and any future batched repair) get to address all lanes of
        a group through one flat gather/scatter instead of L small ones.
        """
        groups: Dict[Tuple[int, int], List[_Lane]] = {}
        for replay in self._replays:
            for lane in replay.lanes:
                state = lane.engine.state
                key = (state.n, state.pool.monitored_population)
                groups.setdefault(key, []).append(lane)
        self._groups: List[_LaneGroup] = []
        self._lane_group: Dict[int, Tuple[int, int]] = {}
        for (n, _), lanes in sorted(groups.items()):
            if len(lanes) < 2:
                continue
            group = _LaneGroup(lanes, n)
            group_index = len(self._groups)
            self._groups.append(group)
            for row, lane in enumerate(lanes):
                self._lane_group[id(lane.engine)] = (group_index, row)

    @property
    def routers(self) -> List[ShardedRouter]:
        """The per-variant routers (parity inspection and tests)."""
        return [replay.router for replay in self._replays]

    def run(self, trace: RecordedTrace, telemetry=None) -> List:
        """Replay the trace against every variant; one result per variant.

        Returns one :class:`~repro.simulation.replay.TraceReplayResult`
        per variant, in variant order.  With a live ``telemetry`` recorder
        the sweep emits one windowed row per (flush/day boundary, variant)
        — the per-variant counter deltas over that trace window — giving
        the figure drivers a stream-position axis without perturbing the
        lockstep hot path (rows are derived from ``router.stats()`` at
        boundaries only).
        """
        query_ids = np.asarray(trace.query_ids, dtype=np.int64)
        unique_ids, inverse = np.unique(query_ids, return_inverse=True)
        self._inverse = inverse
        shard_counts = {
            replay.variant.n_shards
            for replay in self._replays
            if replay.variant.n_shards > 1
        }
        if shard_counts:
            hashes = np.asarray(
                [stable_shard_hash(int(qid)) for qid in unique_ids],
                dtype=np.int64,
            )
            tables = {count: hashes % count for count in shard_counts}
            for replay in self._replays:
                if replay.variant.n_shards > 1:
                    replay.shard_table = tables[replay.variant.n_shards]

        live = telemetry is not None and telemetry.enabled
        if live:
            baselines = [dict(replay.router.stats()) for replay in self._replays]
        previous = 0
        for boundary in trace.boundaries():
            boundary = int(boundary)
            if boundary > previous:
                self._window(trace, previous, boundary)
            if boundary % trace.flush_every == 0:
                self._flush_all()
            if trace.day_every is not None and boundary % trace.day_every == 0:
                self._flush_all()  # advance_day applies buffered feedback first
                for replay in self._replays:
                    replay.router.advance_day()
            if live and boundary > previous:
                self._emit_boundary_rows(telemetry, baselines, previous, boundary)
            previous = boundary
        self._flush_all()
        return [replay.result(trace) for replay in self._replays]

    def _emit_boundary_rows(
        self, telemetry, baselines: List[Dict[str, float]], start: int, end: int
    ) -> None:
        """Emit per-variant counter deltas for one trace window."""
        for replay, baseline in zip(self._replays, baselines, strict=True):
            current = replay.router.stats()
            row: Dict[str, float] = {
                "kind": "sweep",
                "variant": replay.variant.label(),
                "event_start": float(start),
                "event_end": float(end),
            }
            for name, value in current.items():
                if name in ("n_shards", "n_pages", "cache_hit_rate"):
                    continue
                row[name] = value - baseline.get(name, 0.0)
            hits = row.get("cache_hits", 0.0)
            lookups = hits + row.get("cache_misses", 0.0)
            row["cache_hit_rate"] = hits / lookups if lookups else 0.0
            telemetry.emit_row(row)
            baseline.update(current)

    # ------------------------------------------------------------- internals

    def _window(self, trace: RecordedTrace, start: int, end: int) -> None:
        inverse_w = self._inverse[start:end]
        clicks = np.flatnonzero(
            trace.coin_u[start:end] < trace.feedback_rate
        )
        positions_u = np.asarray(trace.position_u[start:end])

        stale: List[Tuple[_VariantReplay, int]] = []
        for replay in self._replays:
            stale.extend(replay.route(inverse_w))
        self._recompute(stale)
        # Click ranks only depend on (attention, k); share the CDF inversion
        # across the variants that request the same page length.
        positions_by_k: Dict[int, np.ndarray] = {}
        if clicks.size:
            for replay in self._replays:
                k = replay.variant.k
                if k not in positions_by_k:
                    positions_by_k[k] = np.searchsorted(
                        replay.click_cdf, positions_u[clicks], side="right"
                    )
        for replay in self._replays:
            replay.finish(trace, start, end, clicks, positions_by_k)

    def _flush_all(self) -> None:
        """Apply every router's buffered feedback, batched across lanes.

        Replicates ``ShardedRouter.flush_feedback`` — the same per-lane
        events, the same per-lane version bump, the same ``flushes``
        accounting — but runs the fluid-mode awareness arithmetic of
        ``PopularityState.apply_visits_at`` once over the concatenation of
        every lane's batch instead of once per lane.  Per-page visit sums
        use per-lane composite keys, so each lane's touched set, summation
        order and elementwise update are bit-identical to its standalone
        flush.  Stochastic lanes (whose awareness update draws from the
        lane's generator) fall back to the per-lane path.
        """
        fluid: List[Tuple[ServingEngine, List[int], List[float]]] = []
        grouped: Dict[int, List[Tuple[int, ServingEngine, List[int], List[float]]]] = {}
        for replay in self._replays:
            router = replay.router
            applied = 0
            for shard, engine in enumerate(router.engines):
                indices = router._pending_indices[shard]
                if not indices:
                    continue
                visits = router._pending_visits[shard]
                applied += len(indices)
                if engine.state.mode == "fluid":
                    assignment = self._lane_group.get(id(engine))
                    if assignment is None:
                        fluid.append((engine, indices, visits))
                    else:
                        grouped.setdefault(assignment[0], []).append(
                            (assignment[1], engine, indices, visits)
                        )
                else:
                    engine.apply_feedback(
                        np.asarray(indices, dtype=int), np.asarray(visits)
                    )
                router._pending_indices[shard] = []
                router._pending_visits[shard] = []
            if applied:
                router.flushes += 1
        if fluid:
            self._apply_fluid_feedback(fluid)
        for group_index, entries in grouped.items():
            self._apply_group_feedback(self._groups[group_index], entries)

    @staticmethod
    def _apply_group_feedback(
        group: _LaneGroup,
        entries: List[Tuple[int, ServingEngine, List[int], List[float]]],
    ) -> None:
        """Fluid feedback for a stacked lane group, as one flat kernel call.

        Because the group's awareness/popularity/dirty state lives in
        shared ``(L, n)`` matrices, the per-lane gather/scatter collapses
        to one ``feedback_flush`` kernel call over composite
        ``row * n + page`` keys — the same kernel the single-lane
        ``PopularityState.apply_visits_at`` fluid path dispatches to, so
        the arithmetic is elementwise identical per entry by construction.
        """
        n = group.n
        keys = np.concatenate(
            [
                np.asarray(indices, dtype=np.int64) + row * n
                for row, _, indices, _ in entries
            ]
        )
        visits = np.concatenate(
            [np.asarray(batch, dtype=float) for _, _, _, batch in entries]
        )
        touched, inverse = np.unique(keys, return_inverse=True)
        summed = np.zeros(touched.size)
        np.add.at(summed, inverse, visits)

        get_backend().feedback_flush(
            group.aware.ravel(),
            group.popularity.ravel(),
            group.quality.ravel(),
            group.dirty.ravel(),
            touched,
            summed,
            group.m,
        )
        for _, engine, _, _ in entries:
            engine.state.version += 1

    @staticmethod
    def _apply_fluid_feedback(
        batches: List[Tuple[ServingEngine, List[int], List[float]]]
    ) -> None:
        stride = 1 + max(engine.state.n for engine, _, _ in batches)
        keys = np.concatenate(
            [
                np.asarray(indices, dtype=np.int64) + lane * stride
                for lane, (_, indices, _) in enumerate(batches)
            ]
        )
        visits = np.concatenate(
            [np.asarray(batch_visits, dtype=float) for _, _, batch_visits in batches]
        )
        touched_keys, inverse = np.unique(keys, return_inverse=True)
        summed = np.zeros(touched_keys.size)
        np.add.at(summed, inverse, visits)
        # Lane segments of the sorted key space, then one elementwise pass.
        segments = np.searchsorted(
            touched_keys, np.arange(len(batches) + 1, dtype=np.int64) * stride
        )
        touched = [
            touched_keys[segments[lane]:segments[lane + 1]] - lane * stride
            for lane in range(len(batches))
        ]
        aware = np.concatenate(
            [
                engine.state.pool.aware_count[touched[lane]]
                for lane, (engine, _, _) in enumerate(batches)
            ]
        )
        populations = np.concatenate(
            [
                np.full(
                    touched[lane].size,
                    float(engine.state.pool.monitored_population),
                )
                for lane, (engine, _, _) in enumerate(batches)
            ]
        )
        # awareness_gain (fluid): gained = (m - aware) * (1 - (1 - 1/m)**v),
        # elementwise — identical per entry to the per-lane call.
        gained = (populations - aware) * (
            1.0 - (1.0 - 1.0 / populations) ** summed
        )
        updated = np.minimum(populations, aware + gained)
        position = 0
        for lane, (engine, _, _) in enumerate(batches):
            pages = touched[lane]
            values = updated[position:position + pages.size]
            position += pages.size
            state = engine.state
            pool = state.pool
            pool.aware_count[pages] = values
            # PopularityState._mark_changed, inlined per lane.
            state._popularity[pages] = (
                values / pool.monitored_population
            ) * pool.quality[pages]
            state._dirty_mask[pages] = True
            state.version += 1

    def _recompute(self, stale: List[Tuple[_VariantReplay, int]]) -> None:
        """Refresh and re-serve every lane whose cached page went stale."""
        if not stale:
            return
        engines = [
            replay.lanes[lane_index].engine for replay, lane_index in stale
        ]
        self._bootstrap(
            [engine for engine in engines if engine._order is None]
        )
        self._refresh_stale(
            [
                engine
                for engine in engines
                if engine._order_version != engine.state.version
            ]
        )

        randomized: List[Tuple[_VariantReplay, int]] = []
        for (replay, lane_index), engine in zip(stale, engines, strict=True):
            if replay.deterministic:
                k = replay.lanes[lane_index].k
                replay.store_page(lane_index, engine._order[:k].copy())
            else:
                randomized.append((replay, lane_index))
        if randomized:
            self._serve_randomized(randomized)

    def _refresh_stale(self, engines: List[ServingEngine]) -> None:
        """Grouped equivalent of per-lane ``_refresh_order`` for dirty lanes.

        Each lane's dirty set is consumed and classified exactly as
        ``ServingEngine._repair_order`` classifies it — selective-pool mask
        refresh, empty-set no-op, full re-sort when at least half the
        community moved, merge repair otherwise — but the expensive cases
        then run **batched**: full re-sorts of equal-size lanes share one
        :func:`~repro.core.batch_rank.batched_deterministic_order` call
        (per-lane tie keys drawn from each lane's own generator, exactly
        the draws the standalone path makes), and the merge repairs of
        equal-size lanes run as one grouped ``lane_repair`` kernel call
        instead of lane-by-lane ``_repair_order`` — the ROADMAP's batched
        lane repair, previously ~20% of remaining sweep time.
        """
        resorts: Dict[int, List[ServingEngine]] = {}
        repairs: Dict[int, List[Tuple[ServingEngine, np.ndarray]]] = {}
        for engine in engines:
            state = engine.state
            dirty = state.consume_dirty()
            if engine._selective and dirty.size:
                engine._promoted_mask[dirty] = (
                    state.pool.aware_count[dirty] < 1.0 - 1e-9
                )
            if dirty.size:
                if dirty.size >= state.n // 2:
                    resorts.setdefault(state.n, []).append(engine)
                else:
                    repairs.setdefault(state.n, []).append((engine, dirty))
            engine._order_version = state.version
        for n, group in resorts.items():
            if len(group) == 1:
                engine = group[0]
                engine._tie_key = engine.rng.random(n)
                engine._order = np.lexsort(
                    (engine._tie_key, -engine.state.popularity)
                )
                engine.full_sorts += 1
                continue
            popularity = np.stack([engine.state.popularity for engine in group])
            tie_keys = np.empty((len(group), n), dtype=float)
            orders = batched_deterministic_order(
                popularity,
                None,
                "random",
                [engine.rng for engine in group],
                out_tie_keys=tie_keys,
                # Every resorting lane maintains an order already (fresh
                # lanes go through _bootstrap); yesterday's orders are the
                # adaptive hint.  These lanes crossed the half-dirty
                # threshold, so the kernel usually falls back to the full
                # sort — the hint costs one run-detection pass and wins
                # whenever the feedback left the order near-sorted anyway.
                prev_perm=np.stack([engine._order for engine in group]),
            )
            for row, engine in enumerate(group):
                engine._tie_key = tie_keys[row].copy()
                engine._order = orders[row].copy()
                engine.full_sorts += 1
        backend = get_backend()
        for _n, entries in repairs.items():
            repaired = backend.lane_repair(
                [engine._order for engine, _ in entries],
                [engine.state.popularity for engine, _ in entries],
                [dirty for _, dirty in entries],
            )
            for (engine, _), order in zip(entries, repaired, strict=True):
                engine._order = order
                engine.repairs += 1

    def _bootstrap(self, engines: List[ServingEngine]) -> None:
        """Batch-build the maintained orders of first-served lanes.

        Mirrors the first branch of ``ServingEngine._refresh_order`` —
        per-lane tie-key draw, descending sort, selective-pool snapshot,
        dirty consumption, version stamp — but runs the sort as one
        batched argsort + exact tie-run repair per community size.
        """
        groups: Dict[int, List[ServingEngine]] = {}
        for engine in engines:
            groups.setdefault(engine.state.n, []).append(engine)
        for n, group in groups.items():
            if len(group) == 1:
                group[0]._refresh_order()
                continue
            popularity = np.stack([engine.state.popularity for engine in group])
            tie_keys = np.empty((len(group), n), dtype=float)
            orders = batched_deterministic_order(
                popularity,
                None,
                "random",
                [engine.rng for engine in group],
                out_tie_keys=tie_keys,
            )
            for row, engine in enumerate(group):
                engine._tie_key = tie_keys[row].copy()
                engine._order = orders[row].copy()
                if engine._selective:
                    engine._promoted_mask = (
                        engine.state.pool.aware_count < 1.0 - 1e-9
                    )
                engine.state.consume_dirty()
                engine._order_version = engine.state.version
                engine.full_sorts += 1

    def _serve_randomized(
        self, lanes: List[Tuple[_VariantReplay, int]]
    ) -> None:
        """Recompute randomized prefix pages for many lanes at once.

        Per lane, the generator is consumed in the standalone ``top_k``
        order — promotion-pool mask, merge coins, pool sample — while the
        coin-to-slot bookkeeping of every lane runs through one
        clipped-cumsum kernel call.
        """
        count = len(lanes)
        k_max = max(replay.lanes[lane_index].k for replay, lane_index in lanes)
        flips = np.zeros((count, k_max), dtype=bool)
        n_deterministic = np.empty(count, dtype=np.int64)
        n_promoted = np.empty(count, dtype=np.int64)
        masks: List[np.ndarray] = []
        for row, (replay, lane_index) in enumerate(lanes):
            lane = replay.lanes[lane_index]
            engine = lane.engine
            mask = np.asarray(engine._promotion_pool_mask(engine.rng), dtype=bool)
            masks.append(mask)
            pool = int(mask.sum())
            n_promoted[row] = pool
            n_deterministic[row] = engine.state.n - pool
            protected = min(replay.variant.promote_k - 1, lane.k)
            open_slots = lane.k - protected
            if open_slots > 0:
                flips[row, protected:lane.k] = (
                    engine.rng.random(open_slots) < replay.variant.r
                )
        slots_matrix = batched_prefix_promotion_slots(
            flips, n_deterministic, n_promoted
        )
        for row, (replay, lane_index) in enumerate(lanes):
            lane = replay.lanes[lane_index]
            engine = lane.engine
            slots = slots_matrix[row, : lane.k]
            promoted_count = int(slots.sum())
            deterministic = engine._unpromoted_prefix(
                lane.k - promoted_count, masks[row]
            )
            promoted = engine._sample_pool(
                engine.rng, masks[row], int(n_promoted[row]), promoted_count
            )
            page = np.empty(lane.k, dtype=int)
            page[slots] = promoted
            page[~slots] = deterministic
            replay.store_page(lane_index, page)


@dataclass
class SweepResult:
    """Structured outcome of one lockstep sweep run.

    One row per variant; the per-variant entries are the same
    :class:`~repro.simulation.replay.TraceReplayResult` objects the
    standalone replay produces, which is what makes sweep-vs-standalone
    parity a one-call comparison (:meth:`TraceReplayResult.matches`).
    """

    variants: List[SweepVariant]
    results: List  # List[TraceReplayResult]
    queries: int
    elapsed_seconds: float

    @property
    def replicates(self) -> int:
        """Number of variants replayed."""
        return len(self.variants)

    @property
    def total_queries(self) -> int:
        """Replayed queries summed over variants."""
        return self.queries * self.replicates

    @property
    def queries_per_second(self) -> float:
        """Replayed query throughput across all variants."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.total_queries / self.elapsed_seconds

    def rows(self) -> List[Dict[str, float]]:
        """Flat per-variant metric rows for tables and figure drivers."""
        rows = []
        for variant, result in zip(self.variants, self.results, strict=True):
            row: Dict[str, float] = {
                "k": float(variant.k),
                "r": float(variant.r),
                "promote_k": float(variant.promote_k),
                "cache_capacity": float(variant.effective_cache_capacity or 0),
                "staleness_budget": float(variant.staleness_budget),
                "n_shards": float(variant.n_shards),
                "queries": float(result.queries),
                "feedback_events": float(result.feedback_events),
                "pages_crc": float(result.pages_crc),
            }
            if result.feedback_events:
                # QPC (quality per click): the paper's serving-quality axis.
                row["qpc"] = (
                    float(result.clicked_quality_sum) / result.feedback_events
                )
            row.update(result.stats)
            rows.append(row)
        return rows

    def render(self) -> str:
        """ASCII table of the sweep, one row per variant."""
        from repro.utils.tables import Table

        table = Table(
            ["variant", "queries", "feedback", "cache_hit_rate", "pages_crc"],
            title="sweep over %d variants (%d queries each)"
            % (self.replicates, self.queries),
        )
        for variant, result in zip(self.variants, self.results, strict=True):
            table.add_row(
                variant.label(),
                result.queries,
                result.feedback_events,
                result.stats.get("cache_hit_rate", 0.0),
                "%08x" % (result.pages_crc & 0xFFFFFFFF),
            )
        return table.render()


def _run_sweep_block(
    community: CommunityConfig,
    variants: List[SweepVariant],
    seeds: List,
    trace: RecordedTrace,
    attention: Optional[AttentionModel],
    warm_awareness: bool,
):
    """Worker entry point: replay one contiguous block of variants."""
    sweep = ServingSweep(
        community,
        variants,
        seeds=seeds,
        attention=attention,
        warm_awareness=warm_awareness,
    )
    return sweep.run(trace)


def run_sweep(
    community: CommunityConfig,
    variants: Sequence[SweepVariant],
    trace: RecordedTrace,
    seed: Optional[int] = None,
    n_workers: Optional[int] = None,
    attention: Optional[AttentionModel] = None,
    warm_awareness: bool = False,
    telemetry=None,
) -> SweepResult:
    """Replay a recorded stream against a variant grid, optionally sharded.

    Variants are independent, so with more than one worker the variant
    list is split into contiguous blocks, one :class:`ServingSweep` per
    worker process — the same executor plumbing
    :func:`repro.simulation.batch.run_batch` uses for replicate blocks.
    Per-variant seeds are derived from the global variant index, so the
    results are identical for every worker count.  ``n_workers=None``
    auto-sizes from ``os.cpu_count()`` via
    :func:`repro.utils.parallel.default_workers`.
    """
    variants = list(variants)
    if not variants:
        raise ValueError("run_sweep needs at least one variant")
    n_workers = default_workers(len(variants), n_workers)
    if telemetry is not None and telemetry.enabled:
        # A recorder is process-local state (open JSONL handle, window
        # ring); pool workers could not share it, so a live recorder pins
        # the sweep in-process.
        n_workers = 1
    started = time.perf_counter()
    if n_workers <= 1:
        sweep = ServingSweep(
            community,
            variants,
            seed=seed,
            attention=attention,
            warm_awareness=warm_awareness,
        )
        results = sweep.run(trace, telemetry=telemetry)
    else:
        blocks = np.array_split(np.arange(len(variants)), n_workers)
        collected: List[Optional[List]] = [None] * len(blocks)
        with ProcessPoolExecutor(max_workers=n_workers) as executor:
            futures = [
                executor.submit(
                    _run_sweep_block,
                    community,
                    [variants[int(i)] for i in block],
                    [variant_seed(seed, int(i)) for i in block],
                    trace,
                    attention,
                    warm_awareness,
                )
                for block in blocks
            ]
            for index, future in enumerate(futures):
                collected[index] = future.result()
        results = []
        for block_results in collected:
            results.extend(block_results or [])
    elapsed = time.perf_counter() - started
    return SweepResult(
        variants=variants,
        results=results,
        queries=trace.n_queries,
        elapsed_seconds=elapsed,
    )


def run_sweep_benchmark(
    n_pages: int = 2_000,
    n_queries: int = 2_400,
    variants: Optional[Sequence[SweepVariant]] = None,
    seed: int = 0,
    feedback_rate: float = 0.2,
    flush_every: int = 64,
    zipf_exponent: float = 1.1,
    n_distinct_queries: int = 256,
    day_every: Optional[int] = None,
    n_workers: Optional[int] = 1,
    warm_awareness: bool = True,
    check_parity: bool = True,
    sweep_repetitions: int = 3,
    backend: Optional[str] = None,
    telemetry_window: Optional[int] = None,
    telemetry_out: Optional[str] = None,
) -> Dict[str, float]:
    """Benchmark the lockstep sweep against R independent standalone replays.

    Records one trace, replays it once per variant through the standalone
    :func:`~repro.simulation.replay.replay_trace` loop (construction
    included — the work a naive parameter sweep performs R times), then
    replays the same trace through :func:`run_sweep`, and verifies that
    every variant's result is bit-identical between the two paths.

    ``n_workers`` defaults to 1 so the reported speedup is a same-core
    apples-to-apples comparison; pass ``None`` to let the sweep also shard
    variants across cores.  Both paths are timed best-of-
    ``sweep_repetitions``, *interleaved* (independent pass, then sweep,
    repeated) with the garbage collector paused inside the timed regions —
    a load spike or GC pause on a shared CI runner then hits both sides of
    the ratio alike instead of flaking it.

    ``backend`` pins a kernel backend for this run (``None`` keeps the
    process default); the report's ``kernel_backend`` entry names the one
    that actually ran, tagging the benchmark JSON for the regression gate.
    """
    import gc

    from repro.core.kernels import get_backend, use_backend
    from repro.simulation.replay import replay_trace

    if backend is not None:
        with use_backend(backend):
            return run_sweep_benchmark(
                n_pages=n_pages, n_queries=n_queries, variants=variants,
                seed=seed, feedback_rate=feedback_rate,
                flush_every=flush_every, zipf_exponent=zipf_exponent,
                n_distinct_queries=n_distinct_queries, day_every=day_every,
                n_workers=n_workers, warm_awareness=warm_awareness,
                check_parity=check_parity, sweep_repetitions=sweep_repetitions,
                telemetry_window=telemetry_window, telemetry_out=telemetry_out,
            )
    kernels = get_backend()
    kernels.warmup()  # JIT backends compile outside the timed regions
    community = DEFAULT_COMMUNITY.scaled(n_pages)
    variants = list(variants) if variants is not None else variant_grid()
    workload = StreamingWorkload(
        WorkloadConfig(
            n_distinct_queries=n_distinct_queries,
            zipf_exponent=zipf_exponent,
            k=max(variant.k for variant in variants),
            feedback_rate=feedback_rate,
            flush_every=flush_every,
        ),
        seed=derive_seed(seed, "sweep-stream"),
    )
    trace = record_trace(workload, n_queries, day_every=day_every)

    independent = None
    independent_seconds = float("inf")
    sweep = None
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(max(1, int(sweep_repetitions))):
            gc.collect()
            gc.disable()
            started = time.perf_counter()
            replays = []
            for index, variant in enumerate(variants):
                router = build_variant_router(
                    community,
                    variant,
                    variant_seed(seed, index),
                    warm_awareness=warm_awareness,
                )
                replays.append(replay_trace(router, trace, variant.k))
            elapsed = time.perf_counter() - started
            if elapsed < independent_seconds:
                independent_seconds = elapsed
            independent = replays  # identical results every repetition

            routes_before = ROUTE_STATS.as_dict()
            candidate = run_sweep(
                community,
                variants,
                trace,
                seed=seed,
                n_workers=n_workers,
                warm_awareness=warm_awareness,
            )
            # Deterministic replay: every repetition takes identical
            # routes, so the last delta tags the report (grouped lane
            # resorts go through the adaptive rank_day router; worker
            # processes keep their own counters).
            routes_after = ROUTE_STATS.as_dict()
            route_delta = {
                key: routes_after[key] - value
                for key, value in routes_before.items()
                if key != "rank_displacement_max"
            }
            if gc_was_enabled:
                gc.enable()
            if sweep is None or candidate.elapsed_seconds < sweep.elapsed_seconds:
                sweep = candidate
    finally:
        if gc_was_enabled:
            gc.enable()

    parity = None
    if check_parity:
        parity = all(
            ours.matches(theirs)
            for ours, theirs in zip(sweep.results, independent, strict=True)
        )

    recorder = None
    if telemetry_window is not None or telemetry_out is not None:
        # One extra instrumented sweep pass, outside the timed regions:
        # the reported speedup ratio stays telemetry-free while the JSONL
        # rows and snapshot describe the same trace/variants.
        from repro.telemetry import TelemetryRecorder

        recorder = TelemetryRecorder(
            window=telemetry_window or trace.flush_every,
            out=telemetry_out,
            label="sweep",
        )
        recorder.install_kernel_spans()
        try:
            run_sweep(
                community,
                variants,
                trace,
                seed=seed,
                n_workers=1,
                warm_awareness=warm_awareness,
                telemetry=recorder,
            )
        finally:
            recorder.close()

    replicates = len(variants)
    qps_sweep = sweep.queries_per_second
    qps_independent = (
        replicates * n_queries / independent_seconds
        if independent_seconds > 0
        else 0.0
    )
    hit_rates = [
        result.stats.get("cache_hit_rate", 0.0) for result in sweep.results
    ]
    report: Dict[str, float] = {
        "kernel_backend": kernels.name,
        "n_pages": float(n_pages),
        "queries": float(n_queries),
        "replicates": float(replicates),
        "sweep_seconds": sweep.elapsed_seconds,
        "independent_seconds": independent_seconds,
        "queries_per_second_sweep": qps_sweep,
        "queries_per_second_independent": qps_independent,
        "speedup_sweep_vs_independent": (
            qps_sweep / qps_independent if qps_independent > 0 else float("inf")
        ),
        "cache_hit_rate_mean": float(np.mean(hit_rates)) if hit_rates else 0.0,
        "feedback_events_total": float(
            sum(result.feedback_events for result in sweep.results)
        ),
    }
    if parity is not None:
        report["parity_bit_identical"] = 1.0 if parity else 0.0
    for key, value in route_delta.items():
        report["resort_%s" % key] = float(value)
    if recorder is not None:
        report.update(recorder.snapshot())
    return report


__all__ = [
    "SweepVariant",
    "variant_grid",
    "parse_grid_values",
    "variant_seed",
    "build_variant_router",
    "ServingSweep",
    "SweepResult",
    "run_sweep",
    "run_sweep_benchmark",
]
