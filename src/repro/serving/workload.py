"""Streaming query workload for driving the serving engine end-to-end.

Real query traffic is heavily skewed: a few head queries repeat constantly
while a long tail appears once.  The generator models that with a Zipfian
distribution over a fixed universe of distinct query ids; each served query
then produces monitored-visit feedback with a configurable rate, with the
clicked position drawn from the same rank-attention law the simulator uses
(power-law by default) — closing the popularity feedback loop the paper is
about, but per query instead of per simulated day.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

import numpy as np

from repro.robustness.occ import FlushReport
from repro.serving.router import ShardedRouter
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive_int, check_probability
from repro.visits.attention import AttentionModel, PowerLawAttention


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of the streaming query workload.

    Attributes:
        n_distinct_queries: size of the query universe.
        zipf_exponent: skew of query popularity (0 = uniform traffic).
        k: result-page length requested by every query.
        feedback_rate: probability a served query produces one monitored
            visit (a click) fed back into the popularity state.
        flush_every: number of queries between feedback batch flushes.
    """

    n_distinct_queries: int = 1_000
    zipf_exponent: float = 1.1
    k: int = 10
    feedback_rate: float = 0.2
    flush_every: int = 64

    def __post_init__(self) -> None:
        check_positive_int("n_distinct_queries", self.n_distinct_queries)
        if self.zipf_exponent < 0:
            raise ValueError("zipf_exponent must be non-negative")
        check_positive_int("k", self.k)
        check_probability("feedback_rate", self.feedback_rate)
        check_positive_int("flush_every", self.flush_every)


class StreamingWorkload:
    """Generates a reproducible Zipf-skewed stream of query ids."""

    def __init__(self, config: Optional[WorkloadConfig] = None, seed: RandomSource = None):
        self.config = config or WorkloadConfig()
        self.rng = as_rng(seed)
        weights = np.arange(1, self.config.n_distinct_queries + 1, dtype=float) ** (
            -self.config.zipf_exponent
        )
        self._cdf = np.cumsum(weights / weights.sum())

    def sample_queries(self, count: int) -> np.ndarray:
        """Draw ``count`` query ids (ints in ``[0, n_distinct_queries)``)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return np.searchsorted(self._cdf, self.rng.random(count), side="right")

    def stream(self, count: int) -> Iterator[int]:
        """Iterate over ``count`` query ids, drawn in blocks."""
        block = 4096
        remaining = count
        while remaining > 0:
            for query_id in self.sample_queries(min(block, remaining)):
                yield int(query_id)
            remaining -= min(block, remaining)


@dataclass(frozen=True)
class RecordedTrace:
    """A replayable recording of a query stream, one array per random draw.

    Replaying the *same* workload against many serving variants requires the
    stream's randomness to be fixed up front: which query arrives next,
    whether the user clicks, and *where* in the result page the click lands.
    The click position is recorded as the raw uniform draw rather than a
    rank, because the rank depends on the variant's page length ``k`` (the
    draw is inverted through each variant's attention CDF at replay time);
    the clicked *page* then additionally depends on the variant's served
    results, so it cannot be recorded at all — it is recomputed per variant.

    Attributes:
        query_ids: per-query ids in arrival order.
        coin_u: per-query uniforms; a query produces click feedback when its
            coin is below ``feedback_rate``.
        position_u: per-query uniforms inverted through the attention CDF to
            pick the clicked rank.
        feedback_rate: probability a served query produces one click.
        flush_every: queries between feedback batch flushes.
        day_every: queries between lifecycle days (``None`` disables
            lifecycle stepping; days flush buffered feedback first).
    """

    query_ids: np.ndarray
    coin_u: np.ndarray
    position_u: np.ndarray
    feedback_rate: float = 0.2
    flush_every: int = 64
    day_every: Optional[int] = None

    def __post_init__(self) -> None:
        queries = np.asarray(self.query_ids)
        if np.asarray(self.coin_u).shape != queries.shape:
            raise ValueError("coin_u must have one entry per query")
        if np.asarray(self.position_u).shape != queries.shape:
            raise ValueError("position_u must have one entry per query")
        check_probability("feedback_rate", self.feedback_rate)
        check_positive_int("flush_every", self.flush_every)
        if self.day_every is not None:
            check_positive_int("day_every", self.day_every)

    @property
    def n_queries(self) -> int:
        """Number of recorded queries."""
        return int(np.asarray(self.query_ids).size)

    def boundaries(self) -> np.ndarray:
        """Positions (1-based query counts) where buffered state changes.

        A boundary is any multiple of ``flush_every`` or ``day_every``
        within the stream, plus the stream end.  Between two consecutive
        boundaries no feedback is applied and no lifecycle day runs, so
        every variant's popularity state is frozen — the invariant the
        lockstep sweep engine builds its windows on.
        """
        total = self.n_queries
        if total == 0:
            return np.zeros(0, dtype=int)
        marks = set(range(self.flush_every, total, self.flush_every))
        if self.day_every is not None:
            marks.update(range(self.day_every, total, self.day_every))
        marks.add(total)
        return np.asarray(sorted(marks), dtype=int)


def record_trace(
    workload: Optional[StreamingWorkload] = None,
    n_queries: int = 1_000,
    seed: RandomSource = None,
    day_every: Optional[int] = None,
) -> RecordedTrace:
    """Record ``n_queries`` of a streaming workload as a replayable trace.

    The workload's generator is consumed for the query ids and for the
    per-query click coins/positions, so equal-seed workloads record equal
    traces.  As in :func:`run_stream`, passing both a pre-seeded workload
    and a ``seed`` is rejected.
    """
    if n_queries < 0:
        raise ValueError("n_queries must be non-negative, got %d" % n_queries)
    if workload is not None and seed is not None:
        raise ValueError(
            "pass seed either to the workload or to record_trace, not both: "
            "a provided workload already carries its own random stream"
        )
    if workload is None:
        workload = StreamingWorkload(seed=seed)
    config = workload.config
    return RecordedTrace(
        query_ids=workload.sample_queries(n_queries),
        coin_u=workload.rng.random(n_queries),
        position_u=workload.rng.random(n_queries),
        feedback_rate=config.feedback_rate,
        flush_every=config.flush_every,
        day_every=day_every,
    )


@dataclass
class ServingStats:
    """Outcome of one streaming run against a router."""

    queries: int = 0
    elapsed_seconds: float = 0.0
    feedback_events: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def queries_per_second(self) -> float:
        """Served query throughput."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.queries / self.elapsed_seconds

    @property
    def latency_seconds(self) -> float:
        """Mean per-query wall time."""
        return self.elapsed_seconds / self.queries if self.queries else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary for benchmark/JSON reporting."""
        report = {
            "queries": float(self.queries),
            "elapsed_seconds": self.elapsed_seconds,
            "queries_per_second": self.queries_per_second,
            "latency_seconds": self.latency_seconds,
            "feedback_events": float(self.feedback_events),
        }
        report.update(self.extra)
        return report


def run_stream(
    router: ShardedRouter,
    n_queries: int,
    workload: Optional[StreamingWorkload] = None,
    attention: Optional[AttentionModel] = None,
    seed: RandomSource = None,
) -> ServingStats:
    """Drive ``n_queries`` through the router and report serving statistics.

    Each query is served from its shard; with probability ``feedback_rate``
    the "user" clicks one result, with the clicked rank drawn from the
    attention model over the ``k`` visible positions, and the visit is
    buffered as feedback.  Buffers are flushed every ``flush_every``
    queries and once at the end; the merged
    :class:`~repro.robustness.occ.FlushReport` across all flushes lands in
    ``stats.extra`` under ``flush_*`` keys.
    """
    if n_queries < 0:
        raise ValueError("n_queries must be non-negative, got %d" % n_queries)
    if workload is not None and seed is not None:
        raise ValueError(
            "pass seed either to the workload or to run_stream, not both: "
            "a provided workload already carries its own random stream"
        )
    if workload is None:
        workload = StreamingWorkload(seed=seed)
    config = workload.config
    attention = attention or PowerLawAttention()
    click_cdf = np.cumsum(attention.visit_shares(config.k))
    rng = workload.rng

    stats = ServingStats()
    flush_report = FlushReport()
    started = time.perf_counter()
    for served, query_id in enumerate(workload.stream(n_queries), start=1):
        page = router.serve(query_id, config.k)
        if config.feedback_rate > 0 and rng.random() < config.feedback_rate:
            position = int(np.searchsorted(click_cdf, rng.random(), side="right"))
            position = min(position, page.size - 1)
            router.submit_feedback(query_id, int(page[position]))
            stats.feedback_events += 1
        if served % config.flush_every == 0:
            flush_report.merge(router.flush_feedback())
    flush_report.merge(router.flush_feedback())
    stats.elapsed_seconds = time.perf_counter() - started
    stats.queries = n_queries
    stats.extra.update(router.stats())
    stats.extra.update(flush_report.as_dict())
    return stats


__all__ = [
    "WorkloadConfig",
    "StreamingWorkload",
    "RecordedTrace",
    "record_trace",
    "ServingStats",
    "run_stream",
]
