"""Serving benchmark driver: queries/sec, cache hit rate, and the
full-re-rank baseline.

Used both by ``python -m repro serve-bench`` and by
``benchmarks/test_bench_serving.py``.  The run builds a sharded router over
a synthetic steady-state community, drives a Zipfian query stream with
feedback through it, and compares the measured per-query latency against
the offline baseline — one full :meth:`Ranker.rank` call per query, which
is what serving through the day-stepped simulator machinery would cost.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from repro.community.config import CommunityConfig, DEFAULT_COMMUNITY
from repro.core.kernels import get_backend, use_backend
from repro.core.policy import RECOMMENDED_POLICY, RankPromotionPolicy
from repro.core.rankers_context import RankingContext
from repro.serving.router import ShardedRouter
from repro.serving.workload import StreamingWorkload, WorkloadConfig, run_stream
from repro.utils.rng import RandomSource, as_rng, derive_seed


def sample_steady_awareness(
    n: int, monitored_population: int, generator: np.random.Generator
) -> np.ndarray:
    """Draw a steady-state-like awareness profile for ``n`` pages.

    Skips the simulator warm-up: awareness counts are drawn from a
    squared-uniform (so most pages sit low), and roughly a third of the
    pages are kept at exactly zero awareness so the selective promotion
    pool is non-trivial — the regime the paper's steady state lives in.
    Both the serving run and the full-re-rank baseline use this one recipe
    so the speedup compares equal awareness regimes.
    """
    m = monitored_population
    aware = np.floor(generator.random(n) ** 2 * (m + 1))
    aware[generator.random(n) < 0.35] = 0.0
    return np.minimum(aware, m)


def seed_steady_state_awareness(router: ShardedRouter, rng: RandomSource = None) -> None:
    """Give every shard a steady-state-like awareness profile."""
    generator = as_rng(rng)
    for engine in router.engines:
        pool = engine.state.pool
        engine.state.set_awareness(
            sample_steady_awareness(pool.n, pool.monitored_population, generator)
        )


def time_full_rank_baseline(
    community: CommunityConfig,
    policy: RankPromotionPolicy,
    n_queries: int = 20,
    seed: RandomSource = None,
) -> float:
    """Mean seconds per query when every query re-ranks the full community."""
    generator = as_rng(seed)
    ranker = policy.build_ranker()
    from repro.community.page import PagePool

    pool = PagePool.from_config(community, generator)
    pool.aware_count[:] = sample_steady_awareness(
        pool.n, pool.monitored_population, generator
    )
    context = RankingContext.from_pool(pool, now=0.0)
    ranker.rank(context, generator)  # warm caches outside the timed region
    started = time.perf_counter()
    for _ in range(n_queries):
        ranker.rank(context, generator)
    return (time.perf_counter() - started) / n_queries


def run_serving_benchmark(
    n_pages: int = 20_000,
    n_queries: int = 2_000,
    k: int = 20,
    n_shards: int = 4,
    cache_capacity: Optional[int] = 64,
    staleness_budget: int = 4,
    feedback_rate: float = 0.2,
    zipf_exponent: float = 1.1,
    flush_every: int = 64,
    policy: RankPromotionPolicy = RECOMMENDED_POLICY,
    baseline_queries: int = 10,
    seed: int = 0,
    backend: Optional[str] = None,
) -> Dict[str, float]:
    """One end-to-end serving run plus the full-re-rank baseline.

    Returns a flat metrics dictionary: throughput (``queries_per_second``),
    ``cache_hit_rate``, per-query latencies for both paths, and
    ``speedup_vs_full_rank``; ``kernel_backend`` names the kernel backend
    that ran (``backend=None`` keeps the process default).
    """
    if backend is not None:
        with use_backend(backend):
            return run_serving_benchmark(
                n_pages=n_pages, n_queries=n_queries, k=k, n_shards=n_shards,
                cache_capacity=cache_capacity, staleness_budget=staleness_budget,
                feedback_rate=feedback_rate, zipf_exponent=zipf_exponent,
                flush_every=flush_every, policy=policy,
                baseline_queries=baseline_queries, seed=seed,
            )
    kernels = get_backend()
    kernels.warmup()  # JIT backends compile outside the timed regions
    community = DEFAULT_COMMUNITY.scaled(n_pages)
    router = ShardedRouter.from_community(
        community,
        policy,
        n_shards=n_shards,
        cache_capacity=cache_capacity,
        staleness_budget=staleness_budget,
        seed=seed,
    )
    seed_steady_state_awareness(router, rng=derive_seed(seed, "serving-warm"))
    workload = StreamingWorkload(
        WorkloadConfig(
            n_distinct_queries=max(64, n_queries // 4),
            zipf_exponent=zipf_exponent,
            k=k,
            feedback_rate=feedback_rate,
            flush_every=flush_every,
        ),
        seed=derive_seed(seed, "serving-stream"),
    )
    stats = run_stream(router, n_queries, workload=workload)

    baseline_latency = time_full_rank_baseline(
        community, policy, n_queries=baseline_queries, seed=derive_seed(seed, "baseline")
    )
    report = stats.as_dict()
    report.update(
        {
            "kernel_backend": kernels.name,
            "n_pages_total": float(router.n_pages),
            "k": float(k),
            "baseline_latency_seconds": baseline_latency,
            "speedup_vs_full_rank": (
                baseline_latency / stats.latency_seconds
                if stats.latency_seconds > 0
                else float("inf")
            ),
        }
    )
    return report


__all__ = [
    "run_serving_benchmark",
    "time_full_rank_baseline",
    "seed_steady_state_awareness",
    "sample_steady_awareness",
]
