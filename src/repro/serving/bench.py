"""Serving benchmark driver: queries/sec, cache hit rate, and the
full-re-rank baseline.

Used both by ``python -m repro serve-bench`` and by
``benchmarks/test_bench_serving.py``.  The run builds a sharded router over
a synthetic steady-state community, drives a Zipfian query stream with
feedback through it, and compares the measured per-query latency against
the offline baseline — one full :meth:`Ranker.rank` call per query, which
is what serving through the day-stepped simulator machinery would cost.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from repro.community.config import CommunityConfig, DEFAULT_COMMUNITY
from repro.core.kernels import get_backend, use_backend
from repro.core.policy import RECOMMENDED_POLICY, RankPromotionPolicy
from repro.core.rankers_context import RankingContext
from repro.serving.router import ShardedRouter
from repro.serving.workload import StreamingWorkload, WorkloadConfig, run_stream
from repro.utils.rng import RandomSource, as_rng, derive_seed


def sample_steady_awareness(
    n: int, monitored_population: int, generator: np.random.Generator
) -> np.ndarray:
    """Draw a steady-state-like awareness profile for ``n`` pages.

    Skips the simulator warm-up: awareness counts are drawn from a
    squared-uniform (so most pages sit low), and roughly a third of the
    pages are kept at exactly zero awareness so the selective promotion
    pool is non-trivial — the regime the paper's steady state lives in.
    Both the serving run and the full-re-rank baseline use this one recipe
    so the speedup compares equal awareness regimes.
    """
    m = monitored_population
    aware = np.floor(generator.random(n) ** 2 * (m + 1))
    aware[generator.random(n) < 0.35] = 0.0
    return np.minimum(aware, m)


def seed_steady_state_awareness(router: ShardedRouter, rng: RandomSource = None) -> None:
    """Give every shard a steady-state-like awareness profile."""
    generator = as_rng(rng)
    for engine in router.engines:
        pool = engine.state.pool
        engine.state.set_awareness(
            sample_steady_awareness(pool.n, pool.monitored_population, generator)
        )


def time_full_rank_baseline(
    community: CommunityConfig,
    policy: RankPromotionPolicy,
    n_queries: int = 20,
    seed: RandomSource = None,
) -> float:
    """Mean seconds per query when every query re-ranks the full community."""
    generator = as_rng(seed)
    ranker = policy.build_ranker()
    from repro.community.page import PagePool

    pool = PagePool.from_config(community, generator)
    pool.aware_count[:] = sample_steady_awareness(
        pool.n, pool.monitored_population, generator
    )
    context = RankingContext.from_pool(pool, now=0.0)
    ranker.rank(context, generator)  # warm caches outside the timed region
    started = time.perf_counter()
    for _ in range(n_queries):
        ranker.rank(context, generator)
    return (time.perf_counter() - started) / n_queries


def run_serving_benchmark(
    n_pages: int = 20_000,
    n_queries: int = 2_000,
    k: int = 20,
    n_shards: int = 4,
    cache_capacity: Optional[int] = 64,
    staleness_budget: int = 4,
    feedback_rate: float = 0.2,
    zipf_exponent: float = 1.1,
    flush_every: int = 64,
    policy: RankPromotionPolicy = RECOMMENDED_POLICY,
    baseline_queries: int = 10,
    seed: int = 0,
    backend: Optional[str] = None,
    telemetry_window: Optional[int] = None,
    telemetry_out: Optional[str] = None,
) -> Dict[str, float]:
    """One end-to-end serving run plus the full-re-rank baseline.

    Returns a flat metrics dictionary: throughput (``queries_per_second``,
    plus per-shard ``qps_shard_<i>``), ``cache_hit_rate``, per-query
    latencies for both paths, and ``speedup_vs_full_rank``;
    ``kernel_backend`` names the kernel backend that ran (``backend=None``
    keeps the process default).

    ``telemetry_window`` (an event count) enables streaming telemetry for
    the run: windowed metric rows go to the ``telemetry_out`` JSONL path
    (or stay in memory), and the end-of-run snapshot — including kernel
    timing spans — is folded into the report under ``telemetry_*`` keys.
    Both default off; the timed stream then runs with the null recorder.
    """
    if backend is not None:
        with use_backend(backend):
            return run_serving_benchmark(
                n_pages=n_pages, n_queries=n_queries, k=k, n_shards=n_shards,
                cache_capacity=cache_capacity, staleness_budget=staleness_budget,
                feedback_rate=feedback_rate, zipf_exponent=zipf_exponent,
                flush_every=flush_every, policy=policy,
                baseline_queries=baseline_queries, seed=seed,
                telemetry_window=telemetry_window, telemetry_out=telemetry_out,
            )
    kernels = get_backend()
    kernels.warmup()  # JIT backends compile outside the timed regions
    community = DEFAULT_COMMUNITY.scaled(n_pages)
    router = ShardedRouter.from_community(
        community,
        policy,
        n_shards=n_shards,
        cache_capacity=cache_capacity,
        staleness_budget=staleness_budget,
        seed=seed,
    )
    seed_steady_state_awareness(router, rng=derive_seed(seed, "serving-warm"))
    workload = StreamingWorkload(
        WorkloadConfig(
            n_distinct_queries=max(64, n_queries // 4),
            zipf_exponent=zipf_exponent,
            k=k,
            feedback_rate=feedback_rate,
            flush_every=flush_every,
        ),
        seed=derive_seed(seed, "serving-stream"),
    )
    recorder = None
    if telemetry_window is not None or telemetry_out is not None:
        from repro.telemetry import DEFAULT_WINDOW, NULL_RECORDER, TelemetryRecorder

        recorder = TelemetryRecorder(
            window=telemetry_window or DEFAULT_WINDOW,
            out=telemetry_out,
            n_shards=n_shards,
            label="serve",
        )
        recorder.install_kernel_spans()
        router.attach_telemetry(recorder)
    try:
        stats = run_stream(router, n_queries, workload=workload)
    finally:
        if recorder is not None:
            recorder.close()
            router.attach_telemetry(NULL_RECORDER)

    baseline_latency = time_full_rank_baseline(
        community, policy, n_queries=baseline_queries, seed=derive_seed(seed, "baseline")
    )
    report = stats.as_dict()
    report.update(
        {
            "kernel_backend": kernels.name,
            "n_pages_total": float(router.n_pages),
            "k": float(k),
            "baseline_latency_seconds": baseline_latency,
            "speedup_vs_full_rank": (
                baseline_latency / stats.latency_seconds
                if stats.latency_seconds > 0
                else float("inf")
            ),
        }
    )
    if stats.elapsed_seconds > 0:
        for shard, count in enumerate(router.queries_per_shard):
            report["qps_shard_%d" % shard] = count / stats.elapsed_seconds
    if recorder is not None:
        report.update(recorder.snapshot())
    return report


def measure_telemetry_overhead(
    n_pages: int = 200_000,
    n_queries: int = 1_000,
    k: int = 20,
    n_shards: int = 4,
    cache_capacity: Optional[int] = 64,
    staleness_budget: int = 4,
    feedback_rate: float = 0.2,
    zipf_exponent: float = 1.1,
    flush_every: int = 64,
    policy: RankPromotionPolicy = RECOMMENDED_POLICY,
    telemetry_window: int = 1024,
    seed: int = 0,
    repetitions: int = 3,
) -> Dict[str, float]:
    """Cost of a live telemetry recorder on one pinned serving stream.

    Runs the identical query stream (same router construction, same
    workload seed) once with the null recorder and once with a live
    :class:`~repro.telemetry.TelemetryRecorder` (windowed rows in memory,
    kernel spans installed), interleaved and best-of-``repetitions`` with
    the garbage collector paused inside the timed regions — the same
    flake-resistant timing discipline the sweep benchmark uses.  The
    default shape is the gated serving benchmark's paper-plus scale
    (``test_bench_serving_topk[200000]``).

    ``telemetry_overhead_ratio`` is enabled-QPS over disabled-QPS (1.0 =
    free, 0.95 = 5% overhead); CI floors it in
    ``benchmarks/baselines/bench-floor.json``.
    ``overhead_us_per_query`` reports the same cost in absolute terms
    (microseconds of recording per served query — the number that stays
    meaningful when the serving path itself gets faster or slower).
    ``parity_bit_identical`` asserts the observability contract: the
    recorder only *reads*, so the router's end-of-run stats must be
    identical with it on or off.
    """
    import gc

    from repro.telemetry import NULL_RECORDER, TelemetryRecorder

    kernels = get_backend()
    kernels.warmup()  # JIT backends compile outside the timed regions
    community = DEFAULT_COMMUNITY.scaled(n_pages)

    def build() -> tuple:
        router = ShardedRouter.from_community(
            community,
            policy,
            n_shards=n_shards,
            cache_capacity=cache_capacity,
            staleness_budget=staleness_budget,
            seed=seed,
        )
        seed_steady_state_awareness(router, rng=derive_seed(seed, "serving-warm"))
        workload = StreamingWorkload(
            WorkloadConfig(
                n_distinct_queries=max(64, n_queries // 4),
                zipf_exponent=zipf_exponent,
                k=k,
                feedback_rate=feedback_rate,
                flush_every=flush_every,
            ),
            seed=derive_seed(seed, "serving-stream"),
        )
        return router, workload

    best = {False: 0.0, True: 0.0}
    final_stats: Dict[bool, Dict[str, float]] = {}
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(max(1, int(repetitions))):
            for enabled in (False, True):
                router, workload = build()
                recorder = None
                if enabled:
                    recorder = TelemetryRecorder(
                        window=telemetry_window,
                        n_shards=n_shards,
                        label="overhead",
                    )
                    recorder.install_kernel_spans()
                    router.attach_telemetry(recorder)
                gc.collect()
                gc.disable()
                try:
                    stats = run_stream(router, n_queries, workload=workload)
                finally:
                    if gc_was_enabled:
                        gc.enable()
                    if recorder is not None:
                        recorder.close()
                        router.attach_telemetry(NULL_RECORDER)
                best[enabled] = max(best[enabled], stats.queries_per_second)
                final_stats[enabled] = dict(router.stats())
    finally:
        if gc_was_enabled:
            gc.enable()

    parity = final_stats[False] == final_stats[True]
    overhead_us = (
        (1.0 / best[True] - 1.0 / best[False]) * 1e6
        if best[True] > 0 and best[False] > 0
        else float("inf")
    )
    return {
        "kernel_backend": kernels.name,
        "n_pages": float(n_pages),
        "queries": float(n_queries),
        "telemetry_window": float(telemetry_window),
        "qps_disabled": best[False],
        "qps_enabled": best[True],
        "telemetry_overhead_ratio": (
            best[True] / best[False] if best[False] > 0 else float("inf")
        ),
        "overhead_us_per_query": overhead_us,
        "parity_bit_identical": 1.0 if parity else 0.0,
    }


__all__ = [
    "run_serving_benchmark",
    "measure_telemetry_overhead",
    "time_full_rank_baseline",
    "seed_steady_state_awareness",
    "sample_steady_awareness",
]
