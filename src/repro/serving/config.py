"""One frozen construction surface for the serving tier.

The serving stack historically grew three parallel construction idioms:
``ShardedRouter.from_community(...)`` with six keyword knobs, post-hoc
``router.telemetry = recorder`` attribute assignment, and a separate
``enable_robustness(retry=..., seed=...)`` call.  The multi-tenant
process pool forces the issue — a configuration must cross process
boundaries, so it has to be *data*.  :class:`ServingConfig` is that
data: a frozen, JSON-round-trippable dataclass carrying every serving
knob (community size, sharding, policy, cache, OCC retry, tenancy,
telemetry), with :func:`build_router` and :func:`build_pool` as the two
entry points that turn it into a running service.

``ShardedRouter.from_community`` remains as a thin deprecation shim that
delegates here, so the construction path — and therefore every random
stream — is shared and the resulting router is bit-identical whichever
door was used.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Dict, Optional

from repro.community.config import CommunityConfig, DEFAULT_COMMUNITY
from repro.core.policy import RankPromotionPolicy
from repro.robustness.occ import RetryPolicy
from repro.simulation.config import VALID_MODES
from repro.utils.rng import RandomSource, spawn_rngs

#: Sentinel: ``build_router``/``build_pool`` seed defaults to the config's.
_CONFIG_SEED = object()


@dataclass(frozen=True)
class ServingConfig:
    """Complete, serializable description of one serving deployment.

    ``n_pages`` is the community size *per tenant* (every tenant hosts an
    equally-shaped community scaled from the paper's defaults, the same
    convention ``serve-bench`` always used).  ``workers == 0`` means the
    classic in-process single router; ``workers >= 1`` selects the
    process-per-shard pool, with ``clients`` optional concurrent OCC
    writer processes hammering the shared-memory popularity state.

    The dataclass is frozen and JSON-round-trippable (:meth:`to_json` /
    :meth:`from_json`), which is what lets one config be validated once
    in the parent and shipped verbatim to every worker and client
    process.
    """

    n_pages: int = 20_000
    n_shards: int = 4
    mode: str = "fluid"
    policy_rule: str = "selective"
    policy_k: int = 1
    policy_r: float = 0.1
    cache_capacity: Optional[int] = 64
    staleness_budget: int = 4
    seed: int = 0
    feedback_rate: float = 0.2
    # Route engine full re-sorts through the adaptive rank_day router
    # (copy / run-merge / windowed / full), using the maintained order as
    # the near-sorted hint; bit-identical to the plain lexsort path.
    adaptive_rank: bool = False
    # Multi-tenant pool shape (workers == 0 selects the in-process router).
    tenants: int = 1
    workers: int = 0
    clients: int = 0
    inbox_capacity: int = 8
    # OCC write path.
    max_attempts: int = 4
    backoff_base: float = 1e-4
    # Telemetry.
    telemetry_window: Optional[int] = None
    telemetry_out: Optional[str] = None

    def __post_init__(self) -> None:
        if self.n_pages < 1:
            raise ValueError("n_pages must be >= 1, got %d" % self.n_pages)
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1, got %d" % self.n_shards)
        if self.mode not in VALID_MODES:
            raise ValueError(
                "mode must be one of %s, got %r" % (VALID_MODES, self.mode)
            )
        if self.cache_capacity is not None and self.cache_capacity < 1:
            raise ValueError(
                "cache_capacity must be >= 1 or None, got %d" % self.cache_capacity
            )
        if self.staleness_budget < 0:
            raise ValueError(
                "staleness_budget must be non-negative, got %d" % self.staleness_budget
            )
        if not 0.0 <= self.feedback_rate <= 1.0:
            raise ValueError(
                "feedback_rate must be in [0, 1], got %r" % (self.feedback_rate,)
            )
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1, got %d" % self.tenants)
        if self.workers < 0:
            raise ValueError("workers must be non-negative, got %d" % self.workers)
        if self.clients < 0:
            raise ValueError("clients must be non-negative, got %d" % self.clients)
        if self.inbox_capacity < 1:
            raise ValueError(
                "inbox_capacity must be >= 1, got %d" % self.inbox_capacity
            )
        # Policy and retry knobs validate through their own dataclasses so
        # a bad config fails at construction, not inside a worker process.
        self.policy()
        self.retry_policy()

    # ------------------------------------------------------------- views

    def policy(self) -> RankPromotionPolicy:
        """The rank promotion policy the config describes."""
        return RankPromotionPolicy(self.policy_rule, self.policy_k, self.policy_r)

    def retry_policy(self) -> RetryPolicy:
        """The OCC retry/backoff policy the config describes."""
        return RetryPolicy(
            max_attempts=self.max_attempts,
            base_backoff_seconds=self.backoff_base,
        )

    def community(self) -> CommunityConfig:
        """One tenant's community: the paper's defaults at ``n_pages``."""
        return DEFAULT_COMMUNITY.scaled(self.n_pages)

    def replace(self, **changes) -> "ServingConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    # -------------------------------------------------------- round trip

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "ServingConfig":
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                "unknown ServingConfig fields: %s" % ", ".join(sorted(unknown))
            )
        return cls(**payload)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ServingConfig":
        return cls.from_dict(json.loads(text))


def build_router(
    config: ServingConfig,
    *,
    community: Optional[CommunityConfig] = None,
    seed: RandomSource = _CONFIG_SEED,
    policy: Optional[RankPromotionPolicy] = None,
    telemetry=None,
    states: Optional[list] = None,
):
    """Build a :class:`~repro.serving.router.ShardedRouter` from ``config``.

    This is *the* construction path: the ``from_community`` shim, the
    benches, and the pool's worker processes all come through here, so
    shard partitioning (remainder spread over the first shards) and the
    per-shard child random streams are identical everywhere.

    Args:
        config: the deployment description.
        community: community override (defaults to ``config.community()``).
            The explicit override wins — it lets callers keep custom
            user/page ratios that the JSON form cannot carry.
        seed: random-source override for the shard stream spawn; the
            default uses ``config.seed``.  Accepts generators and seed
            sequences for legacy call sites.
        policy: policy-object override (defaults to ``config.policy()``,
            which is field-for-field identical).
        telemetry: a recorder to attach (replaces the historical post-hoc
            ``router.telemetry = ...`` assignment).
        states: optional per-shard externally-owned
            :class:`~repro.serving.state.PopularityState` objects — the
            serving pool passes shared-memory-backed states here so the
            engines serve from (and commit to) cross-process arrays.
    """
    from repro.serving.cache import ResultPageCache
    from repro.serving.engine import ServingEngine
    from repro.serving.router import ShardedRouter

    if community is None:
        community = config.community()
    if policy is None:
        policy = config.policy()
    if seed is _CONFIG_SEED:
        seed = config.seed
    n_shards = config.n_shards
    if n_shards > community.n_pages:
        raise ValueError(
            "n_shards (%d) cannot exceed n_pages (%d)"
            % (n_shards, community.n_pages)
        )
    if states is not None and len(states) != n_shards:
        raise ValueError(
            "states must supply one state per shard (%d), got %d"
            % (n_shards, len(states))
        )
    base, remainder = divmod(community.n_pages, n_shards)
    rngs = spawn_rngs(seed, n_shards)
    engines = []
    for shard, rng in enumerate(rngs):
        # Spread the remainder over the first shards so the shard total
        # equals the requested community size exactly.
        shard_community = community.scaled(base + (1 if shard < remainder else 0))
        cache = None
        if config.cache_capacity is not None:
            cache = ResultPageCache(
                capacity=config.cache_capacity,
                staleness_budget=config.staleness_budget,
            )
        state = None
        if states is not None:
            state = states[shard]
            # An engine built with external state skips the quality draw a
            # self-built engine makes; burn the same draw so the shard's
            # serving stream stays aligned with the single-process router.
            shard_community.sample_qualities(rng)
        engines.append(
            ServingEngine(
                shard_community,
                policy,
                mode=config.mode,
                cache=cache,
                state=state,
                name="shard-%d" % shard,
                seed=rng,
                adaptive_rank=config.adaptive_rank,
            )
        )
    router = ShardedRouter(engines)
    router.robustness.retry_policy = config.retry_policy()
    if telemetry is not None:
        router.attach_telemetry(telemetry)
    return router


def build_pool(config: ServingConfig, *, telemetry=None, warm: bool = False):
    """Build a :class:`~repro.serving.pool.ServingPool` from ``config``.

    Requires ``config.workers >= 1``; the pool starts its worker
    processes immediately.  ``warm=True`` seeds every tenant shard with
    the benchmark's steady-state awareness profile before the workers
    fork.  See :mod:`repro.serving.pool`.
    """
    from repro.serving.pool import ServingPool

    return ServingPool(config, telemetry=telemetry, warm=warm)


__all__ = ["ServingConfig", "build_router", "build_pool"]
