"""Sweep figure drivers: QPC / hit-rate / staleness trade-off curves.

The lockstep sweep (:mod:`repro.serving.sweep`) produces one flat metrics
row per variant; the telemetry recorder adds windowed rows over the query
stream.  The drivers here fold both into
:class:`~repro.experiments.results.ExperimentResult` figures — the same
ASCII-rendered containers the paper-figure experiments use, so the output
needs no plotting dependency:

* :func:`sweep_tradeoff_figures` — the serving trade-off the randomized
  promotion paper implies but never plots: how the promotion rate ``r``
  and the cache staleness budget move QPC (quality per click), cache hit
  rate and OCC staleness rejections against each other.
* :func:`telemetry_series_figure` — metric evolution over the stream from
  the recorder's windowed JSONL rows (event-indexed x axis).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from repro.experiments.results import ExperimentResult
from repro.serving.sweep import SweepResult

#: Windowed-row metrics plotted by :func:`telemetry_series_figure` when no
#: explicit metric list is given (skipped silently when absent from rows).
DEFAULT_SERIES_METRICS = ("cache_hit_rate", "qps", "staleness_mean", "qpc")


def _budget_label(row: Dict[str, float]) -> str:
    return "budget=%g" % row.get("staleness_budget", 0.0)


def sweep_tradeoff_figures(result: SweepResult) -> List[ExperimentResult]:
    """Trade-off curves over a sweep grid, one figure per metric.

    Expects the grid to vary the promotion rate ``r`` (x axis) and,
    optionally, the cache ``staleness_budget`` (one series per budget).
    Returns three figures: QPC vs r, cache hit rate vs r, and OCC
    staleness-rejection rate vs r.  Variants missing a metric (e.g. QPC
    without feedback events) are skipped point-wise.
    """
    rows = result.rows()
    figures: List[ExperimentResult] = []
    metrics = (
        ("qpc", "quality per click (QPC)", "sweep-qpc"),
        ("cache_hit_rate", "cache hit rate", "sweep-hit-rate"),
        ("staleness_rejection_rate", "OCC staleness rejections / lookup",
         "sweep-staleness"),
    )
    for metric, y_label, name in metrics:
        figure = ExperimentResult(
            experiment=name,
            title="serving trade-off over %d variants (%d queries)"
            % (result.replicates, result.queries),
            x_label="r",
            y_label=y_label,
        )
        series: Dict[str, object] = {}
        for row in rows:
            if metric == "staleness_rejection_rate":
                lookups = row.get("cache_hits", 0.0) + row.get("cache_misses", 0.0)
                if not lookups:
                    continue
                value = row.get("cache_stale_evictions", 0.0) / lookups
            elif metric in row:
                value = row[metric]
            else:
                continue
            label = _budget_label(row)
            if label not in series:
                series[label] = figure.add_series(label)
            series[label].add(row["r"], value)
        if figure.series:
            figures.append(figure)
    return figures


def load_telemetry_rows(path: str) -> List[Dict[str, float]]:
    """Parse a telemetry JSONL file back into row dictionaries."""
    rows: List[Dict[str, float]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def telemetry_series_figure(
    rows: Iterable[Dict[str, float]],
    metrics: Optional[Sequence[str]] = None,
    kind: str = "window",
) -> Optional[ExperimentResult]:
    """Metric evolution over the stream from windowed telemetry rows.

    ``rows`` are recorder rows (in memory or via
    :func:`load_telemetry_rows`); only rows of the given ``kind`` are
    plotted, with ``event_end`` as the x axis and one series per metric
    (``kind="sweep"`` rows additionally split each metric per variant).
    Returns ``None`` when no matching rows carry any requested metric.
    """
    metrics = tuple(metrics) if metrics is not None else DEFAULT_SERIES_METRICS
    figure = ExperimentResult(
        experiment="telemetry-series",
        title="windowed telemetry over the query stream",
        x_label="events",
        y_label="per-window metric value",
    )
    series: Dict[str, object] = {}
    for row in rows:
        if row.get("kind", "window") != kind or "event_end" not in row:
            continue
        variant = row.get("variant")
        for metric in metrics:
            if metric not in row:
                continue
            name = "%s[%s]" % (metric, variant) if variant else metric
            if name not in series:
                series[name] = figure.add_series(name)
            series[name].add(row["event_end"], row[metric])
    return figure if figure.series else None


__all__ = [
    "DEFAULT_SERIES_METRICS",
    "load_telemetry_rows",
    "sweep_tradeoff_figures",
    "telemetry_series_figure",
]
