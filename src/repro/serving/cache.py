"""Result-page cache with optimistic, version-stamped invalidation.

Serving the same community/k/policy combination repeatedly would otherwise
recompute an identical result page per query.  The cache stores each page
together with the popularity-state ``version`` it was computed at and
validates on read: if the state has advanced past the entry's version by
more than ``staleness_budget`` mutation batches, the entry is discarded and
the caller recomputes.  This is the validate-on-read flavour of optimistic
concurrency control (Laux & Laiho's versioned-row read pattern) applied to
cached rankings instead of database rows — readers never block feedback
writers; they detect conflicting updates after the fact.

A ``staleness_budget`` of zero means strictly fresh pages; a small positive
budget trades bounded staleness for hit rate, which is the knob the serving
benchmarks sweep.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from repro.telemetry.recorder import NULL_RECORDER


@dataclass
class CacheStats:
    """Counters describing cache effectiveness.

    ``stale_evictions`` counts validate-on-read failures — the OCC
    conflict signal — and :meth:`snapshot` reports it under the explicit
    ``staleness_rejections`` name; ``invalidations`` counts wholesale
    :meth:`ResultPageCache.invalidate` calls (lifecycle days and other
    events that replace the underlying pages).
    """

    hits: int = 0
    misses: int = 0
    stale_evictions: int = 0
    capacity_evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> Dict[str, float]:
        """Explicit stats snapshot (unprefixed canonical names).

        The single source of truth for cache effectiveness counters:
        telemetry, benchmark reports and ad-hoc inspection all read this
        rather than picking dataclass fields by hand.
        """
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "staleness_rejections": float(self.stale_evictions),
            "capacity_evictions": float(self.capacity_evictions),
            "invalidations": float(self.invalidations),
            "lookups": float(self.lookups),
            "hit_rate": self.hit_rate,
        }

    def as_dict(self) -> Dict[str, float]:
        """:meth:`snapshot` under legacy ``cache_``-prefixed report keys."""
        snap = self.snapshot()
        return {
            "cache_hits": snap["hits"],
            "cache_misses": snap["misses"],
            "cache_stale_evictions": snap["staleness_rejections"],
            "cache_capacity_evictions": snap["capacity_evictions"],
            "cache_invalidations": snap["invalidations"],
            "cache_hit_rate": snap["hit_rate"],
        }


@dataclass
class _Entry:
    page: np.ndarray
    version: int


@dataclass
class ResultPageCache:
    """LRU cache of served result pages keyed by (community, k, policy).

    Attributes:
        capacity: maximum number of result pages retained.
        staleness_budget: maximum number of popularity-state versions an
            entry may lag behind the current version and still be served.
    """

    capacity: int = 128
    staleness_budget: int = 0
    stats: CacheStats = field(default_factory=CacheStats)
    telemetry: object = field(default=NULL_RECORDER, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1, got %d" % self.capacity)
        if self.staleness_budget < 0:
            raise ValueError("staleness_budget must be non-negative")
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Hashable, current_version: int) -> Optional[np.ndarray]:
        """Return the cached page for ``key`` if present and fresh enough.

        The validate-on-read step: an entry older than
        ``current_version - staleness_budget`` is evicted and reported as a
        miss, forcing the caller to recompute against the new state.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            if self.telemetry.enabled:
                self.telemetry.record_miss()
            return None
        staleness = current_version - entry.version
        if staleness > self.staleness_budget:
            del self._entries[key]
            self.stats.stale_evictions += 1
            self.stats.misses += 1
            if self.telemetry.enabled:
                self.telemetry.record_occ_rejection(staleness)
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        if self.telemetry.enabled:
            self.telemetry.record_hit(staleness)
        return entry.page

    def store(self, key: Hashable, page: np.ndarray, version: int) -> None:
        """Insert/refresh a result page computed at ``version``.

        The page is copied and frozen: cached entries are shared across all
        future hits, so a caller mutating a served page must not be able to
        corrupt what other queries receive.
        """
        if key in self._entries:
            del self._entries[key]
        stored = np.array(page, copy=True)
        stored.setflags(write=False)
        self._entries[key] = _Entry(page=stored, version=int(version))
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.capacity_evictions += 1

    def invalidate(self) -> None:
        """Drop every entry (e.g. after a lifecycle day replaces pages)."""
        self._entries.clear()
        self.stats.invalidations += 1

    def poison_versions(self, version: int) -> None:
        """Overwrite every entry's version stamp (fault injection only).

        Stamping entries with a far-past version makes the next lookup of
        each key fail validate-on-read and recompute — the corruption the
        chaos harness uses to prove the OCC read path contains a poisoned
        cache instead of serving garbage indefinitely.
        """
        for entry in self._entries.values():
            entry.version = int(version)


def page_key(community_tag: Hashable, k: int, policy_tag: Hashable) -> Tuple:
    """Canonical cache key: which community, page length, and policy."""
    return (community_tag, int(k), policy_tag)


__all__ = ["ResultPageCache", "CacheStats", "page_key"]
