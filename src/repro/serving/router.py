"""Sharded query router: many communities, one serving front door.

Scaling past a single community means partitioning pages into shards, each
owned by one :class:`~repro.serving.engine.ServingEngine` with its own
popularity state, result cache and random stream.  The router:

* hashes every query id to a shard with a stable (process-independent)
  hash, so a query always lands on the same community;
* serves the query from that shard's engine/cache;
* *buffers* visit feedback per shard and applies it in batches — one
  O(batch) state update and one order repair per flush instead of one per
  event, which is what keeps the incremental path cheap under heavy
  feedback traffic.
"""

from __future__ import annotations

import zlib
from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.community.config import CommunityConfig
from repro.core.policy import RECOMMENDED_POLICY, RankPromotionPolicy
from repro.serving.cache import CacheStats, ResultPageCache
from repro.serving.engine import ServingEngine
from repro.telemetry.recorder import NULL_RECORDER
from repro.utils.rng import RandomSource, spawn_rngs


def stable_shard_hash(query_id: Hashable) -> int:
    """Deterministic non-negative hash of a query id.

    Python's builtin ``hash`` is salted per process; CRC32 over the repr is
    stable across runs and machines, which keeps shard assignment (and with
    it every downstream random stream) reproducible.
    """
    return zlib.crc32(repr(query_id).encode("utf-8"))


class ShardedRouter:
    """Routes a query stream over a fleet of community shards."""

    def __init__(self, engines: Sequence[ServingEngine]) -> None:
        if not engines:
            raise ValueError("a router needs at least one shard engine")
        self.engines: List[ServingEngine] = list(engines)
        self._pending_indices: List[List[int]] = [[] for _ in self.engines]
        self._pending_visits: List[List[float]] = [[] for _ in self.engines]
        self.queries_routed = 0
        self.queries_per_shard = [0] * len(self.engines)
        self.feedback_buffered = 0
        self.flushes = 0
        self.telemetry = NULL_RECORDER

    @classmethod
    def from_community(
        cls,
        community: CommunityConfig,
        policy: RankPromotionPolicy = RECOMMENDED_POLICY,
        n_shards: int = 1,
        *,
        mode: str = "fluid",
        cache_capacity: Optional[int] = 128,
        staleness_budget: int = 0,
        seed: RandomSource = None,
    ) -> "ShardedRouter":
        """Partition ``community`` into ``n_shards`` equal communities.

        Each shard keeps the paper's user/page ratios (via
        :meth:`CommunityConfig.scaled`) and gets an independent child random
        stream, so shard behaviour is reproducible regardless of query
        interleaving.  ``cache_capacity=None`` disables caching.
        """
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1, got %d" % n_shards)
        if n_shards > community.n_pages:
            raise ValueError(
                "n_shards (%d) cannot exceed n_pages (%d)"
                % (n_shards, community.n_pages)
            )
        base, remainder = divmod(community.n_pages, n_shards)
        rngs = spawn_rngs(seed, n_shards)
        engines = []
        for shard, rng in enumerate(rngs):
            # Spread the remainder over the first shards so the shard total
            # equals the requested community size exactly.
            shard_community = community.scaled(base + (1 if shard < remainder else 0))
            cache = None
            if cache_capacity is not None:
                cache = ResultPageCache(
                    capacity=cache_capacity, staleness_budget=staleness_budget
                )
            engines.append(
                ServingEngine(
                    shard_community,
                    policy,
                    mode=mode,
                    cache=cache,
                    name="shard-%d" % shard,
                    seed=rng,
                )
            )
        return cls(engines)

    # ------------------------------------------------------------------ API

    @property
    def n_shards(self) -> int:
        """Number of community shards behind the router."""
        return len(self.engines)

    @property
    def n_pages(self) -> int:
        """Total pages across all shards."""
        return sum(engine.state.n for engine in self.engines)

    def shard_for(self, query_id: Hashable) -> int:
        """Shard index the query is routed to (stable across runs)."""
        return stable_shard_hash(query_id) % self.n_shards

    def attach_telemetry(self, recorder) -> None:
        """Point the router, every engine and every cache at ``recorder``.

        Pass :data:`~repro.telemetry.recorder.NULL_RECORDER` to detach.
        The recorder's shard counters must cover ``n_shards`` shards.
        """
        self.telemetry = recorder
        for engine in self.engines:
            engine.telemetry = recorder
            if engine.cache is not None:
                engine.cache.telemetry = recorder

    def serve(self, query_id: Hashable, k: int) -> np.ndarray:
        """Serve the top-``k`` result page for one query."""
        shard = self.shard_for(query_id)
        self.queries_routed += 1
        self.queries_per_shard[shard] += 1
        page = self.engines[shard].serve(k)
        # Recorded after the engine call so the cache outcome of this very
        # query is inside the window row a boundary tick emits.
        if self.telemetry.enabled:
            self.telemetry.record_query(shard)
        return page

    def submit_feedback(
        self, query_id: Hashable, page_index: int, visits: float = 1.0
    ) -> None:
        """Buffer one visit-feedback event for the query's shard."""
        shard = self.shard_for(query_id)
        page_index = int(page_index)
        self._pending_indices[shard].append(page_index)
        self._pending_visits[shard].append(float(visits))
        self.feedback_buffered += 1
        if self.telemetry.enabled:
            self.telemetry.record_feedback(
                float(self.engines[shard].state.pool.quality[page_index])
            )

    def flush_feedback(self) -> int:
        """Apply all buffered feedback, one batched update per shard.

        Returns the number of events applied.  Each shard's popularity
        state advances by at most one version per flush, which is what the
        cache staleness budget counts against.
        """
        applied = 0
        for shard, engine in enumerate(self.engines):
            indices = self._pending_indices[shard]
            if not indices:
                continue
            engine.apply_feedback(
                np.asarray(indices, dtype=int),
                np.asarray(self._pending_visits[shard]),
            )
            applied += len(indices)
            self._pending_indices[shard] = []
            self._pending_visits[shard] = []
        if applied:
            self.flushes += 1
            if self.telemetry.enabled:
                self.telemetry.record_flush(applied)
        return applied

    def advance_day(self) -> None:
        """Run one lifecycle day on every shard (buffered feedback first)."""
        self.flush_feedback()
        for engine in self.engines:
            engine.advance_day()

    def cache_stats(self) -> CacheStats:
        """Aggregate cache counters across shards."""
        total = CacheStats()
        for engine in self.engines:
            if engine.cache is None:
                continue
            stats = engine.cache.stats
            total.hits += stats.hits
            total.misses += stats.misses
            total.stale_evictions += stats.stale_evictions
            total.capacity_evictions += stats.capacity_evictions
            total.invalidations += stats.invalidations
        return total

    def stats(self) -> Dict[str, float]:
        """Routing and cache counters as one flat dictionary."""
        report = {
            "n_shards": float(self.n_shards),
            "n_pages": float(self.n_pages),
            "queries_routed": float(self.queries_routed),
            "feedback_buffered": float(self.feedback_buffered),
            "flushes": float(self.flushes),
        }
        for shard, count in enumerate(self.queries_per_shard):
            report["queries_shard_%d" % shard] = float(count)
        report.update(self.cache_stats().as_dict())
        return report


__all__ = ["ShardedRouter", "stable_shard_hash"]
