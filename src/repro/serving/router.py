"""Sharded query router: many communities, one serving front door.

Scaling past a single community means partitioning pages into shards, each
owned by one :class:`~repro.serving.engine.ServingEngine` with its own
popularity state, result cache and random stream.  The router:

* hashes every query id to a shard with a stable (process-independent)
  hash, so a query always lands on the same community;
* serves the query from that shard's engine/cache;
* *buffers* visit feedback per shard and applies it in batches — one
  O(batch) state update and one order repair per flush instead of one per
  event, which is what keeps the incremental path cheap under heavy
  feedback traffic;
* *commits* each flushed batch through the OCC write path: the commit
  carries the popularity-store version the writer read, a conflicting
  commit is rejected and retried with bounded jittered backoff, and a
  batch that exhausts its attempts is dead-lettered
  (:mod:`repro.robustness.occ`);
* optionally runs under a :class:`~repro.robustness.faults.FaultInjector`
  with per-shard :class:`~repro.robustness.supervisor.ShardSupervisor`\\ s:
  downed shards serve last-known-good pages within an escalating staleness
  budget (load-shedding beyond it), crashed shards are rebuilt from
  checkpoint + journal replay, and buffered feedback for an unavailable
  shard is held back rather than lost (backpressure).  Without
  ``enable_robustness`` the hot paths hold the no-op
  :data:`~repro.robustness.faults.NULL_INJECTOR` and pay one attribute
  load and a predictable branch per query.
"""

from __future__ import annotations

import time
import zlib
from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.community.config import CommunityConfig
from repro.core.policy import RECOMMENDED_POLICY, RankPromotionPolicy
from repro.robustness.faults import (
    NULL_INJECTOR,
    FaultInjector,
    FaultPlan,
    LoadShedError,
)
from repro.robustness.occ import (
    DeadLetter,
    DeadLetterQueue,
    FlushReport,
    RetryPolicy,
)
from repro.serving.cache import CacheStats
from repro.serving.engine import ServingEngine
from repro.telemetry.recorder import NULL_RECORDER
from repro.utils.rng import RandomSource, as_rng


def stable_shard_hash(query_id: Hashable) -> int:
    """Deterministic non-negative hash of a query id.

    Python's builtin ``hash`` is salted per process; CRC32 over the repr is
    stable across runs and machines, which keeps shard assignment (and with
    it every downstream random stream) reproducible.
    """
    return zlib.crc32(repr(query_id).encode("utf-8"))


class RouterRobustnessState:
    """All mutable OCC/robustness state of one router, created in one place.

    Every router — the single-process front door and each serving-pool
    worker's internal router alike — gets exactly this object from
    ``ShardedRouter.__init__``, so the write-path initialization cannot
    drift between construction sites.  The retry policy and dead-letter
    queue are live even without fault injection: any conflicting commit
    (scripted *or* a real concurrent writer racing on shared state) goes
    through the same retry/dead-letter path.
    """

    __slots__ = (
        "supervisors",
        "retry_policy",
        "dead_letters",
        "occ_conflicts",
        "occ_retries",
        "backoff_seconds",
        "retry_rng",
        "sleep",
        "fault_queries",
    )

    def __init__(self) -> None:
        self.supervisors = None
        self.retry_policy = RetryPolicy()
        self.dead_letters = DeadLetterQueue()
        self.occ_conflicts = 0
        self.occ_retries = 0
        self.backoff_seconds = 0.0
        self.retry_rng = as_rng(None)
        self.sleep = time.sleep
        self.fault_queries = 0

    def arm(self, retry=None, seed: RandomSource = None, sleep=None) -> None:
        """Apply the ``enable_robustness`` knobs (None keeps the default)."""
        if retry is not None:
            self.retry_policy = retry
        self.retry_rng = as_rng(seed)
        if sleep is not None:
            self.sleep = sleep
        self.fault_queries = 0

    def disarm(self) -> None:
        self.supervisors = None
        self.sleep = time.sleep


class ShardedRouter:
    """Routes a query stream over a fleet of community shards."""

    def __init__(self, engines: Sequence[ServingEngine]) -> None:
        if not engines:
            raise ValueError("a router needs at least one shard engine")
        self.engines: List[ServingEngine] = list(engines)
        self._pending_indices: List[List[int]] = [[] for _ in self.engines]
        self._pending_visits: List[List[float]] = [[] for _ in self.engines]
        self.queries_routed = 0
        self.queries_per_shard = [0] * len(self.engines)
        self.feedback_buffered = 0
        self.flushes = 0
        # ``telemetry`` and ``faults`` are the two per-query hot-path
        # references (one attribute load + predictable branch each); they
        # stay plain attributes.  Everything else the robustness layer
        # mutates lives in one RouterRobustnessState.
        self.telemetry = NULL_RECORDER
        self.faults = NULL_INJECTOR
        self.robustness = RouterRobustnessState()

    # -------------------------------------------------- robustness views
    # Back-compat delegation: external code (tests, benches, operators)
    # historically read these straight off the router.

    @property
    def supervisors(self):
        """Per-shard supervisors, or None while robustness is disarmed."""
        return self.robustness.supervisors

    @supervisors.setter
    def supervisors(self, value) -> None:
        self.robustness.supervisors = value

    @property
    def retry_policy(self) -> RetryPolicy:
        """OCC retry/backoff policy applied by ``_commit_shard``."""
        return self.robustness.retry_policy

    @retry_policy.setter
    def retry_policy(self, value: RetryPolicy) -> None:
        self.robustness.retry_policy = value

    @property
    def dead_letters(self) -> DeadLetterQueue:
        """Feedback batches that exhausted their commit attempts."""
        return self.robustness.dead_letters

    @dead_letters.setter
    def dead_letters(self, value: DeadLetterQueue) -> None:
        self.robustness.dead_letters = value

    @property
    def occ_conflicts(self) -> int:
        """Total conflicting commit attempts observed."""
        return self.robustness.occ_conflicts

    @occ_conflicts.setter
    def occ_conflicts(self, value: int) -> None:
        self.robustness.occ_conflicts = value

    @property
    def occ_retries(self) -> int:
        """Total backed-off commit retries."""
        return self.robustness.occ_retries

    @occ_retries.setter
    def occ_retries(self, value: int) -> None:
        self.robustness.occ_retries = value

    @property
    def backoff_seconds(self) -> float:
        """Total scheduled retry backoff."""
        return self.robustness.backoff_seconds

    @backoff_seconds.setter
    def backoff_seconds(self, value: float) -> None:
        self.robustness.backoff_seconds = value

    @property
    def _retry_rng(self):
        return self.robustness.retry_rng

    @_retry_rng.setter
    def _retry_rng(self, value) -> None:
        self.robustness.retry_rng = value

    @property
    def _sleep(self):
        return self.robustness.sleep

    @_sleep.setter
    def _sleep(self, value) -> None:
        self.robustness.sleep = value

    @property
    def _fault_queries(self) -> int:
        return self.robustness.fault_queries

    @_fault_queries.setter
    def _fault_queries(self, value: int) -> None:
        self.robustness.fault_queries = value

    @classmethod
    def from_community(
        cls,
        community: CommunityConfig,
        policy: RankPromotionPolicy = RECOMMENDED_POLICY,
        n_shards: int = 1,
        *,
        mode: str = "fluid",
        cache_capacity: Optional[int] = 128,
        staleness_budget: int = 0,
        seed: RandomSource = None,
    ) -> "ShardedRouter":
        """Partition ``community`` into ``n_shards`` equal communities.

        .. deprecated:: 1.3
            Thin shim over :func:`repro.serving.config.build_router`; new
            code should build a frozen, JSON-round-trippable
            :class:`~repro.serving.config.ServingConfig` and call
            ``build_router(config)`` (or ``build_pool(config)`` for the
            multi-tenant process pool).  This classmethod remains for
            existing call sites and delegates to the same construction
            path, so the resulting router is bit-identical.

        Each shard keeps the paper's user/page ratios (via
        :meth:`CommunityConfig.scaled`) and gets an independent child random
        stream, so shard behaviour is reproducible regardless of query
        interleaving.  ``cache_capacity=None`` disables caching.
        """
        from repro.serving.config import ServingConfig, build_router

        config = ServingConfig(
            n_pages=community.n_pages,
            n_shards=n_shards,
            mode=mode,
            policy_rule=policy.rule,
            policy_k=policy.k,
            policy_r=policy.r,
            cache_capacity=cache_capacity,
            staleness_budget=staleness_budget,
            seed=seed if isinstance(seed, int) else 0,
        )
        return build_router(config, community=community, seed=seed, policy=policy)

    # ------------------------------------------------------------------ API

    @property
    def n_shards(self) -> int:
        """Number of community shards behind the router."""
        return len(self.engines)

    @property
    def n_pages(self) -> int:
        """Total pages across all shards."""
        return sum(engine.state.n for engine in self.engines)

    def shard_for(self, query_id: Hashable) -> int:
        """Shard index the query is routed to (stable across runs)."""
        return stable_shard_hash(query_id) % self.n_shards

    def attach_telemetry(self, recorder) -> None:
        """Point the router, every engine and every cache at ``recorder``.

        Pass :data:`~repro.telemetry.recorder.NULL_RECORDER` to detach.
        The recorder's shard counters must cover ``n_shards`` shards.
        """
        self.telemetry = recorder
        for engine in self.engines:
            engine.telemetry = recorder
            if engine.cache is not None:
                engine.cache.telemetry = recorder

    def enable_robustness(
        self,
        plan: Optional[FaultPlan] = None,
        *,
        retry: Optional[RetryPolicy] = None,
        degradation=None,
        seed: RandomSource = None,
        sleep=None,
    ) -> FaultInjector:
        """Arm the robustness layer: supervisors, OCC knobs, fault injection.

        Builds one :class:`~repro.robustness.supervisor.ShardSupervisor`
        per shard (checkpointing the current state as the recovery base),
        installs a :class:`~repro.robustness.faults.FaultInjector` for
        ``plan`` (an empty plan just turns supervision/journaling on), and
        seeds the retry-backoff jitter stream.  ``sleep`` overrides the
        real ``time.sleep`` used between retries — benches pass a no-op to
        measure scheduled backoff without actually waiting.
        """
        from repro.robustness.supervisor import DegradationPolicy, ShardSupervisor

        if degradation is None:
            degradation = DegradationPolicy()
        self.robustness.arm(retry=retry, seed=seed, sleep=sleep)
        self.robustness.supervisors = [
            ShardSupervisor(shard, engine, degradation)
            for shard, engine in enumerate(self.engines)
        ]
        injector = FaultInjector(plan if plan is not None else FaultPlan(), self)
        self.faults = injector
        for engine in self.engines:
            engine.faults = injector
        return injector

    def disable_robustness(self) -> None:
        """Disarm fault injection and supervision; hot paths go no-op again."""
        self.faults = NULL_INJECTOR
        for engine in self.engines:
            engine.faults = NULL_INJECTOR
        self.robustness.disarm()

    def serve(self, query_id: Hashable, k: int) -> np.ndarray:
        """Serve the top-``k`` result page for one query.

        Raises :class:`~repro.robustness.faults.LoadShedError` if fault
        injection has the query's shard down and the last-known-good page
        is staler than the escalating degradation budget allows.
        """
        shard = self.shard_for(query_id)
        self.queries_routed += 1
        self.queries_per_shard[shard] += 1
        if self.faults.enabled:
            return self._serve_supervised(shard, k)
        page = self.engines[shard].serve(k)
        # Recorded after the engine call so the cache outcome of this very
        # query is inside the window row a boundary tick emits.
        if self.telemetry.enabled:
            self.telemetry.record_query(shard)
        return page

    def _serve_supervised(self, shard: int, k: int) -> np.ndarray:
        """Fault-aware serve: fire due events, degrade/recover as needed."""
        faults = self.faults
        self._fault_queries += 1
        query_index = self._fault_queries
        faults.on_query(query_index)
        status = faults.poll(shard, query_index)
        supervisor = self.supervisors[shard]
        if status == "recover":
            self._recover_shard(shard)
            status = "up"
        if status == "down":
            pending = len(self._pending_indices[shard])
            try:
                page, staleness = supervisor.serve_degraded(k, pending)
            except LoadShedError:
                if self.telemetry.enabled:
                    self.telemetry.record_load_shed()
                raise
            if self.telemetry.enabled:
                self.telemetry.record_degraded_serve(staleness)
                self.telemetry.record_query(shard)
            return page
        page = self.engines[shard].serve(k)
        supervisor.note_served(k, page)
        if self.telemetry.enabled:
            self.telemetry.record_query(shard)
        return page

    def _recover_shard(self, shard: int) -> None:
        elapsed = self.supervisors[shard].recover()
        self.faults.mark_recovered(shard)
        if self.telemetry.enabled:
            self.telemetry.record_recovery(shard, elapsed)

    def submit_feedback(
        self, query_id: Hashable, page_index: int, visits: float = 1.0
    ) -> None:
        """Buffer one visit-feedback event for the query's shard."""
        shard = self.shard_for(query_id)
        page_index = int(page_index)
        self._pending_indices[shard].append(page_index)
        self._pending_visits[shard].append(float(visits))
        self.feedback_buffered += 1
        if self.telemetry.enabled:
            state = self.engines[shard].state
            # A crashed shard has no state to read the clicked quality
            # from; the event is still buffered and commits after recovery.
            if state is not None:
                self.telemetry.record_feedback(
                    float(state.pool.quality[page_index])
                )

    def flush_feedback(self) -> FlushReport:
        """Commit all buffered feedback, one OCC batch commit per shard.

        Returns a :class:`~repro.robustness.occ.FlushReport` describing the
        outcome (committed events, conflicts, retries, dead letters; truthy
        iff anything committed — legacy ``if router.flush_feedback():``
        call sites keep working).  Each shard's popularity state advances
        by at most one version per clean flush, which is what the cache
        staleness budget counts against.  Shards that fault injection has
        down are skipped — their buffers keep growing (backpressure) until
        the shard recovers.
        """
        report = FlushReport()
        faults = self.faults
        for shard, engine in enumerate(self.engines):
            if faults.enabled:
                if faults.is_down(shard, self._fault_queries):
                    continue
                if faults.needs_recovery(shard):
                    self._recover_shard(shard)
            self._flush_shard(shard, engine, report)
        if report.committed:
            self.flushes += 1
            if self.telemetry.enabled:
                self.telemetry.record_flush(report.committed)
        return report

    def _flush_shard(self, shard: int, engine: ServingEngine, report: FlushReport) -> None:
        """Commit one shard's buffered batch (plus any reorder-deferred one)."""
        faults = self.faults
        held = faults.take_deferred(shard) if faults.enabled else None
        batches = []
        indices = self._pending_indices[shard]
        if indices:
            batch = (
                np.asarray(indices, dtype=int),
                np.asarray(self._pending_visits[shard]),
            )
            self._pending_indices[shard] = []
            self._pending_visits[shard] = []
            fault = faults.take_batch_fault(shard) if faults.enabled else None
            if fault == "drop":
                report.dropped_events += batch[0].size
            elif fault == "duplicate":
                batches.extend((batch, batch))
            elif fault == "reorder":
                # Held back until the next flush; a batch deferred earlier
                # (``held``) still commits below, after the current one.
                faults.defer_batch(shard, batch[0], batch[1])
            else:
                batches.append(batch)
        if held is not None:
            batches.append(held)
        for batch_indices, batch_visits in batches:
            report.batches += 1
            report.committed += self._commit_shard(
                shard, engine, batch_indices, batch_visits, report
            )

    def _commit_shard(
        self,
        shard: int,
        engine: ServingEngine,
        indices: np.ndarray,
        visits: np.ndarray,
        report: FlushReport,
    ) -> int:
        """OCC commit loop for one batch: read version, commit, retry, park.

        Returns the number of events committed (0 if the batch was
        dead-lettered).  Conflicts come from the fault injector's scripted
        concurrent writer, which bumps the store version between our
        version read and the commit — exactly the window a real concurrent
        writer would hit.
        """
        supervisor = self.supervisors[shard] if self.supervisors is not None else None
        policy = self.retry_policy
        faults = self.faults
        conflicts = 0
        while True:
            expected = engine.state.version
            injected = faults.enabled and faults.take_conflict(shard)
            if injected:
                # The scripted concurrent writer commits first.
                engine.state.bump_version()
                if supervisor is not None:
                    supervisor.journal_bump()
            else:
                rng_state = (
                    supervisor.capture_rng_state() if supervisor is not None else None
                )
                if engine.state.commit_visits_at(
                    indices, visits, expected, rng=engine.rng
                ):
                    if supervisor is not None:
                        supervisor.journal_commit(indices, visits, rng_state)
                    return int(indices.size)
            conflicts += 1
            report.conflicts += 1
            self.occ_conflicts += 1
            if self.telemetry.enabled:
                self.telemetry.record_commit_conflict()
            if conflicts >= policy.max_attempts:
                self.dead_letters.park(
                    DeadLetter(
                        shard=shard,
                        indices=indices,
                        visits=visits,
                        attempts=conflicts,
                    )
                )
                report.dead_letter_batches += 1
                report.dead_letter_events += int(indices.size)
                if self.telemetry.enabled:
                    self.telemetry.record_dead_letter(int(indices.size))
                return 0
            report.retries += 1
            self.occ_retries += 1
            backoff = policy.backoff_seconds(conflicts, self._retry_rng)
            report.backoff_seconds += backoff
            self.backoff_seconds += backoff
            if self.telemetry.enabled:
                self.telemetry.record_commit_retry()
            if backoff > 0.0:
                self._sleep(backoff)

    def redeliver_dead_letters(self) -> FlushReport:
        """Re-commit every parked dead-letter batch through the OCC loop.

        The operator's recovery hatch once the conflict storm has passed;
        batches that conflict out again are parked again.
        """
        report = FlushReport()
        for letter in self.dead_letters.drain():
            report.batches += 1
            report.committed += self._commit_shard(
                letter.shard,
                self.engines[letter.shard],
                letter.indices,
                letter.visits,
                report,
            )
        return report

    def advance_day(self) -> None:
        """Run one lifecycle day on every shard (buffered feedback first).

        Under fault injection, downed shards skip the lifecycle step — a
        dead process ages no pages — and supervised shards journal each
        day's replacement effect so crash recovery replays it exactly.
        """
        self.flush_feedback()
        faults = self.faults
        for shard, engine in enumerate(self.engines):
            if faults.enabled and (
                faults.is_down(shard, self._fault_queries)
                or faults.needs_recovery(shard)
            ):
                continue
            day_before = float(engine.day)
            replaced = engine.advance_day()
            if self.supervisors is not None:
                self.supervisors[shard].journal_day(replaced, day_before)

    def cache_stats(self) -> CacheStats:
        """Aggregate cache counters across shards."""
        total = CacheStats()
        for engine in self.engines:
            if engine.cache is None:
                continue
            stats = engine.cache.stats
            total.hits += stats.hits
            total.misses += stats.misses
            total.stale_evictions += stats.stale_evictions
            total.capacity_evictions += stats.capacity_evictions
            total.invalidations += stats.invalidations
        return total

    def stats(self) -> Dict[str, float]:
        """Routing and cache counters as one flat dictionary."""
        report = {
            "n_shards": float(self.n_shards),
            "n_pages": float(self.n_pages),
            "queries_routed": float(self.queries_routed),
            "feedback_buffered": float(self.feedback_buffered),
            "flushes": float(self.flushes),
            "occ_conflicts": float(self.occ_conflicts),
            "occ_retries": float(self.occ_retries),
            "occ_backoff_seconds": float(self.backoff_seconds),
            "dead_letter_batches": float(self.dead_letters.total_batches),
            "dead_letter_events": float(self.dead_letters.total_events),
        }
        for shard, count in enumerate(self.queries_per_shard):
            report["queries_shard_%d" % shard] = float(count)
        if self.supervisors is not None:
            totals: Dict[str, float] = {}
            for supervisor in self.supervisors:
                for name, value in supervisor.counters().items():
                    totals[name] = totals.get(name, 0.0) + value
            # All-shards bit-identity is the AND, not the sum.
            totals["recovered_bit_identical"] = min(
                supervisor.counters()["recovered_bit_identical"]
                for supervisor in self.supervisors
            )
            report.update(totals)
        if self.faults.enabled:
            report.update(self.faults.counters())
        report.update(self.cache_stats().as_dict())
        return report


__all__ = ["RouterRobustnessState", "ShardedRouter", "stable_shard_hash"]
