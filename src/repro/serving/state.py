"""Incremental popularity store for the online serving path.

The offline :class:`~repro.simulation.engine.Simulator` recomputes the whole
community's popularity every simulated day.  :class:`PopularityState` keeps
the same per-page arrays (via a wrapped :class:`~repro.community.PagePool`)
but is updated *incrementally*: a batch of visit feedback touches only the
pages that received visits, in O(batch) instead of O(n).

Every mutation bumps a monotone ``version`` counter and records which pages
changed.  Downstream consumers use the version for optimistic validate-on-
read (the result-page cache compares its stamp against the current version,
the OCC pattern of Laux & Laiho) and the dirty set for incremental partial
re-sorts of the serving order.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.community.config import CommunityConfig
from repro.community.page import PagePool, awareness_gain
from repro.core.kernels import get_backend
from repro.simulation.config import VALID_MODES
from repro.utils.rng import RandomSource, as_rng

try:  # pragma: no cover - absent only on exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None


class PopularityState:
    """Versioned, incrementally-updated popularity state of one community.

    Attributes:
        pool: the wrapped :class:`~repro.community.PagePool` holding quality,
            awareness counts, creation times and page identifiers.
        mode: ``"fluid"`` (expected-value awareness updates) or
            ``"stochastic"`` (binomial sampling), matching the simulator.
        version: monotone counter, incremented once per mutation batch.
    """

    def __init__(self, pool: PagePool, mode: str = "fluid") -> None:
        if mode not in VALID_MODES:
            raise ValueError("mode must be one of %s, got %r" % (VALID_MODES, mode))
        self.pool = pool
        self.mode = mode
        self.version = 0
        self._popularity = pool.popularity  # materialized; updated in place
        self._dirty_mask = np.zeros(pool.n, dtype=bool)

    @classmethod
    def from_config(
        cls,
        community: CommunityConfig,
        rng: RandomSource = None,
        mode: str = "fluid",
    ) -> "PopularityState":
        """Build a fresh zero-awareness state for ``community``."""
        return cls(PagePool.from_config(community, as_rng(rng)), mode=mode)

    # --- Views -------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of page slots."""
        return self.pool.n

    @property
    def popularity(self) -> np.ndarray:
        """Cached popularity vector ``P = A * Q``; do not mutate."""
        return self._popularity

    @property
    def quality(self) -> np.ndarray:
        """Per-page intrinsic quality."""
        return self.pool.quality

    def staleness(self, version_stamp: int) -> int:
        """How many mutation batches have landed since ``version_stamp``."""
        return self.version - int(version_stamp)

    # --- Mutation ----------------------------------------------------------

    def apply_visits_at(
        self,
        indices: np.ndarray,
        visits: np.ndarray,
        rng: RandomSource = None,
    ) -> None:
        """Apply a sparse batch of monitored visits; O(batch) work.

        ``indices`` may contain duplicates (several feedback events for the
        same page); visit counts are summed per page before the awareness
        update so the batch is equivalent to one day's worth of those visits
        landing together.

        The fluid-mode arithmetic routes through the active kernel
        backend's ``feedback_flush`` (the same kernel the lockstep sweep's
        flush-window advance uses); the stochastic branch keeps the
        per-call binomial draws from the caller's generator.
        """
        indices = np.asarray(indices, dtype=int)
        visits = np.asarray(visits, dtype=float)
        if indices.shape != visits.shape:
            raise ValueError("indices and visits must have the same shape")
        if indices.size == 0:
            return
        touched, inverse = np.unique(indices, return_inverse=True)
        summed = np.zeros(touched.size)
        np.add.at(summed, inverse, visits)

        pool = self.pool
        if self.mode == "fluid":
            get_backend().feedback_flush(
                pool.aware_count,
                self._popularity,
                pool.quality,
                self._dirty_mask,
                touched,
                summed,
                pool.monitored_population,
            )
            self.version += 1
            return
        gained = awareness_gain(
            pool.aware_count[touched],
            pool.monitored_population,
            summed,
            mode=self.mode,
            rng=rng,
        )
        pool.aware_count[touched] = np.minimum(
            pool.monitored_population, pool.aware_count[touched] + gained
        )
        self._mark_changed(touched)

    def commit_visits_at(
        self,
        indices: np.ndarray,
        visits: np.ndarray,
        expected_version: int,
        rng: RandomSource = None,
    ) -> bool:
        """Conflict-checked feedback commit (the OCC write pattern).

        The writer presents the version it read its snapshot at; if the
        state has advanced since (a concurrent writer committed first),
        the commit is rejected *without touching any state* and the caller
        re-reads and retries.  This is the write-side complement of the
        cache's validate-on-read: Laux & Laiho's version-check UPDATE,
        where the WHERE clause matching zero rows signals the conflict.
        """
        if self.version != int(expected_version):
            return False
        self.apply_visits_at(indices, visits, rng=rng)
        return True

    def bump_version(self) -> None:
        """Advance the version without changing page state.

        Models a concurrent writer's committed-elsewhere mutation (used by
        the fault injector to manufacture OCC conflicts, and by journal
        replay to reproduce them): readers and writers holding the old
        version observe a conflict, but popularity itself is untouched.
        """
        self.version += 1

    def apply_visit_feedback(
        self, monitored_visits: np.ndarray, rng: RandomSource = None
    ) -> None:
        """Apply a full per-page visit vector (the day-replay parity path).

        Performs exactly the arithmetic of
        :meth:`Simulator._update_awareness` — same helper, same argument
        order — so a replayed day consumes the random stream identically.
        """
        pool = self.pool
        gained = awareness_gain(
            pool.aware_count,
            pool.monitored_population,
            monitored_visits,
            mode=self.mode,
            rng=rng,
        )
        pool.add_awareness_bulk(gained)
        self._mark_changed(np.flatnonzero(np.asarray(monitored_visits) > 0))

    def note_replaced(self, indices: np.ndarray) -> None:
        """Record that the lifecycle replaced ``indices`` in the wrapped pool."""
        indices = np.asarray(indices, dtype=int)
        if indices.size == 0:
            return
        self._mark_changed(indices)

    def set_awareness(self, aware_count: np.ndarray) -> None:
        """Overwrite the awareness counts wholesale (synthetic warm states).

        Benchmarks use this to jump straight to a steady-state-like awareness
        profile without simulating the warm-up.
        """
        aware_count = np.asarray(aware_count, dtype=float)
        if aware_count.shape != (self.n,):
            raise ValueError("aware_count must have shape (%d,)" % self.n)
        if np.any((aware_count < 0) | (aware_count > self.pool.monitored_population)):
            raise ValueError("aware_count values must lie in [0, m]")
        self.pool.aware_count[:] = aware_count
        self._mark_changed(np.arange(self.n))

    # --- Dirty tracking ----------------------------------------------------

    def consume_dirty(self) -> np.ndarray:
        """Return and clear the indices changed since the last consumption.

        Single-consumer protocol: the serving engine that maintains the
        sorted order calls this when repairing; anything else should rely on
        ``version`` alone.
        """
        dirty = np.flatnonzero(self._dirty_mask)
        self._dirty_mask[:] = False
        return dirty

    def _mark_changed(self, indices: np.ndarray) -> None:
        pool = self.pool
        self._popularity[indices] = (
            pool.aware_count[indices] / pool.monitored_population
        ) * pool.quality[indices]
        self._dirty_mask[indices] = True
        self.version += 1


# --- Shared-memory popularity state -------------------------------------
#
# The serving pool hosts each shard's mutable popularity arrays in one
# ``multiprocessing.shared_memory`` block so that worker and client
# processes commit racing feedback against the *same* version word.  Block
# layout (all offsets 8-byte aligned):
#
#     int64[8]   header: version, committed events/batches, conflicts
#     float64[n] aware-user counts (the mutable popularity input)
#     float64[n] per-page quality (written once at creation)
#     bool[n]    cross-process dirty mask
#
# Everything else an engine needs (creation times, page ids, the sorted
# serving order) stays process-local: only the OCC write path and the
# popularity inputs must be shared.

_HEADER_SLOTS = 8
_SLOT_VERSION = 0
_SLOT_COMMITTED_EVENTS = 1
_SLOT_COMMITTED_BATCHES = 2
_SLOT_CONFLICTS = 3


def shared_memory_available() -> bool:
    """True iff ``multiprocessing.shared_memory`` works on this platform."""
    if _shared_memory is None:
        return False
    try:
        block = _shared_memory.SharedMemory(create=True, size=16)
    except (OSError, ValueError):
        return False
    block.close()
    block.unlink()
    return True


def shared_block_nbytes(n_pages: int) -> int:
    """Size in bytes of one shard's shared popularity block."""
    return _HEADER_SLOTS * 8 + n_pages * 8 * 2 + n_pages


def _block_views(buf, n_pages: int):
    """(header, aware_count, quality, dirty) numpy views over one block."""
    header = np.ndarray((_HEADER_SLOTS,), dtype=np.int64, buffer=buf, offset=0)
    base = _HEADER_SLOTS * 8
    aware = np.ndarray((n_pages,), dtype=np.float64, buffer=buf, offset=base)
    quality = np.ndarray(
        (n_pages,), dtype=np.float64, buffer=buf, offset=base + n_pages * 8
    )
    dirty = np.ndarray(
        (n_pages,), dtype=np.bool_, buffer=buf, offset=base + n_pages * 16
    )
    return header, aware, quality, dirty


@dataclass(frozen=True)
class SharedShardHandle:
    """Picklable address of one shard's shared popularity block.

    The handle plus the shard's commit lock is everything another process
    needs to :meth:`SharedPopularityState.attach` to the live arrays.
    """

    name: str
    n_pages: int
    monitored_population: int
    mode: str = "fluid"


class SharedPopularityState(PopularityState):
    """A :class:`PopularityState` whose hot arrays live in shared memory.

    Same ``commit_visits_at`` contract as the base class, but the version
    word, awareness counts, quality and dirty mask are cross-process views,
    and the version-check-and-apply step runs under a per-shard lock so a
    commit is atomic.  Crucially the caller's version *read* stays outside
    the lock (``ShardedRouter._commit_shard`` reads ``state.version``
    before committing), so two processes that read the same version race
    for the commit and the loser observes a genuine OCC conflict — no
    fault script involved.

    The dirty set stays single-consumer: only the worker process that owns
    the shard's serving engine calls :meth:`consume_dirty` (which also
    refreshes the process-local popularity cache from the shared arrays);
    client writers only commit.
    """

    def __init__(
        self,
        shm,
        lock,
        n_pages: int,
        monitored_population: int,
        mode: str = "fluid",
        *,
        owner: bool = False,
    ) -> None:
        # Deliberately no super().__init__: the base would allocate local
        # arrays and zero a version this block may already carry.
        if mode not in VALID_MODES:
            raise ValueError("mode must be one of %s, got %r" % (VALID_MODES, mode))
        header, aware, quality, dirty = _block_views(shm.buf, n_pages)
        pool = PagePool.__new__(PagePool)
        pool.monitored_population = int(monitored_population)
        pool.quality = quality
        pool.aware_count = aware
        pool.created_at = np.zeros(n_pages)
        pool.page_ids = np.arange(n_pages, dtype=np.int64)
        pool._next_page_id = n_pages
        self.pool = pool
        self.mode = mode
        self._shm = shm
        self._lock = lock
        self._owner = bool(owner)
        self._header = header
        self._dirty_mask = dirty
        # Process-local materialization of A/m * Q, seeded from the block's
        # current contents and refreshed per dirty batch in consume_dirty.
        self._popularity = (aware / pool.monitored_population) * quality

    @classmethod
    def create(
        cls,
        community: CommunityConfig,
        rng: RandomSource = None,
        mode: str = "fluid",
        lock=None,
    ) -> "SharedPopularityState":
        """Allocate a fresh zero-awareness shared block for ``community``.

        Consumes exactly the quality draw :meth:`PopularityState.from_config`
        would, so a shared shard built from generator ``g`` matches a local
        shard built from an identically-seeded generator bit for bit.
        """
        if _shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        qualities = community.sample_qualities(as_rng(rng))
        n_pages = int(qualities.size)
        shm = _shared_memory.SharedMemory(
            create=True, size=shared_block_nbytes(n_pages)
        )
        if lock is None:
            lock = multiprocessing.Lock()
        state = cls(
            shm,
            lock,
            n_pages,
            community.n_monitored_users,
            mode,
            owner=True,
        )
        state._header[:] = 0
        state.pool.aware_count[:] = 0.0
        state.pool.quality[:] = qualities
        state._dirty_mask[:] = False
        state._popularity[:] = 0.0
        return state

    @classmethod
    def attach(cls, handle: SharedShardHandle, lock) -> "SharedPopularityState":
        """Map another process's shard block (created elsewhere)."""
        if _shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        shm = _shared_memory.SharedMemory(name=handle.name)
        return cls(
            shm,
            lock,
            handle.n_pages,
            handle.monitored_population,
            handle.mode,
            owner=False,
        )

    @property
    def handle(self) -> SharedShardHandle:
        """The picklable address other processes attach with."""
        return SharedShardHandle(
            name=self._shm.name,
            n_pages=self.pool.n,
            monitored_population=self.pool.monitored_population,
            mode=self.mode,
        )

    # The base class stores ``version`` as a plain attribute; here it is the
    # shared header word, so inherited ``self.version += 1`` mutations land
    # in shared memory transparently.
    @property
    def version(self) -> int:
        return int(self._header[_SLOT_VERSION])

    @version.setter
    def version(self, value: int) -> None:
        self._header[_SLOT_VERSION] = int(value)

    def commit_visits_at(
        self,
        indices: np.ndarray,
        visits: np.ndarray,
        expected_version: int,
        rng: RandomSource = None,
    ) -> bool:
        indices = np.asarray(indices, dtype=int)
        visits = np.asarray(visits, dtype=float)
        with self._lock:
            if int(self._header[_SLOT_VERSION]) != int(expected_version):
                self._header[_SLOT_CONFLICTS] += 1
                return False
            self.apply_visits_at(indices, visits, rng=rng)
            self._header[_SLOT_COMMITTED_EVENTS] += int(indices.size)
            self._header[_SLOT_COMMITTED_BATCHES] += 1
            return True

    def bump_version(self) -> None:
        with self._lock:
            self._header[_SLOT_VERSION] += 1

    def consume_dirty(self) -> np.ndarray:
        with self._lock:
            dirty = np.flatnonzero(self._dirty_mask)
            self._dirty_mask[:] = False
            if dirty.size:
                pool = self.pool
                self._popularity[dirty] = (
                    pool.aware_count[dirty] / pool.monitored_population
                ) * pool.quality[dirty]
        return dirty

    def counters(self) -> dict:
        """Cross-process commit accounting read from the shared header."""
        return {
            "shared_version": float(self._header[_SLOT_VERSION]),
            "shared_committed_events": float(self._header[_SLOT_COMMITTED_EVENTS]),
            "shared_committed_batches": float(self._header[_SLOT_COMMITTED_BATCHES]),
            "shared_conflicts": float(self._header[_SLOT_CONFLICTS]),
        }

    def close(self) -> None:
        """Unmap the block; the state keeps a read-only frozen copy."""
        self.pool.quality = self.pool.quality.copy()
        self.pool.aware_count = self.pool.aware_count.copy()
        self._dirty_mask = self._dirty_mask.copy()
        self._frozen_header = self._header.copy()
        self._header = self._frozen_header
        self._shm.close()

    def unlink(self) -> None:
        """Release the block (owner only; call after every process closed)."""
        if self._owner:
            self._shm.unlink()


__all__ = [
    "PopularityState",
    "SharedPopularityState",
    "SharedShardHandle",
    "shared_block_nbytes",
    "shared_memory_available",
]
