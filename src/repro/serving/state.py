"""Incremental popularity store for the online serving path.

The offline :class:`~repro.simulation.engine.Simulator` recomputes the whole
community's popularity every simulated day.  :class:`PopularityState` keeps
the same per-page arrays (via a wrapped :class:`~repro.community.PagePool`)
but is updated *incrementally*: a batch of visit feedback touches only the
pages that received visits, in O(batch) instead of O(n).

Every mutation bumps a monotone ``version`` counter and records which pages
changed.  Downstream consumers use the version for optimistic validate-on-
read (the result-page cache compares its stamp against the current version,
the OCC pattern of Laux & Laiho) and the dirty set for incremental partial
re-sorts of the serving order.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.community.config import CommunityConfig
from repro.community.page import PagePool, awareness_gain
from repro.core.kernels import get_backend
from repro.simulation.config import VALID_MODES
from repro.utils.rng import RandomSource, as_rng


class PopularityState:
    """Versioned, incrementally-updated popularity state of one community.

    Attributes:
        pool: the wrapped :class:`~repro.community.PagePool` holding quality,
            awareness counts, creation times and page identifiers.
        mode: ``"fluid"`` (expected-value awareness updates) or
            ``"stochastic"`` (binomial sampling), matching the simulator.
        version: monotone counter, incremented once per mutation batch.
    """

    def __init__(self, pool: PagePool, mode: str = "fluid") -> None:
        if mode not in VALID_MODES:
            raise ValueError("mode must be one of %s, got %r" % (VALID_MODES, mode))
        self.pool = pool
        self.mode = mode
        self.version = 0
        self._popularity = pool.popularity  # materialized; updated in place
        self._dirty_mask = np.zeros(pool.n, dtype=bool)

    @classmethod
    def from_config(
        cls,
        community: CommunityConfig,
        rng: RandomSource = None,
        mode: str = "fluid",
    ) -> "PopularityState":
        """Build a fresh zero-awareness state for ``community``."""
        return cls(PagePool.from_config(community, as_rng(rng)), mode=mode)

    # --- Views -------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of page slots."""
        return self.pool.n

    @property
    def popularity(self) -> np.ndarray:
        """Cached popularity vector ``P = A * Q``; do not mutate."""
        return self._popularity

    @property
    def quality(self) -> np.ndarray:
        """Per-page intrinsic quality."""
        return self.pool.quality

    def staleness(self, version_stamp: int) -> int:
        """How many mutation batches have landed since ``version_stamp``."""
        return self.version - int(version_stamp)

    # --- Mutation ----------------------------------------------------------

    def apply_visits_at(
        self,
        indices: np.ndarray,
        visits: np.ndarray,
        rng: RandomSource = None,
    ) -> None:
        """Apply a sparse batch of monitored visits; O(batch) work.

        ``indices`` may contain duplicates (several feedback events for the
        same page); visit counts are summed per page before the awareness
        update so the batch is equivalent to one day's worth of those visits
        landing together.

        The fluid-mode arithmetic routes through the active kernel
        backend's ``feedback_flush`` (the same kernel the lockstep sweep's
        flush-window advance uses); the stochastic branch keeps the
        per-call binomial draws from the caller's generator.
        """
        indices = np.asarray(indices, dtype=int)
        visits = np.asarray(visits, dtype=float)
        if indices.shape != visits.shape:
            raise ValueError("indices and visits must have the same shape")
        if indices.size == 0:
            return
        touched, inverse = np.unique(indices, return_inverse=True)
        summed = np.zeros(touched.size)
        np.add.at(summed, inverse, visits)

        pool = self.pool
        if self.mode == "fluid":
            get_backend().feedback_flush(
                pool.aware_count,
                self._popularity,
                pool.quality,
                self._dirty_mask,
                touched,
                summed,
                pool.monitored_population,
            )
            self.version += 1
            return
        gained = awareness_gain(
            pool.aware_count[touched],
            pool.monitored_population,
            summed,
            mode=self.mode,
            rng=rng,
        )
        pool.aware_count[touched] = np.minimum(
            pool.monitored_population, pool.aware_count[touched] + gained
        )
        self._mark_changed(touched)

    def commit_visits_at(
        self,
        indices: np.ndarray,
        visits: np.ndarray,
        expected_version: int,
        rng: RandomSource = None,
    ) -> bool:
        """Conflict-checked feedback commit (the OCC write pattern).

        The writer presents the version it read its snapshot at; if the
        state has advanced since (a concurrent writer committed first),
        the commit is rejected *without touching any state* and the caller
        re-reads and retries.  This is the write-side complement of the
        cache's validate-on-read: Laux & Laiho's version-check UPDATE,
        where the WHERE clause matching zero rows signals the conflict.
        """
        if self.version != int(expected_version):
            return False
        self.apply_visits_at(indices, visits, rng=rng)
        return True

    def bump_version(self) -> None:
        """Advance the version without changing page state.

        Models a concurrent writer's committed-elsewhere mutation (used by
        the fault injector to manufacture OCC conflicts, and by journal
        replay to reproduce them): readers and writers holding the old
        version observe a conflict, but popularity itself is untouched.
        """
        self.version += 1

    def apply_visit_feedback(
        self, monitored_visits: np.ndarray, rng: RandomSource = None
    ) -> None:
        """Apply a full per-page visit vector (the day-replay parity path).

        Performs exactly the arithmetic of
        :meth:`Simulator._update_awareness` — same helper, same argument
        order — so a replayed day consumes the random stream identically.
        """
        pool = self.pool
        gained = awareness_gain(
            pool.aware_count,
            pool.monitored_population,
            monitored_visits,
            mode=self.mode,
            rng=rng,
        )
        pool.add_awareness_bulk(gained)
        self._mark_changed(np.flatnonzero(np.asarray(monitored_visits) > 0))

    def note_replaced(self, indices: np.ndarray) -> None:
        """Record that the lifecycle replaced ``indices`` in the wrapped pool."""
        indices = np.asarray(indices, dtype=int)
        if indices.size == 0:
            return
        self._mark_changed(indices)

    def set_awareness(self, aware_count: np.ndarray) -> None:
        """Overwrite the awareness counts wholesale (synthetic warm states).

        Benchmarks use this to jump straight to a steady-state-like awareness
        profile without simulating the warm-up.
        """
        aware_count = np.asarray(aware_count, dtype=float)
        if aware_count.shape != (self.n,):
            raise ValueError("aware_count must have shape (%d,)" % self.n)
        if np.any((aware_count < 0) | (aware_count > self.pool.monitored_population)):
            raise ValueError("aware_count values must lie in [0, m]")
        self.pool.aware_count[:] = aware_count
        self._mark_changed(np.arange(self.n))

    # --- Dirty tracking ----------------------------------------------------

    def consume_dirty(self) -> np.ndarray:
        """Return and clear the indices changed since the last consumption.

        Single-consumer protocol: the serving engine that maintains the
        sorted order calls this when repairing; anything else should rely on
        ``version`` alone.
        """
        dirty = np.flatnonzero(self._dirty_mask)
        self._dirty_mask[:] = False
        return dirty

    def _mark_changed(self, indices: np.ndarray) -> None:
        pool = self.pool
        self._popularity[indices] = (
            pool.aware_count[indices] / pool.monitored_population
        ) * pool.quality[indices]
        self._dirty_mask[indices] = True
        self.version += 1


__all__ = ["PopularityState"]
