"""The online serving engine: lazy top-k ranking over incremental state.

The offline :class:`~repro.simulation.engine.Simulator` produces one full
ranking per simulated day — O(n log n) work per step over the whole
community.  The :class:`ServingEngine` answers individual ``top_k`` queries
instead:

* the deterministic popularity order is *maintained*, not recomputed: after
  a feedback batch touches ``d`` pages, the order is repaired by extracting
  the ``d`` moved pages and merging them back into the still-sorted
  remainder (O(n + d log d) vectorized, versus O(n log n) for a re-sort,
  and only when the state actually changed);
* randomized rank promotion is applied only to the *served prefix*: the
  merge coin of :func:`~repro.core.merge.merge_positions` is flipped for the
  ``k`` visible slots alone, and the promoted entries are drawn directly
  from the promotion pool — equivalent in distribution to shuffling the
  whole pool and merging all ``n`` positions, but O(k + s) instead of O(n).

A query therefore costs O(k + promoted) plus the amortized repair, which is
what lets one engine serve a heavy query stream over a 200k-page community.
The exact full-ranking path of the simulator remains available as
:meth:`rank_all` and is what the parity replay adapter uses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.community.config import CommunityConfig
from repro.community.lifecycle import Lifecycle, PoissonLifecycle
from repro.core.kernels import merge_repair
from repro.core.policy import RECOMMENDED_POLICY, RankPromotionPolicy
from repro.core.rankers import RandomizedPromotionRanker
from repro.core.rankers_context import RankingContext
from repro.robustness.faults import NULL_INJECTOR
from repro.serving.cache import ResultPageCache, page_key
from repro.serving.state import PopularityState
from repro.telemetry.recorder import NULL_RECORDER
from repro.utils.rng import RandomSource, as_rng
from repro.visits.attention import AttentionModel, PowerLawAttention
from repro.visits.surfing import MixedSurfingModel


class ServingEngine:
    """Serves top-k result pages for one community from incremental state.

    Mirrors the :class:`~repro.simulation.engine.Simulator` constructor
    conventions (same defaults, same seed handling, same pool construction
    order) so that an engine and a simulator built from equal seeds start
    from identical state — the basis of the serving/offline parity tests.
    """

    def __init__(
        self,
        community: CommunityConfig,
        policy: RankPromotionPolicy = RECOMMENDED_POLICY,
        *,
        mode: str = "fluid",
        attention: Optional[AttentionModel] = None,
        surfing: Optional[MixedSurfingModel] = None,
        lifecycle: Optional[Lifecycle] = None,
        cache: Optional[ResultPageCache] = None,
        state: Optional[PopularityState] = None,
        name: str = "community",
        seed: RandomSource = None,
        adaptive_rank: bool = False,
    ) -> None:
        self.community = community
        self.policy = policy
        self.ranker = policy.build_ranker()
        self.attention = attention or PowerLawAttention()
        self.surfing = surfing or MixedSurfingModel(surfing_fraction=0.0)
        self.lifecycle = lifecycle or PoissonLifecycle.from_lifetime(
            community.expected_lifetime_days
        )
        self.cache = cache
        self.name = name
        self.rng = as_rng(seed)
        if state is not None and state.n != community.n_pages:
            raise ValueError(
                "state has %d pages but the community expects %d"
                % (state.n, community.n_pages)
            )
        self.state = (
            state
            if state is not None
            else PopularityState.from_config(community, self.rng, mode=mode)
        )
        self.day = 0
        self.adaptive_rank = bool(adaptive_rank)
        self.full_sorts = 0
        self.repairs = 0
        self.telemetry = NULL_RECORDER
        self.faults = NULL_INJECTOR
        self._policy_tag = policy.describe()
        # Maintained descending-popularity order.  Ties are broken by a
        # random per-page key drawn once per engine (refreshed on full
        # re-sorts): a fixed index order would pin the huge zero-popularity
        # tie group and starve most cold pages of traffic forever, while
        # per-call re-randomization (what the exact ranker does) cannot be
        # maintained incrementally.  Pages moved by a repair re-enter at the
        # back of their new tie group.
        self._order: Optional[np.ndarray] = None
        self._tie_key: Optional[np.ndarray] = None
        self._order_version = -1
        self._dirty_scratch: Optional[np.ndarray] = None  # reusable repair mask
        # The selective rule's pool (zero-awareness pages) is maintained
        # incrementally; other rules compute their pool per query.
        self._selective = policy.rule == "selective" and not policy.is_deterministic
        self._promoted_mask: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ API

    def serve(self, k: int, rng: RandomSource = None) -> np.ndarray:
        """Answer one query: the top-``k`` result page, through the cache.

        With a cache attached the page is validated against the current
        state version (OCC read pattern); without one this is ``top_k``.
        Cached pages repeat the same randomized promotions until they go
        stale — bounded-staleness exploration is the price of the hit rate.
        """
        if k < 1:
            # Same validation as top_k, applied before the cache key is
            # built: a bad k must never produce a lookup/miss accounting
            # entry for a page that can never be stored.
            raise ValueError("k must be >= 1, got %d" % k)
        if self.faults.enabled:
            self.faults.before_engine_serve(self)
        if self.cache is None:
            return self.top_k(k, rng)
        key = page_key(self.name, min(int(k), self.state.n), self._policy_tag)
        page = self.cache.lookup(key, self.state.version)
        if page is not None:
            return page
        page = self.top_k(k, rng)
        self.cache.store(key, page, self._order_version)
        return page

    def top_k(self, k: int, rng: RandomSource = None) -> np.ndarray:
        """Compute a fresh top-``k`` result page (no cache involved)."""
        if k < 1:
            raise ValueError("k must be >= 1, got %d" % k)
        n = self.state.n
        k = min(int(k), n)
        generator = as_rng(rng) if rng is not None else self.rng
        self._refresh_order()
        if self.policy.is_deterministic:
            return self._order[:k].copy()
        mask = self._promotion_pool_mask(generator)
        pool_count = int(mask.sum())
        return self._merge_prefix(k, mask, pool_count, generator)

    def apply_feedback(
        self,
        indices: np.ndarray,
        visits: Optional[np.ndarray] = None,
        rng: RandomSource = None,
    ) -> None:
        """Stream a batch of monitored visit feedback into the state."""
        indices = np.atleast_1d(np.asarray(indices, dtype=int))
        if visits is None:
            visits = np.ones(indices.size)
        self.state.apply_visits_at(
            indices, visits, rng=rng if rng is not None else self.rng
        )

    def advance_day(self) -> np.ndarray:
        """Run one lifecycle step (page retirement/replacement); returns slots."""
        replaced = self.lifecycle.step(
            self.state.pool, now=float(self.day), rng=self.rng
        )
        self.state.note_replaced(replaced)
        self.day += 1
        return replaced

    def rank_all(self, rng: RandomSource = None) -> np.ndarray:
        """Full ranking through the exact simulator ranker (parity path)."""
        context = RankingContext.from_pool(self.state.pool, now=float(self.day))
        return self.ranker.rank(context, rng if rng is not None else self.rng)

    # --------------------------------------------------- order maintenance

    def _refresh_order(self) -> None:
        state = self.state
        if self._order is None:
            pop = state.popularity
            self._tie_key = self.rng.random(state.n)
            self._order = np.lexsort((self._tie_key, -pop))
            if self._selective:
                self._promoted_mask = state.pool.aware_count < 1.0 - 1e-9
            state.consume_dirty()
            self._order_version = state.version
            self.full_sorts += 1
            if self.telemetry.enabled:
                self.telemetry.record_full_sort()
            return
        if self._order_version == state.version:
            return
        dirty = state.consume_dirty()
        self._repair_order(dirty)
        self._order_version = state.version

    def _repair_order(self, dirty: np.ndarray) -> None:
        state = self.state
        n = state.n
        pop = state.popularity
        if self._selective and dirty.size:
            self._promoted_mask[dirty] = (
                state.pool.aware_count[dirty] < 1.0 - 1e-9
            )
        if dirty.size == 0:
            return
        if dirty.size >= n // 2:
            # Most of the community moved; a fresh sort is cheaper than a
            # merge.  With adaptive_rank the re-sort routes through the
            # kernel layer's rank_day router with yesterday's order as
            # the hint — same tie-key draw from the same generator, and
            # the route decision layer (copy / run-merge / windowed /
            # full) picks the cheapest exact path.  Bit-identical to the
            # lexsort by the PR 5 parity contract.
            if self.adaptive_rank:
                from repro.core.batch_rank import batched_deterministic_order

                tie_keys = np.empty((1, n), dtype=float)
                order = batched_deterministic_order(
                    pop[None, :], None, "random", [self.rng],
                    out_tie_keys=tie_keys,
                    prev_perm=self._order[None, :],
                )
                self._tie_key = tie_keys[0].copy()
                self._order = order[0].copy()
            else:
                self._tie_key = self.rng.random(n)
                self._order = np.lexsort((self._tie_key, -pop))
            self.full_sorts += 1
            if self.telemetry.enabled:
                self.telemetry.record_full_sort()
            return
        # The exact O(n + d log d) merge repair is shared with the grouped
        # lane_repair kernel (one implementation for both paths).
        self._order, self._dirty_scratch = merge_repair(
            self._order, pop, dirty, self._dirty_scratch
        )
        self.repairs += 1
        if self.telemetry.enabled:
            self.telemetry.record_repair()

    # ------------------------------------------------------ prefix serving

    def _promotion_pool_mask(self, generator: np.random.Generator) -> np.ndarray:
        if self._selective:
            return self._promoted_mask
        state = self.state
        rule = self.ranker.promotion_rule
        context = RankingContext(
            popularity=state.popularity,
            awareness=state.pool.awareness,
            quality=state.pool.quality,
            ages=state.pool.ages(float(self.day)),
            monitored_population=state.pool.monitored_population,
        )
        return np.asarray(rule.select(context, generator), dtype=bool)

    def _merge_prefix(
        self,
        k: int,
        mask: np.ndarray,
        pool_count: int,
        generator: np.random.Generator,
    ) -> np.ndarray:
        """First ``k`` slots of the randomized merge, without building it all.

        Coin flips are drawn for the unprotected visible slots only, and the
        promoted entries are a uniform random ordered sample of the pool —
        the marginal distribution of the first slots of the full shuffle-
        and-merge.  Drain semantics match the full merge: whichever list
        runs out first cedes its remaining slots to the other.
        """
        n = self.state.n
        protected = min(self.policy.k - 1, k)
        open_slots = k - protected
        flips = (
            generator.random(open_slots) < self.policy.r
            if open_slots > 0
            else np.zeros(0, dtype=bool)
        )
        s = min(int(flips.sum()), pool_count)
        n_unpromoted = n - pool_count
        if k - s > n_unpromoted:
            # Deterministic list drains within the page; tail comes from the pool.
            s = min(k - n_unpromoted, pool_count)

        slots = np.zeros(k, dtype=bool)
        flip_true = np.flatnonzero(flips) + protected
        if s < flip_true.size:
            flip_true = flip_true[:s]  # promotion pool drained
        slots[flip_true] = True
        short = s - flip_true.size
        if short > 0:  # deterministic list drained: fill trailing slots
            tail_false = np.flatnonzero(~slots)[-short:]
            slots[tail_false] = True

        deterministic = self._unpromoted_prefix(k - s, mask)
        promoted = self._sample_pool(generator, mask, pool_count, s)
        page = np.empty(k, dtype=int)
        page[slots] = promoted
        page[~slots] = deterministic
        return page

    def _unpromoted_prefix(self, need: int, mask: np.ndarray) -> np.ndarray:
        """First ``need`` pages of the maintained order not in the pool."""
        if need <= 0:
            return np.zeros(0, dtype=int)
        n = self.state.n
        parts, got, start, chunk = [], 0, 0, max(4 * need, 64)
        while got < need and start < n:
            segment = self._order[start : start + chunk]
            segment = segment[~mask[segment]]
            if not parts and segment.size >= need:
                return segment[:need]  # common case: one chunk suffices
            parts.append(segment)
            got += segment.size
            start += chunk
            chunk *= 2
        return np.concatenate(parts)[:need]

    def _sample_pool(
        self,
        generator: np.random.Generator,
        mask: np.ndarray,
        pool_count: int,
        s: int,
    ) -> np.ndarray:
        """Uniform ordered sample of ``s`` distinct pool members."""
        if s <= 0:
            return np.zeros(0, dtype=int)
        n = mask.size
        if pool_count < max(1024, 4 * s) or 4 * pool_count < n:
            members = np.flatnonzero(mask)
            return members[generator.choice(members.size, size=s, replace=False)]
        # Dense pool: rejection sampling avoids materializing the member list.
        chosen: list = []
        seen = set()
        while len(chosen) < s:
            batch = generator.integers(0, n, size=max(16, 4 * (s - len(chosen))))
            for candidate in batch:
                candidate = int(candidate)
                if mask[candidate] and candidate not in seen:
                    seen.add(candidate)
                    chosen.append(candidate)
                    if len(chosen) == s:
                        break
        return np.asarray(chosen, dtype=int)


__all__ = ["ServingEngine"]
