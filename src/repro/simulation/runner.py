"""High-level helpers that wrap the simulator for common measurements.

The experiment drivers and benchmarks use these functions instead of wiring
up a :class:`~repro.simulation.engine.Simulator` by hand, so the warm-up,
probe-injection and averaging conventions stay identical across figures.

All helpers run their repetitions through the vectorized
:class:`~repro.simulation.batch.BatchSimulator` by default (``engine=
"batch"``), which advances every replicate in lockstep as one ``(R, n)``
array program.  Because the batch engine feeds each replicate from the same
``spawn_rngs`` stream the sequential loop would use, switching engines never
changes the numbers: per-replicate results are bit-identical between
``engine="batch"`` and ``engine="sequential"`` at equal seeds.

``n_workers`` flows through to :func:`~repro.simulation.batch.run_batch`
unchanged; its default (``None``) auto-sizes a process pool from
``os.cpu_count()`` when the replicate batch is large enough to amortize the
pool, so the figure drivers' policy sweeps shard across spare cores without
any caller opt-in — and, replicates being stream-pinned, without changing a
single number.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.community.config import CommunityConfig
from repro.core.policy import RankPromotionPolicy
from repro.simulation.batch import run_batch
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator
from repro.simulation.result import SimulationResult
from repro.utils.rng import RandomSource, spawn_rngs
from repro.visits.attention import AttentionModel
from repro.visits.surfing import MixedSurfingModel

VALID_ENGINES = ("batch", "sequential")


def _run_once(
    community: CommunityConfig,
    policy: RankPromotionPolicy,
    config: SimulationConfig,
    attention: Optional[AttentionModel] = None,
    surfing: Optional[MixedSurfingModel] = None,
    rng: RandomSource = None,
) -> SimulationResult:
    simulator = Simulator(
        community=community,
        ranker=policy.build_ranker(),
        config=config.with_seed(rng),
        attention=attention,
        surfing=surfing,
    )
    return simulator.run()


def _run_replicates(
    community: CommunityConfig,
    policy: RankPromotionPolicy,
    config: SimulationConfig,
    attention: Optional[AttentionModel] = None,
    surfing: Optional[MixedSurfingModel] = None,
    repetitions: int = 1,
    seed: RandomSource = None,
    engine: str = "batch",
    n_workers: Optional[int] = None,
    adaptive_rank: bool = False,
    telemetry=None,
) -> List[SimulationResult]:
    """Run all repetitions of one configuration; one result per replicate.

    ``spawn_rngs`` hands replicate ``r`` the same generator regardless of
    the engine, so the two paths agree replicate-for-replicate.
    ``adaptive_rank`` (batch engine only) threads each day's deterministic
    order into the next day's ranking as a near-sorted merge hint; results
    are bit-identical with it on or off.
    """
    if engine not in VALID_ENGINES:
        raise ValueError("engine must be one of %s, got %r" % (VALID_ENGINES, engine))
    rngs = spawn_rngs(seed, repetitions)
    if engine == "sequential":
        return [
            _run_once(community, policy, config, attention, surfing, rng)
            for rng in rngs
        ]
    return run_batch(
        community,
        policy.build_ranker(),
        config,
        attention=attention,
        surfing=surfing,
        rngs=rngs,
        n_workers=n_workers,
        adaptive_rank=adaptive_rank,
        telemetry=telemetry,
    )


def measure_qpc(
    community: CommunityConfig,
    policy: RankPromotionPolicy,
    config: Optional[SimulationConfig] = None,
    attention: Optional[AttentionModel] = None,
    surfing: Optional[MixedSurfingModel] = None,
    repetitions: int = 1,
    seed: RandomSource = None,
    engine: str = "batch",
    n_workers: Optional[int] = None,
) -> Dict[str, float]:
    """Measure absolute and normalized QPC for one policy, averaged over runs."""
    config = config or SimulationConfig()
    results = _run_replicates(
        community, policy, config, attention, surfing,
        repetitions, seed, engine, n_workers,
    )
    absolute = [result.qpc_absolute for result in results]
    normalized = [result.qpc_normalized for result in results]
    return {
        "qpc_absolute": float(np.mean(absolute)),
        "qpc_normalized": float(np.mean(normalized)),
        "qpc_absolute_std": float(np.std(absolute)),
        "qpc_normalized_std": float(np.std(normalized)),
        "repetitions": float(repetitions),
    }


def measure_tbp(
    community: CommunityConfig,
    policy: RankPromotionPolicy,
    probe_quality: float = 0.4,
    config: Optional[SimulationConfig] = None,
    repetitions: int = 1,
    seed: RandomSource = None,
    engine: str = "batch",
    n_workers: Optional[int] = None,
) -> Dict[str, float]:
    """Measure the time for a fresh probe page to become popular.

    Probes that never reach 99% of their quality within the recorded horizon
    are counted at the horizon (a conservative lower bound), and the fraction
    of such censored runs is reported separately.
    """
    config = config or SimulationConfig()
    config = SimulationConfig(
        warmup_days=config.warmup_days,
        measure_days=config.measure_days,
        mode=config.mode,
        seed=config.seed,
        probe_quality=probe_quality,
        probe_horizon_days=config.probe_horizon_days,
        snapshot_awareness=False,
    )
    results = _run_replicates(
        community, policy, config,
        repetitions=repetitions, seed=seed, engine=engine, n_workers=n_workers,
    )
    values, censored = [], 0
    for result in results:
        if result.tbp_days is None:
            censored += 1
            values.append(float(config.probe_horizon_days))
        else:
            values.append(result.tbp_days)
    return {
        "tbp_days": float(np.mean(values)),
        "tbp_days_std": float(np.std(values)),
        "censored_fraction": censored / float(repetitions),
        "repetitions": float(repetitions),
    }


def popularity_trajectory(
    community: CommunityConfig,
    policy: RankPromotionPolicy,
    probe_quality: float = 0.4,
    horizon_days: int = 500,
    config: Optional[SimulationConfig] = None,
    repetitions: int = 1,
    seed: RandomSource = None,
    engine: str = "batch",
    n_workers: Optional[int] = None,
) -> np.ndarray:
    """Average popularity trajectory of a fresh probe page (Figure 4a style).

    Trajectories shorter than the horizon (probe retired early) are padded
    with their last value before averaging.
    """
    base = config or SimulationConfig()
    config = SimulationConfig(
        warmup_days=base.warmup_days,
        measure_days=base.measure_days,
        mode=base.mode,
        probe_quality=probe_quality,
        probe_horizon_days=horizon_days,
        snapshot_awareness=False,
    )
    results = _run_replicates(
        community, policy, config,
        repetitions=repetitions, seed=seed, engine=engine, n_workers=n_workers,
    )
    trajectories = []
    for result in results:
        trajectory = result.probe_trajectory
        if trajectory is None or trajectory.size == 0:
            trajectory = np.zeros(horizon_days)
        if trajectory.size < horizon_days:
            pad_value = trajectory[-1] if trajectory.size else 0.0
            trajectory = np.concatenate(
                [trajectory, np.full(horizon_days - trajectory.size, pad_value)]
            )
        trajectories.append(trajectory[:horizon_days])
    return np.mean(np.asarray(trajectories), axis=0)


def compare_policies(
    community: CommunityConfig,
    policies: Dict[str, RankPromotionPolicy],
    config: Optional[SimulationConfig] = None,
    attention: Optional[AttentionModel] = None,
    surfing: Optional[MixedSurfingModel] = None,
    repetitions: int = 1,
    seed: RandomSource = None,
    engine: str = "batch",
    n_workers: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Measure QPC for several policies on the same community settings."""
    results = {}
    for name, policy in policies.items():
        results[name] = measure_qpc(
            community,
            policy,
            config=config,
            attention=attention,
            surfing=surfing,
            repetitions=repetitions,
            seed=seed,
            engine=engine,
            n_workers=n_workers,
        )
    return results


__all__ = [
    "measure_qpc",
    "measure_tbp",
    "popularity_trajectory",
    "compare_policies",
    "VALID_ENGINES",
]
