"""High-level helpers that wrap the simulator for common measurements.

The experiment drivers and benchmarks use these functions instead of wiring
up a :class:`~repro.simulation.engine.Simulator` by hand, so the warm-up,
probe-injection and averaging conventions stay identical across figures.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.community.config import CommunityConfig
from repro.core.policy import RankPromotionPolicy
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator
from repro.simulation.result import SimulationResult
from repro.utils.rng import RandomSource, spawn_rngs
from repro.visits.attention import AttentionModel
from repro.visits.surfing import MixedSurfingModel


def _run_once(
    community: CommunityConfig,
    policy: RankPromotionPolicy,
    config: SimulationConfig,
    attention: Optional[AttentionModel] = None,
    surfing: Optional[MixedSurfingModel] = None,
    rng: RandomSource = None,
) -> SimulationResult:
    simulator = Simulator(
        community=community,
        ranker=policy.build_ranker(),
        config=config.with_seed(rng),
        attention=attention,
        surfing=surfing,
    )
    return simulator.run()


def measure_qpc(
    community: CommunityConfig,
    policy: RankPromotionPolicy,
    config: Optional[SimulationConfig] = None,
    attention: Optional[AttentionModel] = None,
    surfing: Optional[MixedSurfingModel] = None,
    repetitions: int = 1,
    seed: RandomSource = None,
) -> Dict[str, float]:
    """Measure absolute and normalized QPC for one policy, averaged over runs."""
    config = config or SimulationConfig()
    rngs = spawn_rngs(seed, repetitions)
    absolute, normalized = [], []
    for rng in rngs:
        result = _run_once(community, policy, config, attention, surfing, rng)
        absolute.append(result.qpc_absolute)
        normalized.append(result.qpc_normalized)
    return {
        "qpc_absolute": float(np.mean(absolute)),
        "qpc_normalized": float(np.mean(normalized)),
        "qpc_absolute_std": float(np.std(absolute)),
        "qpc_normalized_std": float(np.std(normalized)),
        "repetitions": float(repetitions),
    }


def measure_tbp(
    community: CommunityConfig,
    policy: RankPromotionPolicy,
    probe_quality: float = 0.4,
    config: Optional[SimulationConfig] = None,
    repetitions: int = 1,
    seed: RandomSource = None,
) -> Dict[str, float]:
    """Measure the time for a fresh probe page to become popular.

    Probes that never reach 99% of their quality within the recorded horizon
    are counted at the horizon (a conservative lower bound), and the fraction
    of such censored runs is reported separately.
    """
    config = config or SimulationConfig()
    config = SimulationConfig(
        warmup_days=config.warmup_days,
        measure_days=config.measure_days,
        mode=config.mode,
        seed=config.seed,
        probe_quality=probe_quality,
        probe_horizon_days=config.probe_horizon_days,
        snapshot_awareness=False,
    )
    rngs = spawn_rngs(seed, repetitions)
    values, censored = [], 0
    for rng in rngs:
        result = _run_once(community, policy, config, rng=rng)
        if result.tbp_days is None:
            censored += 1
            values.append(float(config.probe_horizon_days))
        else:
            values.append(result.tbp_days)
    return {
        "tbp_days": float(np.mean(values)),
        "tbp_days_std": float(np.std(values)),
        "censored_fraction": censored / float(repetitions),
        "repetitions": float(repetitions),
    }


def popularity_trajectory(
    community: CommunityConfig,
    policy: RankPromotionPolicy,
    probe_quality: float = 0.4,
    horizon_days: int = 500,
    config: Optional[SimulationConfig] = None,
    repetitions: int = 1,
    seed: RandomSource = None,
) -> np.ndarray:
    """Average popularity trajectory of a fresh probe page (Figure 4a style).

    Trajectories shorter than the horizon (probe retired early) are padded
    with their last value before averaging.
    """
    base = config or SimulationConfig()
    config = SimulationConfig(
        warmup_days=base.warmup_days,
        measure_days=base.measure_days,
        mode=base.mode,
        probe_quality=probe_quality,
        probe_horizon_days=horizon_days,
        snapshot_awareness=False,
    )
    rngs = spawn_rngs(seed, repetitions)
    trajectories = []
    for rng in rngs:
        result = _run_once(community, policy, config, rng=rng)
        trajectory = result.probe_trajectory
        if trajectory is None or trajectory.size == 0:
            trajectory = np.zeros(horizon_days)
        if trajectory.size < horizon_days:
            pad_value = trajectory[-1] if trajectory.size else 0.0
            trajectory = np.concatenate(
                [trajectory, np.full(horizon_days - trajectory.size, pad_value)]
            )
        trajectories.append(trajectory[:horizon_days])
    return np.mean(np.asarray(trajectories), axis=0)


def compare_policies(
    community: CommunityConfig,
    policies: Dict[str, RankPromotionPolicy],
    config: Optional[SimulationConfig] = None,
    attention: Optional[AttentionModel] = None,
    surfing: Optional[MixedSurfingModel] = None,
    repetitions: int = 1,
    seed: RandomSource = None,
) -> Dict[str, Dict[str, float]]:
    """Measure QPC for several policies on the same community settings."""
    results = {}
    for name, policy in policies.items():
        results[name] = measure_qpc(
            community,
            policy,
            config=config,
            attention=attention,
            surfing=surfing,
            repetitions=repetitions,
            seed=seed,
        )
    return results


__all__ = [
    "measure_qpc",
    "measure_tbp",
    "popularity_trajectory",
    "compare_policies",
]
