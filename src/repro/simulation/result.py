"""Simulation result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.metrics.qpc import ideal_qpc


@dataclass
class SimulationResult:
    """Everything a simulation run measured.

    Attributes:
        qpc_absolute: amortized quality-per-click over the measurement window.
        qpc_normalized: the same, divided by the quality-ordered ideal for
            this community's quality pool and attention law.
        quality: the stationary quality pool of the simulated community.
        final_awareness: awareness vector at the end of the run (or ``None``
            when snapshots were disabled).
        probe_trajectory: popularity trajectory of the injected probe page,
            sampled once per day from its creation (or ``None``).
        probe_quality: quality of the probe page.
        tbp_days: time for the probe to exceed 99% of its quality, or
            ``None`` if it never did within the recorded horizon.
        days_simulated: total days stepped (warm-up + measurement).
        extra: free-form per-experiment annotations.
    """

    qpc_absolute: float
    qpc_normalized: float
    quality: np.ndarray
    final_awareness: Optional[np.ndarray] = None
    probe_trajectory: Optional[np.ndarray] = None
    probe_quality: Optional[float] = None
    tbp_days: Optional[float] = None
    days_simulated: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human-readable summary."""
        parts = [
            "QPC=%.4f (normalized %.4f)" % (self.qpc_absolute, self.qpc_normalized),
        ]
        if self.tbp_days is not None:
            parts.append("TBP=%.1f days" % self.tbp_days)
        elif self.probe_quality is not None:
            parts.append("TBP=not reached")
        parts.append("days=%d" % self.days_simulated)
        return ", ".join(parts)

    @staticmethod
    def normalize(qpc_absolute: float, quality: np.ndarray, attention=None) -> float:
        """Normalize an absolute QPC by the ideal for ``quality``."""
        ideal = ideal_qpc(quality, attention)
        return qpc_absolute / ideal if ideal > 0 else 0.0


__all__ = ["SimulationResult"]
