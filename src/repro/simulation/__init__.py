"""Discrete-time simulator of Web page popularity evolution.

The simulator mirrors the paper's Section 6.2 description: it maintains an
evolving ranked list of pages, distributes user visits to pages according to
the rank-to-visit power law (Equation 4), tracks awareness and popularity of
individual pages as they evolve over time, and creates and retires pages as
dictated by the community's lifecycle process.  Measurements are taken after
a warm-up period long enough to reach steady-state behaviour.

Two update modes are supported:

* ``stochastic`` — monitored-user visits are sampled (multinomial over rank
  shares, binomial awareness updates), matching the paper's simulator;
* ``fluid`` — awareness is updated in expectation, which removes sampling
  noise and lets the large robustness sweeps run quickly.
"""

from repro.simulation.batch import BatchSimulator, run_batch
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator
from repro.simulation.observers import (
    AwarenessSnapshotObserver,
    Observer,
    QPCObserver,
    TrackedPageObserver,
)
from repro.simulation.replay import TraceReplayResult, replay_day, replay_trace
from repro.simulation.result import SimulationResult
from repro.simulation.runner import (
    compare_policies,
    measure_qpc,
    measure_tbp,
    popularity_trajectory,
)

__all__ = [
    "SimulationConfig",
    "Simulator",
    "BatchSimulator",
    "run_batch",
    "SimulationResult",
    "Observer",
    "QPCObserver",
    "TrackedPageObserver",
    "AwarenessSnapshotObserver",
    "measure_qpc",
    "measure_tbp",
    "popularity_trajectory",
    "compare_policies",
    "replay_day",
    "replay_trace",
    "TraceReplayResult",
]
