"""The vectorized batch simulation engine: R replicates as one array program.

Every figure in the paper averages the day-stepped simulation over many
replicate runs.  The replicates are statistically independent and share the
same shape, so instead of looping a Python-level
:class:`~repro.simulation.engine.Simulator` per replicate, the
:class:`BatchSimulator` holds all pool state as ``(R, n)`` arrays and steps
every replicate per day with batched operations: one batched argsort for the
ranking (plus exact tie repair), one scatter for the visit shares, one
vectorized awareness update and one batched lifecycle pass.

Parity contract: replicate ``r`` consumes its own generator (the same
``spawn_rngs`` stream the sequential runner would hand to repetition ``r``)
in exactly the sequential order, so in fluid mode the per-replicate results
are **bit-identical** to running ``R`` sequential simulators — and in
stochastic mode as well, since the multinomial/binomial draws are taken from
the same streams over the same index sets.  ``tests/test_batch.py`` pins
this down.

For large ``R`` the independent replicate blocks can be sharded across a
``ProcessPoolExecutor`` (:func:`run_batch`), each worker advancing its block
with the original generators so results stay identical to the in-process
run regardless of the worker count.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import Deque, List, Optional, Sequence

import numpy as np

from repro.community.config import CommunityConfig
from repro.community.lifecycle import Lifecycle, PoissonLifecycle
from repro.community.page import BatchPagePool
from repro.core.kernels import get_backend
from repro.core.rankers import Ranker
from repro.core.kernels import ROUTE_STATS
from repro.core.rankers_context import BatchRankingContext
from repro.metrics.qpc import QPCAccumulator
from repro.metrics.tbp import tbp_from_trajectory
from repro.simulation.config import SimulationConfig
from repro.simulation.result import SimulationResult
from repro.telemetry.recorder import NULL_RECORDER
from repro.utils.parallel import default_workers
from repro.utils.rng import RandomSource, spawn_rngs
from repro.visits.attention import AttentionModel, PowerLawAttention
from repro.visits.surfing import MixedSurfingModel


class BatchSimulator:
    """Simulates ``R`` independent replicate communities in lockstep.

    Mirrors the :class:`~repro.simulation.engine.Simulator` day loop, with
    every per-page vector widened to an ``(R, n)`` matrix.  Custom rankers,
    promotion rules and lifecycles that only implement the sequential
    interface are supported through the per-row fallback entry points
    (``rank_batch`` / ``select_batch`` / ``step_batch`` defaults).

    Args:
        community: community configuration shared by all replicates.
        ranker: ranking method shared by all replicates (stateless).
        config: simulation window/mode settings.
        attention, surfing, lifecycle: as for the sequential simulator.
        replicates: number of replicate rows; ignored when ``rngs`` is given.
        rngs: per-replicate generators.  Pass the ``spawn_rngs`` family the
            sequential runner would use to obtain replicate-for-replicate
            parity; by default the family is spawned from ``config.seed``.
        history_length: recent popularity snapshots kept for history-aware
            rankers (the fallback path slices them per row).
        adaptive_rank: thread each day's deterministic order into the next
            day's ranking as a near-sorted hint, letting the kernel layer
            merge surviving sorted runs instead of re-sorting from scratch
            (``rank_day``'s ``prev_perm`` argument).  Results are
            bit-identical either way — the kernel falls back to the full
            sort whenever the day is not actually near-sorted.
    """

    def __init__(
        self,
        community: CommunityConfig,
        ranker: Ranker,
        config: Optional[SimulationConfig] = None,
        attention: Optional[AttentionModel] = None,
        surfing: Optional[MixedSurfingModel] = None,
        lifecycle: Optional[Lifecycle] = None,
        replicates: int = 1,
        rngs: Optional[Sequence[np.random.Generator]] = None,
        history_length: int = 0,
        adaptive_rank: bool = False,
    ) -> None:
        self.community = community
        self.ranker = ranker
        self.config = config or SimulationConfig()
        self.attention = attention or PowerLawAttention()
        self.surfing = surfing or MixedSurfingModel(surfing_fraction=0.0)
        self.lifecycle = lifecycle or PoissonLifecycle.from_lifetime(
            community.expected_lifetime_days
        )
        if history_length < 0:
            raise ValueError("history_length must be non-negative")
        self.history_length = int(history_length)

        if rngs is None:
            rngs = spawn_rngs(self.config.seed, replicates)
        self.rngs: List[np.random.Generator] = list(rngs)
        if not self.rngs:
            raise ValueError("BatchSimulator needs at least one replicate")

        self.pool = BatchPagePool.from_config(community, self.rngs)
        self.day = 0
        self._history: Deque[np.ndarray] = deque(maxlen=self.history_length or None)
        self._shares = np.empty((self.replicates, self.pool.n), dtype=float)
        self.adaptive_rank = bool(adaptive_rank)
        self._prev_order: Optional[np.ndarray] = None
        self.telemetry = NULL_RECORDER

    @property
    def replicates(self) -> int:
        """Number of replicate communities ``R``."""
        return len(self.rngs)

    # ------------------------------------------------------------------ API

    def step(self, compute_all_visits: bool = True) -> Optional[np.ndarray]:
        """Advance every replicate by one day.

        The ranking routes through the active kernel backend (via the
        ranker's ``rank_batch``), and the whole post-ranking tail —
        attention-share scatter, optional surfing blend, monitored-visit
        allocation, awareness update — is one ``day_tail`` kernel call, so
        a fusing backend runs it as a single loop nest.

        Returns the ``(R, n)`` all-user visit matrix, or ``None`` when
        ``compute_all_visits`` is off (warm-up days, where nothing observes
        the visits and the extra elementwise pass would be wasted).
        """
        telemetry = self.telemetry
        if telemetry.enabled:
            day = self.day
            started = time.perf_counter()
            routes = ROUTE_STATS.as_dict() if self.adaptive_rank else None
            try:
                return self._step(compute_all_visits)
            finally:
                telemetry.record_day_step(day, time.perf_counter() - started)
                if routes is not None:
                    after = ROUTE_STATS.as_dict()
                    telemetry.record_rank_routes(
                        after["rank_route_full"] - routes["rank_route_full"],
                        after["rank_route_run_merge"]
                        - routes["rank_route_run_merge"],
                        after["rank_route_windowed"]
                        - routes["rank_route_windowed"],
                        after["rank_route_copy"] - routes["rank_route_copy"],
                        after["rank_displacement_sum"]
                        - routes["rank_displacement_sum"],
                    )
        return self._step(compute_all_visits)

    def _step(self, compute_all_visits: bool) -> Optional[np.ndarray]:
        pool = self.pool
        config = self.config
        context = BatchRankingContext.from_batch_pool(
            pool,
            now=float(self.day),
            popularity_history=self._history_array(),
            prev_order=self._prev_order if self.adaptive_rank else None,
        )
        rankings = self.ranker.rank_batch(context, self.rngs)
        if self.adaptive_rank:
            # Built-in rankers record the deterministic order they computed;
            # it becomes tomorrow's near-sorted hint.  Custom rankers that
            # never set it simply keep the full-sort path.
            self._prev_order = context.deterministic_order

        surfing_fraction = 0.0
        surf_shares = None
        if self.surfing is not None and not self.surfing.is_pure_search:
            surfing_fraction = self.surfing.surfing_fraction
            surf_shares = self.surfing.surfing_shares_batch(context.popularity)
        shares = get_backend().day_tail(
            rankings,
            self.attention.visit_shares(pool.n),
            self.community.monitored_visit_rate,
            config.mode,
            self.rngs,
            pool.aware_count,
            pool.monitored_population,
            surfing_fraction=surfing_fraction,
            surf_shares=surf_shares,
            out_shares=self._shares,
        )
        self.lifecycle.step_batch(pool, now=float(self.day), rngs=self.rngs)
        if self.history_length > 0:
            self._history.append(pool.popularity.copy())
        self.day += 1
        if compute_all_visits:
            return shares * self.community.total_visit_rate
        return None

    def run(self) -> List[SimulationResult]:
        """Run warm-up plus measurement; return one result per replicate."""
        config = self.config
        pool = self.pool
        R = self.replicates
        rows = np.arange(R)

        for _ in range(config.warmup_days):
            self.step(compute_all_visits=False)

        probe_slots = probe_ids = None
        probe_alive = None
        probe_popularity: List[np.ndarray] = []
        if config.probe_quality is not None:
            probe_slots, probe_ids = self._inject_probe(config.probe_quality)
            probe_alive = np.ones(R, dtype=bool)
            probe_days = np.zeros(R, dtype=int)

        measure_days = config.measure_days
        if config.probe_quality is not None:
            measure_days = max(measure_days, config.probe_horizon_days)

        accumulators = [QPCAccumulator() for _ in range(R)]
        quality = pool.quality
        for _ in range(measure_days):
            visits_all = self.step()
            for row in range(R):
                accumulators[row].update(visits_all[row], quality[row])
            if probe_slots is not None:
                probe_alive &= pool.page_ids[rows, probe_slots] == probe_ids
                probe_days += probe_alive
                popularity_col = (
                    pool.aware_count[rows, probe_slots]
                    / pool.monitored_population
                    * quality[rows, probe_slots]
                )
                probe_popularity.append(popularity_col)

        final_awareness = (
            pool.awareness if config.snapshot_awareness else None
        )
        probe_matrix = (
            np.asarray(probe_popularity) if probe_popularity else None
        )

        results: List[SimulationResult] = []
        for row in range(R):
            qpc_absolute = accumulators[row].value
            trajectory = None
            tbp = None
            if probe_slots is not None:
                length = int(probe_days[row])
                trajectory = (
                    probe_matrix[:length, row].copy()
                    if probe_matrix is not None
                    else np.zeros(0)
                )
                if trajectory.size:
                    tbp = tbp_from_trajectory(
                        trajectory, config.probe_quality, dt=1.0
                    )
            results.append(
                SimulationResult(
                    qpc_absolute=qpc_absolute,
                    qpc_normalized=SimulationResult.normalize(
                        qpc_absolute, quality[row], self.attention
                    ),
                    quality=quality[row].copy(),
                    final_awareness=(
                        final_awareness[row].copy()
                        if final_awareness is not None
                        else None
                    ),
                    probe_trajectory=trajectory,
                    probe_quality=config.probe_quality,
                    tbp_days=tbp,
                    days_simulated=self.day,
                )
            )
        return results

    # ------------------------------------------------------------ internals

    def _history_array(self) -> Optional[np.ndarray]:
        if self.history_length <= 0 or len(self._history) < 2:
            return None
        return np.asarray(list(self._history))

    def _inject_probe(self, quality: float):
        """Replace one slot per replicate with a probe page of ``quality``.

        Row-for-row identical to ``Simulator._inject_probe``: the slot whose
        quality is closest to the probe quality is recycled in place.
        """
        pool = self.pool
        slots = np.argmin(np.abs(pool.quality - quality), axis=1)
        for row, slot in enumerate(slots):
            pool.quality[row, slot] = float(quality)
            pool.replace_row_pages(row, np.array([slot]), now=float(self.day))
        page_ids = pool.page_ids[np.arange(self.replicates), slots].copy()
        return slots, page_ids


def _run_batch_block(
    community: CommunityConfig,
    ranker: Ranker,
    config: SimulationConfig,
    attention: Optional[AttentionModel],
    surfing: Optional[MixedSurfingModel],
    lifecycle: Optional[Lifecycle],
    rngs: Sequence[np.random.Generator],
    history_length: int,
    adaptive_rank: bool = False,
    telemetry=None,
) -> List[SimulationResult]:
    """Worker entry point: advance one replicate block to completion."""
    simulator = BatchSimulator(
        community,
        ranker,
        config,
        attention=attention,
        surfing=surfing,
        lifecycle=lifecycle,
        rngs=rngs,
        history_length=history_length,
        adaptive_rank=adaptive_rank,
    )
    if telemetry is not None:
        simulator.telemetry = telemetry
    return simulator.run()


def run_batch(
    community: CommunityConfig,
    ranker: Ranker,
    config: Optional[SimulationConfig] = None,
    attention: Optional[AttentionModel] = None,
    surfing: Optional[MixedSurfingModel] = None,
    lifecycle: Optional[Lifecycle] = None,
    replicates: int = 1,
    rngs: Optional[Sequence[np.random.Generator]] = None,
    seed: RandomSource = None,
    history_length: int = 0,
    n_workers: Optional[int] = None,
    adaptive_rank: bool = False,
    telemetry=None,
) -> List[SimulationResult]:
    """Run ``R`` replicates through the batch engine, optionally sharded.

    A live ``telemetry`` recorder (per-day step timings and kernel spans)
    is process-local state, so it pins the run in-process (one worker).

    With more than one worker the replicate rows are split into contiguous
    blocks, one :class:`BatchSimulator` per worker process.  Replicates are
    independent, so the workers never communicate and the results (ordered
    by replicate) are identical to the single-process run: each replicate
    keeps its own generator wherever it executes.

    ``n_workers=None`` auto-sizes the pool from ``os.cpu_count()`` through
    :func:`repro.utils.parallel.default_workers`: hosts with spare cores
    shard large replicate batches automatically, while small batches (fewer
    than :data:`~repro.utils.parallel.MIN_TASKS_PER_WORKER` replicates per
    prospective worker) stay in-process where they are faster.  Pass
    ``n_workers=1`` to force the in-process path.
    """
    config = config or SimulationConfig()
    if rngs is None:
        rngs = spawn_rngs(seed if seed is not None else config.seed, replicates)
    rngs = list(rngs)
    if not rngs:
        return []
    n_workers = default_workers(len(rngs), n_workers)
    if telemetry is not None and telemetry.enabled:
        n_workers = 1
    if n_workers <= 1:
        return _run_batch_block(
            community, ranker, config, attention, surfing, lifecycle,
            rngs, history_length, adaptive_rank, telemetry,
        )

    blocks = np.array_split(np.arange(len(rngs)), n_workers)
    results: List[Optional[List[SimulationResult]]] = [None] * n_workers
    with ProcessPoolExecutor(max_workers=n_workers) as executor:
        futures = [
            executor.submit(
                _run_batch_block,
                community,
                ranker,
                config,
                attention,
                surfing,
                lifecycle,
                [rngs[i] for i in block],
                history_length,
                adaptive_rank,
            )
            for block in blocks
        ]
        for index, future in enumerate(futures):
            results[index] = future.result()
    flattened: List[SimulationResult] = []
    for block_results in results:
        flattened.extend(block_results or [])
    return flattened


__all__ = ["BatchSimulator", "run_batch"]
