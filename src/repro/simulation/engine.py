"""The discrete-time simulation engine.

Each simulated day the engine:

1. asks the ranker for a fresh result list based on current popularity;
2. converts the rank order into per-page visit shares using the attention
   model (and blends in random-surfing traffic when a mixed model is set);
3. allocates the day's monitored and total visit budgets over the pages —
   sampled in ``stochastic`` mode, in expectation in ``fluid`` mode;
4. updates per-page awareness from the monitored visits;
5. lets the lifecycle process retire and replace pages;
6. after the warm-up, reports the day to all observers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence

import numpy as np

from repro.community.config import CommunityConfig
from repro.community.lifecycle import Lifecycle, PoissonLifecycle
from repro.community.page import PagePool, awareness_gain
from repro.core.rankers import Ranker
from repro.core.rankers_context import RankingContext
from repro.metrics.tbp import tbp_from_trajectory
from repro.simulation.config import SimulationConfig
from repro.simulation.observers import (
    AwarenessSnapshotObserver,
    Observer,
    QPCObserver,
    TrackedPageObserver,
)
from repro.simulation.result import SimulationResult
from repro.utils.rng import as_rng
from repro.visits.allocation import allocate_monitored_visits, rank_visit_shares
from repro.visits.attention import AttentionModel, PowerLawAttention
from repro.visits.surfing import MixedSurfingModel


class Simulator:
    """Simulates popularity evolution of one Web community under one ranker."""

    def __init__(
        self,
        community: CommunityConfig,
        ranker: Ranker,
        config: Optional[SimulationConfig] = None,
        attention: Optional[AttentionModel] = None,
        surfing: Optional[MixedSurfingModel] = None,
        lifecycle: Optional[Lifecycle] = None,
        history_length: int = 0,
        observers: Sequence[Observer] = (),
    ) -> None:
        self.community = community
        self.ranker = ranker
        self.config = config or SimulationConfig()
        self.attention = attention or PowerLawAttention()
        self.surfing = surfing or MixedSurfingModel(surfing_fraction=0.0)
        self.lifecycle = lifecycle or PoissonLifecycle.from_lifetime(
            community.expected_lifetime_days
        )
        if history_length < 0:
            raise ValueError("history_length must be non-negative")
        self.history_length = int(history_length)
        self.extra_observers: List[Observer] = list(observers)

        self._rng = as_rng(self.config.seed)
        self.pool = PagePool.from_config(community, self._rng)
        self.day = 0
        self._history: Deque[np.ndarray] = deque(maxlen=self.history_length or None)

    # ------------------------------------------------------------------ API

    def run(self) -> SimulationResult:
        """Run warm-up plus measurement and return the collected result."""
        config = self.config
        qpc_observer = QPCObserver()
        awareness_observer = (
            AwarenessSnapshotObserver() if config.snapshot_awareness else None
        )
        observers: List[Observer] = [qpc_observer, *self.extra_observers]
        if awareness_observer is not None:
            observers.append(awareness_observer)

        for _ in range(config.warmup_days):
            self.step()

        probe_observer: Optional[TrackedPageObserver] = None
        if config.probe_quality is not None:
            probe_observer = self._inject_probe(config.probe_quality)
            observers.append(probe_observer)

        measure_days = config.measure_days
        if probe_observer is not None:
            measure_days = max(measure_days, config.probe_horizon_days)
        for _ in range(measure_days):
            visits_all = self.step()
            for observer in observers:
                observer.record(self.day, self.pool, visits_all)

        probe_trajectory = None
        tbp = None
        if probe_observer is not None:
            probe_trajectory = probe_observer.trajectory()
            if probe_trajectory.size:
                tbp = tbp_from_trajectory(
                    probe_trajectory, config.probe_quality, dt=1.0
                )

        qpc_absolute = qpc_observer.qpc
        qpc_normalized = SimulationResult.normalize(
            qpc_absolute, self.pool.quality, self.attention
        )
        return SimulationResult(
            qpc_absolute=qpc_absolute,
            qpc_normalized=qpc_normalized,
            quality=self.pool.quality.copy(),
            final_awareness=(
                awareness_observer.latest if awareness_observer is not None else None
            ),
            probe_trajectory=probe_trajectory,
            probe_quality=config.probe_quality,
            tbp_days=tbp,
            days_simulated=self.day,
        )

    def step(self) -> np.ndarray:
        """Advance the simulation by one day; return all-user visits per page."""
        pool = self.pool
        context = RankingContext.from_pool(
            pool, now=float(self.day), popularity_history=self._history_array()
        )
        ranking = self.ranker.rank(context, self._rng)

        shares_by_page = rank_visit_shares(
            ranking, self.attention, self.surfing, pool.popularity
        )
        monitored_visits = self._allocate_monitored(shares_by_page)
        visits_all_users = shares_by_page * self.community.total_visit_rate

        self._update_awareness(monitored_visits)
        self.lifecycle.step(pool, now=float(self.day), rng=self._rng)
        self._push_history(pool.popularity)
        self.day += 1
        return visits_all_users

    # ------------------------------------------------------------ internals

    def _allocate_monitored(self, shares_by_page: np.ndarray) -> np.ndarray:
        return allocate_monitored_visits(
            shares_by_page,
            self.community.monitored_visit_rate,
            self.config.mode,
            self._rng,
        )

    def _update_awareness(self, monitored_visits: np.ndarray) -> None:
        pool = self.pool
        gained = awareness_gain(
            pool.aware_count,
            pool.monitored_population,
            monitored_visits,
            mode=self.config.mode,
            rng=self._rng,
        )
        pool.add_awareness_bulk(gained)

    def _push_history(self, popularity: np.ndarray) -> None:
        if self.history_length <= 0:
            return
        # The deque's maxlen evicts the oldest snapshot in O(1), unlike the
        # previous list.pop(0) which shifted every element daily.
        self._history.append(popularity.copy())

    def _history_array(self) -> Optional[np.ndarray]:
        if self.history_length <= 0 or len(self._history) < 2:
            return None
        return np.asarray(list(self._history))

    def _inject_probe(self, quality: float) -> TrackedPageObserver:
        """Replace one page slot with a fresh page of exactly ``quality``.

        The slot whose stationary quality is closest to the probe quality is
        chosen so the quality distribution is perturbed as little as
        possible; the paper's probe (quality 0.4) coincides with the best
        page of the default community.
        """
        pool = self.pool
        slot = int(np.argmin(np.abs(pool.quality - quality)))
        pool.quality[slot] = float(quality)
        pool.replace_pages(np.array([slot]), now=float(self.day))
        return TrackedPageObserver(slot=slot, page_id=int(pool.page_ids[slot]))


__all__ = ["Simulator"]
