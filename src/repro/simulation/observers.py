"""Observers collect measurements while the simulator steps.

Observers receive a callback after every simulated day with the current day
index, the page pool, and the visit allocation used that day.  The engine
only starts calling ``record`` after the warm-up, so observers never need to
know about warm-up handling themselves.
"""

from __future__ import annotations

import abc
from typing import List, Optional

import numpy as np

from repro.community.page import PagePool
from repro.metrics.qpc import QPCAccumulator


class Observer(abc.ABC):
    """Receives one callback per measured simulation day."""

    @abc.abstractmethod
    def record(self, day: int, pool: PagePool, visits_all_users: np.ndarray) -> None:
        """Record measurements for one day.

        ``visits_all_users`` is the expected (or sampled) visit count per
        page for the *entire* user population that day.
        """


class QPCObserver(Observer):
    """Accumulates the quality-per-click ratio over the measurement window."""

    def __init__(self) -> None:
        self.accumulator = QPCAccumulator()

    def record(self, day: int, pool: PagePool, visits_all_users: np.ndarray) -> None:
        self.accumulator.update(visits_all_users, pool.quality)

    @property
    def qpc(self) -> float:
        """Amortized QPC so far."""
        return self.accumulator.value


class TrackedPageObserver(Observer):
    """Records the daily popularity of a single page slot until it is retired.

    The probe page used for TBP and the popularity-evolution figures is
    tracked by slot index plus page identifier, so the trajectory stops if
    the lifecycle process happens to retire the probe.
    """

    def __init__(self, slot: int, page_id: int) -> None:
        self.slot = int(slot)
        self.page_id = int(page_id)
        self.popularity: List[float] = []
        self.visits: List[float] = []
        self.alive = True

    def record(self, day: int, pool: PagePool, visits_all_users: np.ndarray) -> None:
        if not self.alive:
            return
        if pool.page_ids[self.slot] != self.page_id:
            self.alive = False
            return
        self.popularity.append(float(pool.popularity[self.slot]))
        self.visits.append(float(visits_all_users[self.slot]))

    def trajectory(self) -> np.ndarray:
        """Popularity trajectory sampled once per recorded day."""
        return np.asarray(self.popularity, dtype=float)

    def visit_trajectory(self) -> np.ndarray:
        """Daily visit counts received by the tracked page."""
        return np.asarray(self.visits, dtype=float)


class AwarenessSnapshotObserver(Observer):
    """Keeps the latest awareness vector (and optionally periodic snapshots)."""

    def __init__(self, every: Optional[int] = None) -> None:
        self.every = every
        self.latest: Optional[np.ndarray] = None
        self.snapshots: List[np.ndarray] = []

    def record(self, day: int, pool: PagePool, visits_all_users: np.ndarray) -> None:
        self.latest = pool.awareness.copy()
        if self.every is not None and day % self.every == 0:
            self.snapshots.append(self.latest.copy())


__all__ = [
    "Observer",
    "QPCObserver",
    "TrackedPageObserver",
    "AwarenessSnapshotObserver",
]
