"""Parity adapters: ground-truth replays against the serving engine.

Two replay paths live here, both defined as *the* reference semantics that
faster engines must match bit for bit:

* :func:`replay_day` performs exactly the sequence of
  :meth:`Simulator.step <repro.simulation.engine.Simulator.step>` — full
  ranking, attention shares, optional surfing blend, monitored-visit
  allocation, awareness update, lifecycle — but against a
  :class:`~repro.serving.engine.ServingEngine`'s incremental state,
  consuming the engine's random stream in the same order the simulator
  consumes its own.  Every parity-critical computation is shared code, not
  a copy: the share blend and visit allocation live in
  :mod:`repro.visits.allocation` and the awareness update in
  :func:`repro.community.page.awareness_gain`, each called by both paths.
* :func:`replay_trace` drives one
  :class:`~repro.serving.workload.RecordedTrace` through a
  :class:`~repro.serving.router.ShardedRouter`, one query at a time —
  serve, maybe click, buffer feedback, flush on schedule.  This is the
  standalone single-variant replay the batched sweep engine
  (:mod:`repro.serving.sweep`) must reproduce per variant, and the
  baseline it is benchmarked against.

An engine and a simulator built from equal seeds therefore produce
bit-identical visit allocations day after day, and a sweep row and a
standalone router built from equal seeds produce bit-identical result
pages, clicks and final state; any drift between the online and offline
(or batched and sequential) paths shows up as a hard digest/array mismatch
rather than a statistical anomaly.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.serving.engine import ServingEngine
from repro.serving.router import ShardedRouter
from repro.serving.workload import RecordedTrace
from repro.visits.allocation import allocate_monitored_visits, rank_visit_shares
from repro.visits.attention import AttentionModel, PowerLawAttention


def replay_day(engine: ServingEngine) -> np.ndarray:
    """Advance the engine by one full simulated day.

    Returns the all-user visit vector for the day, exactly as
    :meth:`Simulator.step` would.  The engine's result cache, if any, is
    neither consulted nor updated — replay is the ground-truth path.
    """
    state = engine.state
    pool = state.pool
    rng = engine.rng
    community = engine.community

    ranking = engine.rank_all()
    shares_by_page = rank_visit_shares(
        ranking, engine.attention, engine.surfing, pool.popularity
    )
    monitored_visits = allocate_monitored_visits(
        shares_by_page, community.monitored_visit_rate, state.mode, rng
    )
    visits_all_users = shares_by_page * community.total_visit_rate

    state.apply_visit_feedback(monitored_visits, rng=rng)
    engine.advance_day()
    return visits_all_users


@dataclass
class TraceReplayResult:
    """Outcome of replaying one recorded trace against one serving variant.

    The result pages and clicked page indices are folded into running CRC32
    digests (in query order) instead of being stored: two replays served
    identical pages and clicked identical results if and only if their
    digests match, and a digest comparison does not grow with the stream.
    Full pages can additionally be retained for debugging via
    ``record_pages``.

    Attributes:
        queries: queries replayed.
        feedback_events: clicks fed back into the popularity state.
        pages_crc: CRC32 over every served result page, in query order.
        clicked_crc: CRC32 over every clicked page index, in click order.
        stats: the router's flat counter dictionary (routing + cache).
        final_awareness: per-shard awareness counts after the replay.
        final_versions: per-shard popularity-state versions after the replay.
        elapsed_seconds: wall time of the replay.
        pages: served pages per query when recorded, else ``None``.
        clicked_quality_sum: summed quality of the clicked pages (QPC
            numerator).  Deliberately outside :meth:`matches`: the sweep
            accumulates it with vectorized per-window sums whose float
            summation order differs from the per-click scalar additions
            here, so the two agree to rounding, not bit for bit.
    """

    queries: int = 0
    feedback_events: int = 0
    pages_crc: int = 0
    clicked_crc: int = 0
    clicked_quality_sum: float = 0.0
    stats: Dict[str, float] = field(default_factory=dict)
    final_awareness: List[np.ndarray] = field(default_factory=list)
    final_versions: List[int] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    pages: Optional[List[np.ndarray]] = None

    def matches(self, other: "TraceReplayResult") -> bool:
        """Whether two replays are bit-identical (digests, stats, state)."""
        return (
            self.queries == other.queries
            and self.feedback_events == other.feedback_events
            and self.pages_crc == other.pages_crc
            and self.clicked_crc == other.clicked_crc
            and self.stats == other.stats
            and self.final_versions == other.final_versions
            and len(self.final_awareness) == len(other.final_awareness)
            and all(
                np.array_equal(a, b)
                for a, b in zip(self.final_awareness, other.final_awareness, strict=True)
            )
        )


def snapshot_router(router: ShardedRouter) -> TraceReplayResult:
    """Capture a router's post-replay state into a result shell.

    Fills the stats/state fields shared by both replay paths; the caller
    owns the digests and counters.
    """
    return TraceReplayResult(
        stats=router.stats(),
        final_awareness=[
            engine.state.pool.aware_count.copy() for engine in router.engines
        ],
        final_versions=[engine.state.version for engine in router.engines],
    )


def replay_trace(
    router: ShardedRouter,
    trace: RecordedTrace,
    k: int,
    attention: Optional[AttentionModel] = None,
    record_pages: bool = False,
) -> TraceReplayResult:
    """Replay a recorded query stream through a router, query by query.

    For every recorded query the routed shard serves its top-``k`` page;
    when the query's recorded coin lands below the trace's feedback rate,
    the recorded position uniform is inverted through the attention CDF
    over the ``k`` visible ranks (clamped to the served page, as in
    :func:`~repro.serving.workload.run_stream`) and the clicked page is
    buffered as feedback for the shard.  Feedback flushes every
    ``flush_every`` queries, lifecycle days run every ``day_every`` when
    recorded, and a final flush closes the stream.

    This per-query loop is the ground truth: the sweep engine's lockstep
    replay must produce an identical :class:`TraceReplayResult` for every
    variant, and is benchmarked against this function.
    """
    attention = attention or PowerLawAttention()
    click_cdf = np.cumsum(attention.visit_shares(max(int(k), 1)))
    flush_every = trace.flush_every
    day_every = trace.day_every

    pages_crc = 0
    clicked: List[int] = []
    clicked_quality = 0.0
    feedback_events = 0
    pages_log: Optional[List[np.ndarray]] = [] if record_pages else None

    started = time.perf_counter()
    for served, query_id in enumerate(np.asarray(trace.query_ids), start=1):
        query_id = int(query_id)
        page = router.serve(query_id, k)
        pages_crc = zlib.crc32(page.tobytes(), pages_crc)
        if pages_log is not None:
            pages_log.append(np.array(page, copy=True))
        if trace.coin_u[served - 1] < trace.feedback_rate:
            position = int(
                np.searchsorted(click_cdf, trace.position_u[served - 1], side="right")
            )
            position = min(position, page.size - 1)
            clicked.append(int(page[position]))
            clicked_quality += float(
                router.engines[router.shard_for(query_id)].state.pool.quality[
                    clicked[-1]
                ]
            )
            router.submit_feedback(query_id, clicked[-1])
            feedback_events += 1
        if served % flush_every == 0:
            router.flush_feedback()
        if day_every is not None and served % day_every == 0:
            router.advance_day()
    router.flush_feedback()
    elapsed = time.perf_counter() - started

    result = snapshot_router(router)
    result.queries = trace.n_queries
    result.feedback_events = feedback_events
    result.pages_crc = pages_crc
    result.clicked_crc = zlib.crc32(np.asarray(clicked, dtype=np.int64).tobytes())
    result.clicked_quality_sum = clicked_quality
    result.elapsed_seconds = elapsed
    result.pages = pages_log
    return result


__all__ = ["replay_day", "replay_trace", "snapshot_router", "TraceReplayResult"]
