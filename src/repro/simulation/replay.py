"""Parity adapter: replay a simulator day through the serving engine.

:func:`replay_day` performs exactly the sequence of
:meth:`Simulator.step <repro.simulation.engine.Simulator.step>` — full
ranking, attention shares, optional surfing blend, monitored-visit
allocation, awareness update, lifecycle — but against a
:class:`~repro.serving.engine.ServingEngine`'s incremental state, consuming
the engine's random stream in the same order the simulator consumes its
own.  Every parity-critical computation is shared code, not a copy: the
share blend and visit allocation live in :mod:`repro.visits.allocation`
and the awareness update in :func:`repro.community.page.awareness_gain`,
each called by both paths.  An engine and a simulator built from equal
seeds therefore produce bit-identical visit allocations day after day,
which is what the serving parity tests assert; any drift between the
online and offline paths shows up as a hard array mismatch rather than a
statistical anomaly.
"""

from __future__ import annotations

import numpy as np

from repro.serving.engine import ServingEngine
from repro.visits.allocation import allocate_monitored_visits, rank_visit_shares


def replay_day(engine: ServingEngine) -> np.ndarray:
    """Advance the engine by one full simulated day.

    Returns the all-user visit vector for the day, exactly as
    :meth:`Simulator.step` would.  The engine's result cache, if any, is
    neither consulted nor updated — replay is the ground-truth path.
    """
    state = engine.state
    pool = state.pool
    rng = engine.rng
    community = engine.community

    ranking = engine.rank_all()
    shares_by_page = rank_visit_shares(
        ranking, engine.attention, engine.surfing, pool.popularity
    )
    monitored_visits = allocate_monitored_visits(
        shares_by_page, community.monitored_visit_rate, state.mode, rng
    )
    visits_all_users = shares_by_page * community.total_visit_rate

    state.apply_visit_feedback(monitored_visits, rng=rng)
    engine.advance_day()
    return visits_all_users


__all__ = ["replay_day"]
