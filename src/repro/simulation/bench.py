"""Offline simulation throughput benchmark: batch engine vs replicate loop.

Measures simulated page-days per second for the vectorized
:class:`~repro.simulation.batch.BatchSimulator` against the looped
sequential :class:`~repro.simulation.engine.Simulator`, running the *same*
measurement through both engines (same community, policy, windows and
``spawn_rngs`` seed family).  Because replicate throughput of the sequential
loop is independent of the replicate count (the loop is embarrassingly
serial), the baseline may time fewer replicates than the batch run and still
report an honest per-replicate rate.

The report also verifies the parity contract: in fluid mode the batch
engine's per-replicate QPC values must be bit-identical to the sequential
engine's for the shared seed family.

Used by the ``sim-bench`` CLI subcommand and ``benchmarks/test_bench_batch.py``.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.community.config import CommunityConfig, DEFAULT_COMMUNITY
from repro.core.kernels import get_backend, use_backend
from repro.core.kernels import ROUTE_STATS
from repro.core.policy import RankPromotionPolicy, RECOMMENDED_POLICY
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import _run_replicates


def run_simulation_benchmark(
    community: Optional[CommunityConfig] = None,
    policy: Optional[RankPromotionPolicy] = None,
    replicates: int = 32,
    baseline_replicates: Optional[int] = None,
    warmup_days: int = 15,
    measure_days: int = 25,
    mode: str = "fluid",
    seed: int = 0,
    n_workers: Optional[int] = None,
    check_parity: bool = True,
    backend: Optional[str] = None,
    adaptive_rank: bool = False,
    telemetry_window: Optional[int] = None,
    telemetry_out: Optional[str] = None,
) -> Dict[str, float]:
    """Time batch vs sequential replicate runs; return a flat metrics dict.

    Page-days/sec counts every simulated day of every replicate over the
    full run (construction, warm-up, measurement and observers included —
    the same end-to-end work ``measure_qpc`` performs).

    Args:
        community: community to simulate (the paper's default by default).
        policy: rank promotion policy (the paper's recommendation by default).
        replicates: replicate count for the batch engine (the ``R`` axis).
        baseline_replicates: replicates timed through the sequential loop;
            defaults to ``min(replicates, 8)`` to keep the baseline cheap.
        warmup_days, measure_days, mode, seed: simulation window settings.
        n_workers: optional process-pool shards for the batch engine.
        check_parity: verify bit-identical per-replicate QPC between the two
            engines over the baseline replicates (fluid parity contract).
        backend: kernel backend to pin for this run (``None`` keeps the
            process default; multi-worker runs propagate through the
            ``REPRO_KERNEL_BACKEND`` environment variable instead).
        adaptive_rank: rank each batch day from the previous day's order
            via the kernel layer's near-sorted merge path (the CLI's
            ``--adaptive-rank`` toggle); bit-identical to the full sort,
            echoed in the report so benchmark JSON is tagged with it.

    The report's ``kernel_backend`` entry names the backend that actually
    ran (after any unavailable-backend fallback), so benchmark JSON and the
    regression-gate floors are backend-tagged.
    """
    if backend is not None:
        with use_backend(backend):
            return run_simulation_benchmark(
                community=community, policy=policy, replicates=replicates,
                baseline_replicates=baseline_replicates,
                warmup_days=warmup_days, measure_days=measure_days, mode=mode,
                seed=seed, n_workers=n_workers, check_parity=check_parity,
                adaptive_rank=adaptive_rank,
                telemetry_window=telemetry_window, telemetry_out=telemetry_out,
            )
    kernels = get_backend()
    kernels.warmup()  # JIT backends compile outside the timed regions
    community = community or DEFAULT_COMMUNITY
    policy = policy or RECOMMENDED_POLICY
    if baseline_replicates is None:
        baseline_replicates = min(replicates, 8)
    baseline_replicates = min(baseline_replicates, replicates)
    config = SimulationConfig(
        warmup_days=warmup_days,
        measure_days=measure_days,
        mode=mode,
        snapshot_awareness=False,
    )
    days_total = warmup_days + measure_days

    started = time.perf_counter()
    sequential = _run_replicates(
        community, policy, config,
        repetitions=baseline_replicates, seed=seed, engine="sequential",
    )
    sequential_seconds = time.perf_counter() - started

    recorder = None
    if telemetry_window is not None or telemetry_out is not None:
        from repro.telemetry import TelemetryRecorder

        # The window is event-driven and sim-bench's events are days, so
        # the requested window is honored as-is (days per row).
        recorder = TelemetryRecorder(
            window=telemetry_window or days_total,
            out=telemetry_out,
            label="sim",
        )
        recorder.install_kernel_spans()

    routes_before = ROUTE_STATS.as_dict() if adaptive_rank else None
    started = time.perf_counter()
    try:
        batch = _run_replicates(
            community, policy, config,
            repetitions=replicates, seed=seed, engine="batch",
            n_workers=n_workers, adaptive_rank=adaptive_rank,
            telemetry=recorder,
        )
    finally:
        if recorder is not None:
            recorder.close()
    batch_seconds = time.perf_counter() - started

    page_days_sequential = baseline_replicates * days_total * community.n_pages
    page_days_batch = replicates * days_total * community.n_pages
    rate_sequential = page_days_sequential / sequential_seconds
    rate_batch = page_days_batch / batch_seconds

    # spawn_rngs(seed, R) hands replicate r the same generator for every R,
    # so the first `baseline_replicates` rows of the batch run replay the
    # sequential runs exactly.
    parity = all(
        s.qpc_absolute == b.qpc_absolute
        for s, b in zip(sequential, batch[:baseline_replicates], strict=True)
    ) if check_parity else None

    report: Dict[str, float] = {
        "kernel_backend": kernels.name,
        "adaptive_rank": 1.0 if adaptive_rank else 0.0,
        "n_pages": float(community.n_pages),
        "replicates": float(replicates),
        "baseline_replicates": float(baseline_replicates),
        "days_total": float(days_total),
        "mode_fluid": 1.0 if mode == "fluid" else 0.0,
        "batch_seconds": batch_seconds,
        "sequential_seconds": sequential_seconds,
        "pagedays_per_second_batch": rate_batch,
        "pagedays_per_second_sequential": rate_sequential,
        "speedup_batch_vs_sequential": rate_batch / rate_sequential,
        "qpc_normalized_mean": float(
            sum(r.qpc_normalized for r in batch) / len(batch)
        ),
    }
    if parity is not None:
        report["parity_bit_identical"] = 1.0 if parity else 0.0
    if routes_before is not None:
        # Route mix of the in-process timed region (worker processes keep
        # their own counters); the mean estimated/realized displacement
        # bound tags the JSON with how tight the windowed route ran.
        after = ROUTE_STATS.as_dict()
        for key, before in routes_before.items():
            if key == "rank_displacement_max":
                report[key] = float(after[key])
            else:
                report[key] = float(after[key] - before)
        windowed_rows = report.get("rank_route_windowed", 0.0)
        if windowed_rows:
            report["rank_displacement_mean"] = (
                report["rank_displacement_sum"] / windowed_rows
            )
    if recorder is not None:
        report.update(recorder.snapshot())
    return report


__all__ = ["run_simulation_benchmark"]
