"""Simulation run configuration."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.utils.validation import check_positive, check_positive_int

VALID_MODES = ("stochastic", "fluid")


@dataclass(frozen=True)
class SimulationConfig:
    """Controls one simulation run.

    Attributes:
        warmup_days: number of simulated days discarded before measurement
            starts; should be *several* expected page lifetimes so the
            awareness distribution forgets the all-pages-created-at-once
            initial condition and reaches steady state (the defaults cover
            the paper's default community with its 1.5-year lifetime — use
            :meth:`for_community` to scale them for other communities).
        measure_days: number of days over which QPC and awareness statistics
            are accumulated after the warm-up.
        mode: ``"stochastic"`` (sampled visits, the paper's simulator) or
            ``"fluid"`` (expected-value updates).
        seed: root seed; ``None`` draws fresh entropy.
        probe_quality: if set, a probe page of this quality is injected at
            the end of the warm-up and its popularity trajectory recorded
            (used for TBP and the popularity-evolution figures).
        probe_horizon_days: how long the probe trajectory is recorded.
        snapshot_awareness: whether to keep the final awareness vector in
            the result (cheap, but can be disabled for very large sweeps).
    """

    warmup_days: int = 1600
    measure_days: int = 1100
    mode: str = "stochastic"
    seed: Optional[object] = None
    probe_quality: Optional[float] = None
    probe_horizon_days: int = 500
    snapshot_awareness: bool = True

    def __post_init__(self) -> None:
        check_positive_int("warmup_days", max(self.warmup_days, 1))
        if self.warmup_days < 0:
            raise ValueError("warmup_days must be non-negative")
        check_positive_int("measure_days", self.measure_days)
        if self.mode not in VALID_MODES:
            raise ValueError("mode must be one of %s, got %r" % (VALID_MODES, self.mode))
        if self.probe_quality is not None and not 0 < self.probe_quality <= 1:
            raise ValueError("probe_quality must lie in (0, 1]")
        if self.probe_quality is not None:
            check_positive("probe_horizon_days", self.probe_horizon_days)

    @property
    def total_days(self) -> int:
        """Total number of simulated days."""
        extra = self.probe_horizon_days if self.probe_quality is not None else 0
        return int(self.warmup_days + max(self.measure_days, extra))

    def fast(self, factor: int = 4) -> "SimulationConfig":
        """Return a configuration scaled down for quick test/bench runs."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        return replace(
            self,
            warmup_days=max(1, self.warmup_days // factor),
            measure_days=max(1, self.measure_days // factor),
            probe_horizon_days=max(1, self.probe_horizon_days // factor),
        )

    def with_seed(self, seed) -> "SimulationConfig":
        """Return a copy with a different root seed."""
        return replace(self, seed=seed)

    @classmethod
    def for_community(
        cls,
        community,
        warmup_lifetimes: float = 3.0,
        measure_lifetimes: float = 2.0,
        mode: str = "stochastic",
        **kwargs,
    ) -> "SimulationConfig":
        """Scale warm-up and measurement windows to a community's page lifetime.

        Steady-state behaviour is governed by page churn, so expressing the
        windows in units of the expected lifetime keeps runs comparable when
        sweeping lifetime or using scaled-down test communities.
        """
        lifetime = community.expected_lifetime_days
        return cls(
            warmup_days=max(1, int(round(warmup_lifetimes * lifetime))),
            measure_days=max(1, int(round(measure_lifetimes * lifetime))),
            mode=mode,
            **kwargs,
        )


__all__ = ["SimulationConfig", "VALID_MODES"]
