"""Joke/quotation item pool for the live-study replication."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.community.quality import PowerLawQualityDistribution
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive, check_positive_int


def funniness_distribution(n_items: int, rng: RandomSource = None) -> np.ndarray:
    """Sample item funniness values shaped like the paper's item pool.

    The paper downsampled its joke collection to match the PageRank power law
    of Cho & Roy and supplemented it with (deliberately non-funny) quotations
    to populate the long tail: a small head of genuinely funny jokes and a
    large tail of items almost nobody votes funny.  We use a ranked power law
    with that shape.  The head is calibrated so the resulting funny-vote
    ratios land in the range the paper reports in Figure 1 (roughly 0.25
    without promotion and 0.4 with it): the funniest item draws a "funny"
    vote from most visitors, and a few dozen items are moderately funny,
    while the bulk of the pool (the quotations) almost never does.
    """
    return PowerLawQualityDistribution(
        q_max=0.85, exponent=0.75, q_min=0.02
    ).sample(n_items, rng)


@dataclass
class ItemPool:
    """The rotating pool of joke/quotation items shown to one user group.

    Each item tracks its funniness (the probability a visiting user votes
    "funny"), its popularity (count of funny votes, the ranking signal used
    by the study), the set-size of users who have seen it, its creation day
    and its fixed lifetime.
    """

    funniness: np.ndarray
    lifetime_days: float = 30.0
    initial_age_span: float = 30.0

    def __post_init__(self) -> None:
        self.funniness = np.asarray(self.funniness, dtype=float)
        if self.funniness.ndim != 1 or self.funniness.size == 0:
            raise ValueError("funniness must be a non-empty 1-D array")
        check_positive("lifetime_days", self.lifetime_days)
        self.n = self.funniness.size
        self.funny_votes = np.zeros(self.n, dtype=float)
        self.total_votes = np.zeros(self.n, dtype=float)
        self.seen = np.zeros(self.n, dtype=float)
        self.created_at = np.zeros(self.n, dtype=float)

    def stagger_initial_ages(self, rng: RandomSource = None) -> None:
        """Give the initial items uniformly random remaining lifetimes.

        Mirrors the study: lifetimes of the initial items were drawn from
        ``[1, 30]`` days so the pool is already in a rotation steady state
        when the experiment starts.
        """
        generator = as_rng(rng)
        self.created_at = -generator.uniform(0.0, self.initial_age_span, size=self.n)

    def zero_awareness_mask(self) -> np.ndarray:
        """Items no user of this group has viewed yet."""
        return self.seen <= 0

    def record_visit(self, item: int, vote_probability_scale: float, rng) -> bool:
        """Record a visit; returns True if the user cast a 'funny' vote.

        Every visitor casts a vote (funny / neutral / not funny); only the
        "funny" votes feed the popularity signal, exactly as in the study.
        """
        self.seen[item] += 1
        self.total_votes[item] += 1
        is_funny = rng.random() < self.funniness[item] * vote_probability_scale
        if is_funny:
            self.funny_votes[item] += 1
        return bool(is_funny)

    def rotate(self, now: float) -> np.ndarray:
        """Replace expired items with fresh equal-funniness items."""
        expired = np.flatnonzero(now - self.created_at >= self.lifetime_days)
        if expired.size:
            self.funny_votes[expired] = 0.0
            self.total_votes[expired] = 0.0
            self.seen[expired] = 0.0
            self.created_at[expired] = now
        return expired

    def popularity_order(self, rng) -> np.ndarray:
        """Items in descending order of funny votes, older items first on ties."""
        ages = -self.created_at
        return np.lexsort((rng.random(self.n), -ages, -self.funny_votes))


__all__ = ["ItemPool", "funniness_distribution"]
