"""The two-group live-study experiment (Appendix A / Figure 1).

Two identical item pools are shown to two independently simulated user
groups.  The control group sees items strictly ordered by funny-vote count;
the treatment group sees the same deterministic order except that all items
nobody in the group has viewed yet are inserted, in a fresh random order per
user, starting at rank position 21 (the paper's "selective promotion with
k = 21 and r = 1").  The reported metric is the ratio of funny votes to
total votes over the final portion of the study, by which time the original
items have rotated out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.merge import randomized_merge
from repro.livestudy.items import ItemPool, funniness_distribution
from repro.utils.rng import RandomSource, as_rng, spawn_rngs
from repro.utils.validation import check_positive, check_positive_int
from repro.visits.attention import PowerLawAttention


@dataclass(frozen=True)
class LiveStudyConfig:
    """Parameters of the live-study replication (defaults match the paper).

    Attributes:
        n_items: size of the rotating item pool.
        n_users: number of participants (split over the two groups).
        study_days: total length of the study.
        measure_last_days: length of the final window used for the vote-ratio
            metric (original items have expired by then).
        item_lifetime_days: fixed lifetime of each item.
        visits_per_user_per_day: how many items an average participant views
            per day.  The default of one view per participant per day puts
            the simulated vote volume in the regime where the control group's
            funny-vote ratio and the treatment improvement both land near the
            values the paper reports for its 962 volunteers (Figure 1).
        promotion_start_rank: the ``k`` of the treatment group's promotion
            (new items are inserted starting at this rank position).
        attention_exponent: rank-bias exponent of simulated participants; the
            paper measured -3/2 from its own logs.
    """

    n_items: int = 1000
    n_users: int = 962
    study_days: int = 45
    measure_last_days: int = 15
    item_lifetime_days: float = 30.0
    visits_per_user_per_day: float = 1.0
    promotion_start_rank: int = 21
    attention_exponent: float = 1.5

    def __post_init__(self) -> None:
        check_positive_int("n_items", self.n_items)
        check_positive_int("n_users", self.n_users)
        check_positive_int("study_days", self.study_days)
        check_positive_int("measure_last_days", self.measure_last_days)
        if self.measure_last_days > self.study_days:
            raise ValueError("measure_last_days cannot exceed study_days")
        check_positive("item_lifetime_days", self.item_lifetime_days)
        check_positive("visits_per_user_per_day", self.visits_per_user_per_day)
        check_positive_int("promotion_start_rank", self.promotion_start_rank)


@dataclass
class GroupOutcome:
    """Vote tallies for one user group over the measurement window."""

    funny_votes: float = 0.0
    total_votes: float = 0.0

    @property
    def funny_ratio(self) -> float:
        """Ratio of funny votes to total votes (the Figure 1 metric)."""
        if self.total_votes <= 0:
            return 0.0
        return self.funny_votes / self.total_votes


@dataclass
class LiveStudyResult:
    """Outcome of the two-group study."""

    control: GroupOutcome
    treatment: GroupOutcome

    @property
    def improvement(self) -> float:
        """Relative improvement of the treatment group's funny ratio."""
        if self.control.funny_ratio <= 0:
            return float("inf") if self.treatment.funny_ratio > 0 else 0.0
        return self.treatment.funny_ratio / self.control.funny_ratio - 1.0

    def summary(self) -> str:
        """One-line Figure 1 style summary."""
        return (
            "funny-vote ratio: without promotion %.4f, with promotion %.4f "
            "(improvement %.0f%%)"
            % (
                self.control.funny_ratio,
                self.treatment.funny_ratio,
                100.0 * self.improvement,
            )
        )


class LiveStudyExperiment:
    """Runs the simulated two-group study."""

    def __init__(self, config: Optional[LiveStudyConfig] = None, seed: RandomSource = None) -> None:
        self.config = config or LiveStudyConfig()
        self._seed = seed

    def run(self) -> LiveStudyResult:
        """Simulate both groups on identical item pools and report vote ratios."""
        config = self.config
        item_rng, control_rng, treatment_rng = spawn_rngs(self._seed, 3)
        funniness = funniness_distribution(config.n_items, item_rng)

        control = self._run_group(funniness, promote=False, rng=control_rng)
        treatment = self._run_group(funniness, promote=True, rng=treatment_rng)
        return LiveStudyResult(control=control, treatment=treatment)

    # ------------------------------------------------------------ internals

    def _run_group(self, funniness: np.ndarray, promote: bool, rng) -> GroupOutcome:
        config = self.config
        pool = ItemPool(funniness.copy(), lifetime_days=config.item_lifetime_days)
        pool.stagger_initial_ages(rng)
        attention = PowerLawAttention(config.attention_exponent)
        shares = attention.visit_shares(config.n_items)
        group_users = max(1, config.n_users // 2)
        daily_visits = int(round(group_users * config.visits_per_user_per_day))
        measure_start = config.study_days - config.measure_last_days
        outcome = GroupOutcome()

        for day in range(config.study_days):
            pool.rotate(now=float(day))
            order = pool.popularity_order(rng)
            if promote:
                order = self._promote_unseen(pool, order, rng)
            visited_ranks = rng.choice(config.n_items, size=daily_visits, p=shares)
            items = order[visited_ranks]
            measuring = day >= measure_start
            for item in items:
                is_funny = pool.record_visit(int(item), 1.0, rng)
                if measuring:
                    outcome.total_votes += 1
                    outcome.funny_votes += 1 if is_funny else 0
        return outcome

    def _promote_unseen(self, pool: ItemPool, order: np.ndarray, rng) -> np.ndarray:
        """Insert all unseen items in random order starting below rank k - 1.

        This is exactly selective promotion with ``k = promotion_start_rank``
        and ``r = 1``: the top ``k - 1`` popularity-ranked items stay put and
        the entire unseen pool follows immediately after, freshly shuffled.
        """
        unseen = pool.zero_awareness_mask()
        promoted = order[unseen[order]]
        deterministic = order[~unseen[order]]
        if promoted.size == 0:
            return order
        return randomized_merge(
            deterministic,
            promoted,
            k=self.config.promotion_start_rank,
            r=1.0,
            rng=rng,
        )


__all__ = ["LiveStudyConfig", "LiveStudyExperiment", "LiveStudyResult", "GroupOutcome"]
