"""Replication of the paper's live user study (Appendix A, Figure 1).

The original study put ~1000 joke/quotation pages in front of 962 volunteers
for 45 days, split into a control group (strict ranking by funny-vote
popularity) and a treatment group (zero-awareness items inserted in random
order starting at rank 21), and compared the ratio of "funny" votes to total
votes over the final 15 days.

We cannot re-run the human study, so this package provides a faithful
behavioural simulation of it: simulated users visit items following the same
rank-to-visit power law the paper measured from its own participants
(exponent -3/2), vote "funny" with probability equal to the item's intrinsic
funniness, and the item pool rotates exactly as described (1000 items,
30-day lifetimes, staggered initial ages, equal-quality replacement).
"""

from repro.livestudy.items import ItemPool, funniness_distribution
from repro.livestudy.experiment import (
    LiveStudyConfig,
    LiveStudyExperiment,
    LiveStudyResult,
)

__all__ = [
    "ItemPool",
    "funniness_distribution",
    "LiveStudyConfig",
    "LiveStudyExperiment",
    "LiveStudyResult",
]
