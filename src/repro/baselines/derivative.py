"""Popularity-derivative forecasting baseline.

Cho, Roy & Adams propose estimating page *quality* by extrapolating the
popularity trajectory: a young page whose popularity is rising quickly is
probably better than its current popularity suggests.  We implement a simple
linear forecast over a window of recent popularity snapshots:

``score(p) = P(p, t) + horizon * dP/dt``

where the derivative is the least-squares slope over the available history.
Pages with no history fall back to their current popularity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rankers import Ranker, _deterministic_order
from repro.core.rankers_context import RankingContext
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DerivativeForecastRanker(Ranker):
    """Rank by popularity extrapolated ``horizon_days`` into the future.

    The ranking context must carry ``popularity_history`` with shape
    ``(history_length, n)`` (oldest snapshot first).  The slope is computed
    per page by ordinary least squares against the snapshot index, assuming
    snapshots are evenly spaced ``snapshot_interval_days`` apart.
    """

    horizon_days: float = 90.0
    snapshot_interval_days: float = 1.0

    def __post_init__(self) -> None:
        check_positive("horizon_days", self.horizon_days)
        check_positive("snapshot_interval_days", self.snapshot_interval_days)

    def rank(self, context: RankingContext, rng: RandomSource = None) -> np.ndarray:
        history = context.popularity_history
        if history is None or np.asarray(history).shape[0] < 2:
            return _deterministic_order(context.popularity, context.ages, rng=as_rng(rng))
        history = np.asarray(history, dtype=float)
        steps = history.shape[0]
        t = np.arange(steps, dtype=float) * self.snapshot_interval_days
        t_centered = t - t.mean()
        denom = float(np.sum(t_centered**2))
        slopes = (t_centered @ (history - history.mean(axis=0))) / denom
        forecast = context.popularity + self.horizon_days * slopes
        forecast = np.clip(forecast, 0.0, None)
        return _deterministic_order(forecast, context.ages, rng=as_rng(rng))

    def describe(self) -> str:
        return "Derivative forecast (+%.0f days)" % self.horizon_days


__all__ = ["DerivativeForecastRanker"]
