"""Age-weighted popularity ranking baseline.

Prior work addresses the entrenchment problem by boosting the score of young
pages: the observed popularity is divided by a function of page age so that a
new page with a small popularity can still outrank an old page whose
popularity has saturated.  We implement the common exponential ramp form

``score(p) = P(p, t) / (1 - exp(-age / tau) + epsilon)``

where ``tau`` controls how long a page is considered "young".  As ``age``
grows the denominator approaches one and the score converges to plain
popularity, so entrenched pages are ranked exactly as the deterministic
baseline ranks them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rankers import Ranker, _deterministic_order
from repro.core.rankers_context import RankingContext
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class AgeWeightedRanker(Ranker):
    """Rank by popularity normalized by an exponential ramp of page age.

    Attributes:
        tau_days: time constant of the ramp; pages much younger than this
            receive a large boost.
        epsilon: numerical floor that bounds the boost for pages of age zero
            (which would otherwise divide by zero).
    """

    tau_days: float = 90.0
    epsilon: float = 0.05

    def __post_init__(self) -> None:
        check_positive("tau_days", self.tau_days)
        check_positive("epsilon", self.epsilon)

    def rank(self, context: RankingContext, rng: RandomSource = None) -> np.ndarray:
        if context.ages is None:
            raise ValueError("AgeWeightedRanker requires page ages in the context")
        ramp = 1.0 - np.exp(-np.asarray(context.ages, dtype=float) / self.tau_days)
        scores = context.popularity / (ramp + self.epsilon)
        return _deterministic_order(scores, context.ages, rng=as_rng(rng))

    def describe(self) -> str:
        return "Age-weighted popularity (tau=%.0f days)" % self.tau_days


__all__ = ["AgeWeightedRanker"]
