"""Baseline rankers from the related work the paper compares against in spirit.

The paper's Section 2 describes two families of prior solutions to the
entrenchment problem, both variations of PageRank:

* weighting popularity by page *age* (Baeza-Yates, Saint-Jean & Castillo;
  Yu, Li & Liu) — implemented here as :class:`AgeWeightedRanker`;
* forecasting future popularity from the *derivative* of the popularity
  signal for young pages (Cho, Roy & Adams) — implemented here as
  :class:`DerivativeForecastRanker`.

They are not required to reproduce the paper's figures, but the ablation
benchmarks use them to place randomized rank promotion next to the
alternatives the paper argues against.
"""

from repro.baselines.age_weighted import AgeWeightedRanker
from repro.baselines.derivative import DerivativeForecastRanker

__all__ = ["AgeWeightedRanker", "DerivativeForecastRanker"]
