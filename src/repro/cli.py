"""Command-line interface: regenerate any figure's data from the terminal.

Examples::

    python -m repro list
    python -m repro figure5 --scale fast --seed 3
    python -m repro figure7a --scale paper
    repro figure1

Each experiment prints the same rows/series the corresponding paper figure
reports, as an ASCII table, plus shape-check notes.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.defaults import VALID_SCALES
from repro.experiments.registry import get_experiment, list_experiments


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the evaluation of 'Shuffling a Stacked Deck: The Case for "
            "Partially Randomized Ranking of Search Engine Results' (VLDB 2005)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment to run (one of: list, %s)" % ", ".join(list_experiments()),
    )
    parser.add_argument(
        "--scale",
        choices=list(VALID_SCALES),
        default="fast",
        help="experiment scale: 'paper' uses the paper's default community, "
        "'fast' a proportionally scaled-down one, 'smoke' a tiny sanity run",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in list_experiments():
            print(name)
        return 0

    try:
        driver = get_experiment(args.experiment)
    except KeyError as error:
        print(str(error), file=sys.stderr)
        return 2

    started = time.time()
    result = driver(scale=args.scale, seed=args.seed)
    elapsed = time.time() - started
    print(result.render())
    print()
    print("completed %s at scale %r in %.1fs" % (args.experiment, args.scale, elapsed))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
