"""Command-line interface: regenerate any figure's data from the terminal.

Examples::

    python -m repro list
    python -m repro figure5 --scale fast --seed 3
    python -m repro figure7a --scale paper
    python -m repro serve-bench --pages 200000 --queries 5000 --shards 8
    repro figure1

Each experiment prints the same rows/series the corresponding paper figure
reports, as an ASCII table, plus shape-check notes.  ``serve-bench`` runs
the online serving engine under a streaming query workload and reports
throughput, latency and cache effectiveness against the full-re-rank
baseline.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.defaults import VALID_SCALES
from repro.experiments.registry import get_experiment, list_experiments


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the evaluation of 'Shuffling a Stacked Deck: The Case for "
            "Partially Randomized Ranking of Search Engine Results' (VLDB 2005)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment to run (one of: list, serve-bench, %s)"
        % ", ".join(list_experiments()),
    )
    parser.add_argument(
        "--scale",
        choices=list(VALID_SCALES),
        default="fast",
        help="experiment scale: 'paper' uses the paper's default community, "
        "'fast' a proportionally scaled-down one, 'smoke' a tiny sanity run",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")

    serving = parser.add_argument_group("serve-bench options")
    serving.add_argument(
        "--pages", type=int, default=20_000, help="total pages across all shards"
    )
    serving.add_argument(
        "--queries", type=int, default=2_000, help="number of queries to stream"
    )
    serving.add_argument("--k", type=int, default=20, help="result-page length")
    serving.add_argument(
        "--shards", type=int, default=4, help="number of community shards"
    )
    serving.add_argument(
        "--cache-size",
        type=int,
        default=64,
        help="result pages cached per shard; 0 disables caching",
    )
    serving.add_argument(
        "--staleness-budget",
        type=int,
        default=4,
        help="state versions a cached page may lag before invalidation",
    )
    serving.add_argument(
        "--feedback-rate",
        type=float,
        default=0.2,
        help="probability a served query feeds one visit back",
    )
    return parser


def run_serve_bench(args: argparse.Namespace) -> int:
    """Run the serving benchmark and print its metrics table."""
    from repro.serving.bench import run_serving_benchmark
    from repro.utils.tables import Table

    report = run_serving_benchmark(
        n_pages=args.pages,
        n_queries=args.queries,
        k=args.k,
        n_shards=args.shards,
        cache_capacity=args.cache_size if args.cache_size > 0 else None,
        staleness_budget=args.staleness_budget,
        feedback_rate=args.feedback_rate,
        seed=args.seed,
    )
    table = Table(
        ["metric", "value"],
        title="serve-bench — online serving vs full re-rank (n=%d, k=%d, shards=%d)"
        % (args.pages, args.k, args.shards),
    )
    for key in sorted(report):
        table.add_row(key, report[key])
    print(table.render())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in list_experiments():
            print(name)
        return 0

    if args.experiment == "serve-bench":
        started = time.time()
        code = run_serve_bench(args)
        print()
        print("completed serve-bench in %.1fs" % (time.time() - started))
        return code

    try:
        driver = get_experiment(args.experiment)
    except KeyError as error:
        print(str(error), file=sys.stderr)
        return 2

    started = time.time()
    result = driver(scale=args.scale, seed=args.seed)
    elapsed = time.time() - started
    print(result.render())
    print()
    print("completed %s at scale %r in %.1fs" % (args.experiment, args.scale, elapsed))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
