"""Command-line interface: regenerate any figure's data from the terminal.

Examples::

    python -m repro list
    python -m repro figure5 --scale fast --seed 3
    python -m repro figure7a --scale paper
    python -m repro serve-bench --pages 200000 --queries 5000 --shards 8
    python -m repro chaos-bench --pages 200000 --queries 2000 --fault-plan plan.json
    python -m repro sim-bench --replicates 32 --sim-mode fluid
    python -m repro sweep-bench --grid-k 10,20 --grid-r 0.0,0.1 --grid-shards 1,2
    python -m repro sweep-fig --grid-r 0.0,0.1,0.2,0.3 --telemetry-window 256
    repro figure1

Each experiment prints the same rows/series the corresponding paper figure
reports, as an ASCII table, plus shape-check notes.  ``serve-bench`` runs
the online serving engine under a streaming query workload and reports
throughput, latency and cache effectiveness against the full-re-rank
baseline.  ``sim-bench`` measures offline simulation throughput (simulated
page-days per second) for the vectorized batch engine against the looped
sequential simulator, including the bit-parity check between the two.
``sweep-bench`` replays one recorded query stream against a whole grid of
serving configurations (page length, randomization, cache staleness
budget, shard count) through the lockstep sweep engine and reports its
replayed-query throughput against running the variants one at a time,
including the per-variant bit-parity check.  ``sweep-fig`` runs one such
sweep and renders the QPC / cache-hit-rate / staleness trade-off curves
(plus, with ``--telemetry-window``, the windowed metric series) as ASCII
figures.  ``chaos-bench`` replays a recorded query trace with the
robustness layer armed under a scripted fault plan (shard crashes and
stalls, OCC write conflicts, batch drops, cache poisoning) and reports
recovery time, dead-letter counts, the degraded-serve fraction, and the
bit-identity of every crash recovery against the fault-free reference
replay.  All the benchmarks accept ``--telemetry-window`` /
``--telemetry-out`` to stream windowed telemetry rows as JSON lines.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.defaults import VALID_SCALES
from repro.experiments.registry import get_experiment, list_experiments


def add_serving_config_args(parser: argparse.ArgumentParser) -> None:
    """Declare the shared serving-configuration flags in one place.

    Every serving-tier experiment (``serve-bench``, ``chaos-bench``,
    ``sweep-bench``, ``sweep-fig``) reads the same deployment knobs —
    shards, cache, staleness, OCC retry, and the multi-tenant pool shape
    (``--tenants/--clients/--workers``) — so they are declared once here
    and folded into one :class:`~repro.serving.config.ServingConfig` by
    :func:`serving_config_from_args`.
    """
    serving = parser.add_argument_group("serving configuration")
    serving.add_argument(
        "--pages", type=int, default=20_000, help="total pages across all shards"
    )
    serving.add_argument(
        "--shards", type=int, default=4, help="number of community shards"
    )
    serving.add_argument(
        "--cache-size",
        type=int,
        default=64,
        help="result pages cached per shard; 0 disables caching",
    )
    serving.add_argument(
        "--staleness-budget",
        type=int,
        default=4,
        help="state versions a cached page may lag before invalidation",
    )
    serving.add_argument(
        "--feedback-rate",
        type=float,
        default=0.2,
        help="probability a served query feeds one visit back",
    )
    serving.add_argument(
        "--max-attempts", type=int, default=None,
        help="OCC commit attempts per feedback batch before dead-lettering "
        "(default: the RetryPolicy default of 4)",
    )
    serving.add_argument(
        "--backoff-base", type=float, default=None,
        help="base retry backoff in seconds (scheduled, not slept; "
        "default 1e-4, doubling per retry up to the policy cap)",
    )
    serving.add_argument(
        "--tenants", type=int, default=1,
        help="tenant communities hosted behind the serving front door",
    )
    serving.add_argument(
        "--clients", type=int, default=0,
        help="concurrent OCC writer processes racing feedback commits "
        "against the pool's shared-memory shards",
    )
    serving.add_argument(
        "--workers", type=int, default=None,
        help="worker processes: for serve-bench, pool workers hosting the "
        "tenant shards (0/omitted = classic in-process router); for "
        "sim-bench/sweep-bench/sweep-fig, replicate/variant sharding "
        "width (omitted = auto-size from os.cpu_count())",
    )
    serving.add_argument(
        "--inbox-capacity", type=int, default=8,
        help="bounded work-queue depth per pool worker; a full inbox "
        "counts a backpressure event and blocks the submitter",
    )


def serving_config_from_args(args: argparse.Namespace, **overrides):
    """Fold the shared serving flags into one frozen ``ServingConfig``.

    Keyword ``overrides`` win over the parsed flags (drivers use them for
    experiment-specific fields like ``mode``).
    """
    from repro.serving.config import ServingConfig

    values = dict(
        n_pages=args.pages,
        n_shards=args.shards,
        cache_capacity=args.cache_size if args.cache_size > 0 else None,
        staleness_budget=args.staleness_budget,
        feedback_rate=args.feedback_rate,
        seed=args.seed,
        tenants=args.tenants,
        workers=args.workers if args.workers is not None else 0,
        clients=args.clients,
        inbox_capacity=args.inbox_capacity,
        telemetry_window=args.telemetry_window,
        telemetry_out=args.telemetry_out,
    )
    if args.max_attempts is not None:
        values["max_attempts"] = args.max_attempts
    if args.backoff_base is not None:
        values["backoff_base"] = args.backoff_base
    values.update(overrides)
    return ServingConfig(**values)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the evaluation of 'Shuffling a Stacked Deck: The Case for "
            "Partially Randomized Ranking of Search Engine Results' (VLDB 2005)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment to run (one of: list, serve-bench, chaos-bench, "
        "sim-bench, sweep-bench, sweep-fig, %s)" % ", ".join(list_experiments()),
    )
    parser.add_argument(
        "--scale",
        choices=list(VALID_SCALES),
        default="fast",
        help="experiment scale: 'paper' uses the paper's default community, "
        "'fast' a proportionally scaled-down one, 'smoke' a tiny sanity run",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    parser.add_argument(
        "--backend",
        choices=("numpy", "numba"),
        default=None,
        help="kernel backend for serve-bench/sim-bench/sweep-bench (default: "
        "the REPRO_KERNEL_BACKEND environment variable, else numpy; "
        "requesting numba without the package installed warns once and "
        "falls back to numpy)",
    )

    add_serving_config_args(parser)

    serving = parser.add_argument_group("serve-bench options")
    serving.add_argument(
        "--queries", type=int, default=2_000, help="number of queries to stream"
    )
    serving.add_argument("--k", type=int, default=20, help="result-page length")

    chaos = parser.add_argument_group("chaos-bench options")
    chaos.add_argument(
        "--fault-plan", default=None,
        help="JSON fault-plan file to replay under (default: the pinned "
        "reference plan — one crash, a conflict burst, a stall, a cache "
        "poisoning)",
    )
    chaos.add_argument(
        "--save-fault-plan", default=None,
        help="write the fault plan actually used to this JSON file "
        "(pin-and-replay workflow)",
    )
    chaos.add_argument(
        "--chaos-mode", choices=("fluid", "stochastic"), default="fluid",
        help="popularity update mode for the chaos run",
    )
    chaos.add_argument(
        "--chaos-flush", type=int, default=64,
        help="queries between feedback batch flushes in the chaos trace",
    )

    simulation = parser.add_argument_group("sim-bench options")
    simulation.add_argument(
        "--replicates", type=int, default=32,
        help="replicate runs advanced in lockstep by the batch engine",
    )
    simulation.add_argument(
        "--baseline-replicates", type=int, default=None,
        help="replicates timed through the sequential loop (default min(R, 8))",
    )
    simulation.add_argument(
        "--sim-pages", type=int, default=None,
        help="community size; defaults to the paper's default community",
    )
    simulation.add_argument(
        "--sim-warmup", type=int, default=15, help="warm-up days per run"
    )
    simulation.add_argument(
        "--sim-measure", type=int, default=25, help="measurement days per run"
    )
    simulation.add_argument(
        "--sim-mode", choices=("fluid", "stochastic"), default="fluid",
        help="simulation update mode",
    )
    simulation.add_argument(
        "--policy", choices=("selective", "uniform", "none"), default="selective",
        help="rank promotion policy to simulate",
    )
    simulation.add_argument(
        "--adaptive-rank", action="store_true",
        help="rank each day from the previous day's order via the kernel "
        "layer's near-sorted run merge (bit-identical to the full sort; "
        "falls back automatically on days that are not near-sorted)",
    )

    sweep = parser.add_argument_group("sweep-bench options")
    sweep.add_argument(
        "--sweep-pages", type=int, default=2_000,
        help="pages per variant community",
    )
    sweep.add_argument(
        "--sweep-queries", type=int, default=2_400,
        help="recorded queries replayed against every variant",
    )
    sweep.add_argument(
        "--grid-k", default="10,20",
        help="comma-separated result-page lengths, e.g. '10,20'",
    )
    sweep.add_argument(
        "--grid-r", default="0.0,0.1,0.2,0.3",
        help="comma-separated randomization degrees, e.g. '0.0,0.1'",
    )
    sweep.add_argument(
        "--grid-stale", default="0,4",
        help="comma-separated cache staleness budgets (versions of lag)",
    )
    sweep.add_argument(
        "--grid-shards", default="1,2",
        help="comma-separated shard counts per variant",
    )
    sweep.add_argument(
        "--sweep-cache-size", type=int, default=64,
        help="result pages cached per shard; 0 disables caching",
    )
    sweep.add_argument(
        "--sweep-flush", type=int, default=64,
        help="queries between feedback batch flushes in the recorded trace",
    )
    sweep.add_argument(
        "--sweep-feedback-rate", type=float, default=0.2,
        help="probability a replayed query produces one click",
    )
    sweep.add_argument(
        "--sweep-day-every", type=int, default=None,
        help="queries between lifecycle days in the trace (default: none)",
    )

    telemetry = parser.add_argument_group("telemetry options")
    telemetry.add_argument(
        "--telemetry-window", type=int, default=None,
        help="enable streaming telemetry with this sliding-window size "
        "(events for serve-bench/sweep-bench/sweep-fig, days for "
        "sim-bench); default off",
    )
    telemetry.add_argument(
        "--telemetry-out", default=None,
        help="write windowed telemetry rows to this JSON-lines file "
        "(implies telemetry on, with the default window if "
        "--telemetry-window is not given)",
    )
    return parser


def _apply_backend(args: argparse.Namespace) -> None:
    """Pin the kernel backend requested by ``--backend`` for this process.

    The name is exported through ``REPRO_KERNEL_BACKEND`` as well so
    process-pool workers (replicate/variant sharding) resolve the same
    backend as the parent.
    """
    if args.backend is None:
        return
    import os

    from repro.core.kernels import ENV_VAR, set_backend

    os.environ[ENV_VAR] = args.backend
    set_backend(args.backend)


def run_serve_bench(args: argparse.Namespace) -> int:
    """Run the serving benchmark and print its metrics table.

    With ``--workers W`` (W >= 1) this drives the multi-tenant
    process-per-shard pool (:func:`repro.serving.pool.run_pool_benchmark`)
    instead of the in-process router: ``--tenants`` communities behind
    ``W`` worker processes, with ``--clients`` extra OCC writer processes
    racing feedback commits against the shared-memory shards.
    """
    from repro.serving.bench import run_serving_benchmark
    from repro.utils.tables import Table

    _apply_backend(args)
    if args.workers is not None and args.workers > 0:
        from repro.serving.pool import run_pool_benchmark

        config = serving_config_from_args(args)
        recorder = None
        if args.telemetry_window is not None or args.telemetry_out is not None:
            from repro.telemetry import DEFAULT_WINDOW, TelemetryRecorder

            recorder = TelemetryRecorder(
                n_shards=config.n_shards,
                window=args.telemetry_window or DEFAULT_WINDOW,
                out=args.telemetry_out,
                label="pool",
            )
        try:
            report = run_pool_benchmark(
                n_queries=args.queries, config=config, telemetry=recorder
            )
        finally:
            if recorder is not None:
                recorder.close()
        table = Table(
            ["metric", "value"],
            title="serve-bench — multi-tenant pool "
            "(tenants=%d, workers=%d, clients=%d, n=%d x %d shards)"
            % (
                config.tenants,
                config.workers,
                config.clients,
                config.n_pages,
                config.n_shards,
            ),
        )
        for key in sorted(report):
            table.add_row(key, report[key])
        print(table.render())
        return 0
    report = run_serving_benchmark(
        n_pages=args.pages,
        n_queries=args.queries,
        k=args.k,
        n_shards=args.shards,
        cache_capacity=args.cache_size if args.cache_size > 0 else None,
        staleness_budget=args.staleness_budget,
        feedback_rate=args.feedback_rate,
        seed=args.seed,
        telemetry_window=args.telemetry_window,
        telemetry_out=args.telemetry_out,
    )
    table = Table(
        ["metric", "value"],
        title="serve-bench — online serving vs full re-rank (n=%d, k=%d, shards=%d)"
        % (args.pages, args.k, args.shards),
    )
    for key in sorted(report):
        table.add_row(key, report[key])
    print(table.render())
    return 0


def run_chaos_bench(args: argparse.Namespace) -> int:
    """Replay a trace under a fault plan and print the recovery metrics."""
    from repro.robustness.chaos import pinned_fault_plan, run_chaos_benchmark
    from repro.robustness.faults import FaultPlan
    from repro.robustness.occ import RetryPolicy
    from repro.utils.tables import Table

    _apply_backend(args)
    if args.fault_plan is not None:
        plan = FaultPlan.load(args.fault_plan)
    else:
        plan = pinned_fault_plan(
            args.queries, args.shards, flush_every=args.chaos_flush
        )
    if args.save_fault_plan is not None:
        plan.save(args.save_fault_plan)
    retry = None
    if args.max_attempts is not None or args.backoff_base is not None:
        defaults = RetryPolicy()
        retry = RetryPolicy(
            max_attempts=(
                args.max_attempts
                if args.max_attempts is not None
                else defaults.max_attempts
            ),
            base_backoff_seconds=(
                args.backoff_base
                if args.backoff_base is not None
                else defaults.base_backoff_seconds
            ),
        )
    report = run_chaos_benchmark(
        n_pages=args.pages,
        n_queries=args.queries,
        k=args.k,
        n_shards=args.shards,
        cache_capacity=args.cache_size if args.cache_size > 0 else None,
        staleness_budget=args.staleness_budget,
        feedback_rate=args.feedback_rate,
        flush_every=args.chaos_flush,
        mode=args.chaos_mode,
        plan=plan,
        retry=retry,
        seed=args.seed,
        telemetry_window=args.telemetry_window,
        telemetry_out=args.telemetry_out,
    )
    table = Table(
        ["metric", "value"],
        title="chaos-bench — trace replay under faults (n=%d, q=%d, shards=%d, %s)"
        % (args.pages, args.queries, args.shards, args.chaos_mode),
    )
    for key in sorted(report):
        table.add_row(key, report[key])
    print(table.render())
    return 0


def run_sim_bench(args: argparse.Namespace) -> int:
    """Run the batch-engine throughput benchmark and print its metrics."""
    from repro.community.config import DEFAULT_COMMUNITY
    from repro.core.policy import RankPromotionPolicy
    from repro.simulation.bench import run_simulation_benchmark
    from repro.utils.tables import Table

    community = DEFAULT_COMMUNITY
    if args.sim_pages is not None:
        community = community.scaled(args.sim_pages)
    policy = {
        "selective": RankPromotionPolicy("selective", 1, 0.1),
        "uniform": RankPromotionPolicy("uniform", 1, 0.1),
        "none": RankPromotionPolicy("none", 1, 0.0),
    }[args.policy]
    _apply_backend(args)
    report = run_simulation_benchmark(
        community=community,
        policy=policy,
        replicates=args.replicates,
        baseline_replicates=args.baseline_replicates,
        warmup_days=args.sim_warmup,
        measure_days=args.sim_measure,
        mode=args.sim_mode,
        seed=args.seed,
        n_workers=args.workers,
        adaptive_rank=args.adaptive_rank,
        telemetry_window=args.telemetry_window,
        telemetry_out=args.telemetry_out,
    )
    table = Table(
        ["metric", "value"],
        title="sim-bench — batch engine vs looped simulator (n=%d, R=%d, %s)"
        % (community.n_pages, args.replicates, args.sim_mode),
    )
    for key in sorted(report):
        table.add_row(key, report[key])
    print(table.render())
    return 0


def run_sweep_bench(args: argparse.Namespace) -> int:
    """Run the batched serving-replay sweep benchmark and print its metrics."""
    from repro.serving.sweep import (
        parse_grid_values,
        run_sweep_benchmark,
        variant_grid,
    )
    from repro.utils.tables import Table

    variants = variant_grid(
        ks=parse_grid_values(args.grid_k, int, name="--grid-k", minimum=1),
        rs=parse_grid_values(
            args.grid_r, float, name="--grid-r", minimum=0.0, maximum=1.0
        ),
        staleness_budgets=parse_grid_values(
            args.grid_stale, int, name="--grid-stale", minimum=0
        ),
        shard_counts=parse_grid_values(
            args.grid_shards, int, name="--grid-shards", minimum=1
        ),
        cache_capacity=args.sweep_cache_size if args.sweep_cache_size > 0 else None,
    )
    _apply_backend(args)
    report = run_sweep_benchmark(
        n_pages=args.sweep_pages,
        n_queries=args.sweep_queries,
        variants=variants,
        seed=args.seed,
        feedback_rate=args.sweep_feedback_rate,
        flush_every=args.sweep_flush,
        day_every=args.sweep_day_every,
        n_workers=args.workers,
        telemetry_window=args.telemetry_window,
        telemetry_out=args.telemetry_out,
    )
    table = Table(
        ["metric", "value"],
        title="sweep-bench — lockstep sweep vs %d independent replays "
        "(n=%d, %d queries)"
        % (len(variants), args.sweep_pages, args.sweep_queries),
    )
    for key in sorted(report):
        table.add_row(key, report[key])
    print(table.render())
    return 0


def run_sweep_fig(args: argparse.Namespace) -> int:
    """Render the serving trade-off figures from one lockstep sweep run."""
    from repro.community.config import DEFAULT_COMMUNITY
    from repro.serving.figures import (
        sweep_tradeoff_figures,
        telemetry_series_figure,
    )
    from repro.serving.sweep import parse_grid_values, run_sweep, variant_grid
    from repro.serving.workload import (
        StreamingWorkload,
        WorkloadConfig,
        record_trace,
    )
    from repro.utils.rng import derive_seed

    variants = variant_grid(
        ks=parse_grid_values(args.grid_k, int, name="--grid-k", minimum=1),
        rs=parse_grid_values(
            args.grid_r, float, name="--grid-r", minimum=0.0, maximum=1.0
        ),
        staleness_budgets=parse_grid_values(
            args.grid_stale, int, name="--grid-stale", minimum=0
        ),
        shard_counts=parse_grid_values(
            args.grid_shards, int, name="--grid-shards", minimum=1
        ),
        cache_capacity=args.sweep_cache_size if args.sweep_cache_size > 0 else None,
    )
    _apply_backend(args)
    community = DEFAULT_COMMUNITY.scaled(args.sweep_pages)
    workload = StreamingWorkload(
        WorkloadConfig(
            n_distinct_queries=256,
            k=max(variant.k for variant in variants),
            feedback_rate=args.sweep_feedback_rate,
            flush_every=args.sweep_flush,
        ),
        seed=derive_seed(args.seed, "sweep-stream"),
    )
    trace = record_trace(workload, args.sweep_queries, day_every=args.sweep_day_every)

    recorder = None
    if args.telemetry_window is not None or args.telemetry_out is not None:
        from repro.telemetry import TelemetryRecorder

        recorder = TelemetryRecorder(
            window=args.telemetry_window or trace.flush_every,
            out=args.telemetry_out,
            label="sweep-fig",
        )
        recorder.install_kernel_spans()
    try:
        result = run_sweep(
            community,
            variants,
            trace,
            seed=args.seed,
            n_workers=args.workers,
            warm_awareness=True,
            telemetry=recorder,
        )
    finally:
        if recorder is not None:
            recorder.close()

    figures = sweep_tradeoff_figures(result)
    if recorder is not None:
        series = telemetry_series_figure(recorder.rows, kind="sweep")
        if series is not None:
            figures.append(series)
    for figure in figures:
        print(figure.render())
        print()
    print(
        "swept %d variants over %d recorded queries (%.2fs)"
        % (len(variants), args.sweep_queries, result.elapsed_seconds)
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in list_experiments():
            print(name)
        return 0

    if args.experiment == "serve-bench":
        started = time.time()
        code = run_serve_bench(args)
        print()
        print("completed serve-bench in %.1fs" % (time.time() - started))
        return code

    if args.experiment == "chaos-bench":
        started = time.time()
        code = run_chaos_bench(args)
        print()
        print("completed chaos-bench in %.1fs" % (time.time() - started))
        return code

    if args.experiment == "sim-bench":
        started = time.time()
        code = run_sim_bench(args)
        print()
        print("completed sim-bench in %.1fs" % (time.time() - started))
        return code

    if args.experiment == "sweep-bench":
        started = time.time()
        code = run_sweep_bench(args)
        print()
        print("completed sweep-bench in %.1fs" % (time.time() - started))
        return code

    if args.experiment == "sweep-fig":
        started = time.time()
        code = run_sweep_fig(args)
        print()
        print("completed sweep-fig in %.1fs" % (time.time() - started))
        return code

    try:
        driver = get_experiment(args.experiment)
    except KeyError as error:
        print(str(error), file=sys.stderr)
        return 2

    started = time.time()
    result = driver(scale=args.scale, seed=args.seed)
    elapsed = time.time() - started
    print(result.render())
    print()
    print("completed %s at scale %r in %.1fs" % (args.experiment, args.scale, elapsed))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
