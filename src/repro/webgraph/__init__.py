"""Web-graph substrate: link-based popularity signals on synthetic graphs.

The paper measures popularity by "in-link count, PageRank, user traffic, or
some other indicator"; its model abstracts all of them into the awareness x
quality popularity signal.  This package provides the concrete link-based
substrate so that the same ranking experiments can be driven by an explicit
evolving web graph instead of the abstract signal:

* our own PageRank power iteration and in-degree counters;
* synthetic web-graph generators (preferential attachment and copying
  model), both as pure-Python edge builders and as networkx graphs — the
  standard public-web-graph stand-ins;
* an evolving, search-influenced link-formation process in the spirit of
  Cho & Roy's study (new links are created toward pages in proportion to the
  visits a ranking sends to them), which lets the rank-promotion rankers be
  evaluated on a graph-backed popularity signal.
"""

from repro.webgraph.pagerank import pagerank, personalized_pagerank
from repro.webgraph.indegree import indegree_popularity, normalized_indegree
from repro.webgraph.generators import (
    copying_model_graph,
    preferential_attachment_graph,
    to_networkx,
)
from repro.webgraph.evolution import EvolvingWebGraph, GraphCommunitySimulator

__all__ = [
    "pagerank",
    "personalized_pagerank",
    "indegree_popularity",
    "normalized_indegree",
    "preferential_attachment_graph",
    "copying_model_graph",
    "to_networkx",
    "EvolvingWebGraph",
    "GraphCommunitySimulator",
]
