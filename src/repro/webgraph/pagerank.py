"""PageRank by power iteration.

Implemented directly on edge arrays (no networkx dependency in the hot path)
so the evolving-graph simulator can recompute scores cheaply after each batch
of link updates.  ``networkx`` graphs are accepted too and converted.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.utils.validation import check_positive_int, check_probability

DEFAULT_DAMPING = 0.85


def _edges_to_arrays(edges: Iterable[Tuple[int, int]], n: int):
    edges = np.asarray(list(edges), dtype=int).reshape(-1, 2)
    if edges.size and (edges.min() < 0 or edges.max() >= n):
        raise ValueError("edge endpoints must lie in [0, n)")
    return edges[:, 0], edges[:, 1]


def pagerank(
    edges: Iterable[Tuple[int, int]],
    n: int,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
    personalization: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Compute PageRank scores for a directed graph given as an edge list.

    Args:
        edges: iterable of ``(source, target)`` node-index pairs.
        n: number of nodes (node indices are ``0 .. n-1``).
        damping: probability of following a link (``1 - c`` with the paper's
            teleportation constant ``c = 0.15``).
        tolerance: L1 convergence threshold.
        max_iterations: iteration cap.
        personalization: optional teleport distribution; uniform if omitted.

    Returns:
        An array of ``n`` scores summing to one.
    """
    check_positive_int("n", n)
    check_probability("damping", damping)
    sources, targets = _edges_to_arrays(edges, n)

    out_degree = np.bincount(sources, minlength=n).astype(float)
    if personalization is None:
        teleport = np.full(n, 1.0 / n)
    else:
        teleport = np.asarray(personalization, dtype=float)
        if teleport.shape != (n,) or teleport.sum() <= 0:
            raise ValueError("personalization must be a non-negative n-vector with positive sum")
        teleport = teleport / teleport.sum()

    scores = teleport.copy()
    dangling = out_degree == 0
    for _ in range(max_iterations):
        contribution = np.where(dangling, 0.0, scores / np.maximum(out_degree, 1.0))
        incoming = np.bincount(targets, weights=contribution[sources], minlength=n)
        dangling_mass = scores[dangling].sum()
        new_scores = (1.0 - damping) * teleport + damping * (
            incoming + dangling_mass * teleport
        )
        if np.abs(new_scores - scores).sum() < tolerance:
            return new_scores
        scores = new_scores
    return scores


def personalized_pagerank(
    edges: Iterable[Tuple[int, int]],
    n: int,
    seeds: Iterable[int],
    damping: float = DEFAULT_DAMPING,
    **kwargs,
) -> np.ndarray:
    """PageRank with teleportation restricted to ``seeds`` (topic-sensitive)."""
    seeds = np.asarray(list(seeds), dtype=int)
    if seeds.size == 0:
        raise ValueError("seeds must be non-empty")
    personalization = np.zeros(n)
    personalization[seeds] = 1.0
    return pagerank(edges, n, damping=damping, personalization=personalization, **kwargs)


def pagerank_networkx(graph, damping: float = DEFAULT_DAMPING, **kwargs) -> np.ndarray:
    """PageRank of a ``networkx`` DiGraph whose nodes are ``0 .. n-1``."""
    n = graph.number_of_nodes()
    return pagerank(graph.edges(), n, damping=damping, **kwargs)


__all__ = ["pagerank", "personalized_pagerank", "pagerank_networkx", "DEFAULT_DAMPING"]
