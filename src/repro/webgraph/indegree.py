"""In-degree based popularity — the simplest link-count popularity signal."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.utils.validation import check_positive_int


def indegree_popularity(edges: Iterable[Tuple[int, int]], n: int) -> np.ndarray:
    """Raw in-link counts per node for a directed edge list."""
    check_positive_int("n", n)
    edges = np.asarray(list(edges), dtype=int).reshape(-1, 2)
    if edges.size and (edges.min() < 0 or edges.max() >= n):
        raise ValueError("edge endpoints must lie in [0, n)")
    return np.bincount(edges[:, 1], minlength=n).astype(float)


def normalized_indegree(edges: Iterable[Tuple[int, int]], n: int) -> np.ndarray:
    """In-degree scaled to ``[0, 1]`` by the maximum (all-zero stays all-zero)."""
    counts = indegree_popularity(edges, n)
    maximum = counts.max()
    if maximum <= 0:
        return counts
    return counts / maximum


__all__ = ["indegree_popularity", "normalized_indegree"]
