"""Evolving, search-influenced web graph (Cho & Roy style substrate).

The entrenchment story of the paper rests on a feedback loop: search engines
rank by link-based popularity, users discover pages through search results,
and users who like a page may link to it — which in turn raises its
popularity.  :class:`EvolvingWebGraph` implements that loop explicitly: each
step, new links are created toward pages in proportion to the visits the
current ranking sends to them (scaled by page quality, since users only link
to pages they like), pages are retired and replaced, and the popularity
signal (in-degree or PageRank) is recomputed.

:class:`GraphCommunitySimulator` wraps the evolving graph in the same
QPC-measurement loop the abstract simulator uses, so rank-promotion rankers
can be compared on a graph-backed popularity signal as an extension of the
paper's model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.community.config import CommunityConfig
from repro.core.rankers import Ranker
from repro.core.rankers_context import RankingContext
from repro.metrics.qpc import QPCAccumulator, ideal_qpc
from repro.utils.rng import RandomSource, as_rng
from repro.visits.attention import AttentionModel, PowerLawAttention
from repro.webgraph.pagerank import pagerank


@dataclass
class EvolvingWebGraph:
    """A fixed-size directed graph whose links evolve with user visits.

    Attributes:
        n: number of page slots.
        links_per_day: expected number of new links created per simulated day.
        popularity_signal: ``"indegree"`` or ``"pagerank"``.
        link_probability_scale: probability scale that a visit to a page of
            quality ``q`` produces a link (``q`` itself by default).
    """

    n: int
    links_per_day: float = 20.0
    popularity_signal: str = "indegree"
    link_probability_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.popularity_signal not in ("indegree", "pagerank"):
            raise ValueError("popularity_signal must be 'indegree' or 'pagerank'")
        self.sources: List[int] = []
        self.targets: List[int] = []
        self._indegree = np.zeros(self.n, dtype=float)

    # --- Link updates ------------------------------------------------------

    def add_links(self, targets: np.ndarray, rng: RandomSource = None) -> None:
        """Add one in-link to each target page (sources drawn uniformly)."""
        generator = as_rng(rng)
        targets = np.asarray(targets, dtype=int)
        for target in targets:
            source = int(generator.integers(0, self.n))
            self.sources.append(source)
            self.targets.append(int(target))
            self._indegree[target] += 1.0

    def create_links_from_visits(
        self, visits: np.ndarray, quality: np.ndarray, rng: RandomSource = None
    ) -> int:
        """Create new links toward visited-and-liked pages; return how many.

        The expected number of links is proportional to
        ``visits * quality * link_probability_scale`` renormalized to
        ``links_per_day``, mirroring the assumption that only users who like
        a page link to it.
        """
        generator = as_rng(rng)
        weights = np.asarray(visits, dtype=float) * np.asarray(quality, dtype=float)
        weights *= self.link_probability_scale
        total = weights.sum()
        if total <= 0:
            return 0
        count = generator.poisson(self.links_per_day)
        if count == 0:
            return 0
        chosen = generator.choice(self.n, size=count, p=weights / total)
        self.add_links(chosen, generator)
        return int(count)

    def retire_pages(self, indices: np.ndarray) -> None:
        """Drop all links pointing to or from retired page slots."""
        indices = set(int(i) for i in np.asarray(indices, dtype=int))
        if not indices:
            return
        kept_sources, kept_targets = [], []
        for source, target in zip(self.sources, self.targets, strict=True):
            if source in indices or target in indices:
                continue
            kept_sources.append(source)
            kept_targets.append(target)
        self.sources, self.targets = kept_sources, kept_targets
        self._indegree = np.bincount(
            np.asarray(self.targets, dtype=int), minlength=self.n
        ).astype(float)

    # --- Popularity --------------------------------------------------------

    def edges(self) -> List[Tuple[int, int]]:
        """Current edge list."""
        return list(zip(self.sources, self.targets, strict=True))

    def popularity(self) -> np.ndarray:
        """Popularity vector in ``[0, 1]`` according to the configured signal."""
        if self.popularity_signal == "indegree":
            maximum = self._indegree.max()
            return self._indegree / maximum if maximum > 0 else self._indegree.copy()
        if not self.sources:
            return np.zeros(self.n)
        scores = pagerank(self.edges(), self.n)
        maximum = scores.max()
        return scores / maximum if maximum > 0 else scores


class GraphCommunitySimulator:
    """QPC measurement loop over a graph-backed popularity signal.

    This is an *extension* of the paper's model: the abstract awareness
    signal is replaced by link accumulation, but ranking, visit allocation
    and page churn follow the same rules, so the effect of randomized rank
    promotion can be compared across the two substrates.
    """

    def __init__(
        self,
        community: CommunityConfig,
        ranker: Ranker,
        graph: Optional[EvolvingWebGraph] = None,
        attention: Optional[AttentionModel] = None,
        seed: RandomSource = None,
    ) -> None:
        self.community = community
        self.ranker = ranker
        self.attention = attention or PowerLawAttention()
        self._rng = as_rng(seed)
        self.graph = graph or EvolvingWebGraph(n=community.n_pages)
        self.quality = community.sample_qualities(self._rng)
        self.created_at = np.zeros(community.n_pages)
        self.day = 0

    def step(self) -> np.ndarray:
        """Advance one day; return the all-user visit allocation."""
        n = self.community.n_pages
        popularity = self.graph.popularity()
        # Awareness is not tracked on the graph substrate; zero in-degree is
        # the graph analogue of zero awareness for the selective rule.
        awareness = (popularity > 0).astype(float)
        context = RankingContext(
            popularity=popularity,
            awareness=awareness,
            quality=self.quality,
            ages=self.day - self.created_at,
        )
        ranking = self.ranker.rank(context, self._rng)
        shares = self.attention.visit_shares(n)
        visits = np.empty(n)
        visits[ranking] = shares * self.community.total_visit_rate
        self.graph.create_links_from_visits(visits, self.quality, self._rng)

        death_probability = 1.0 - np.exp(-self.community.death_rate)
        dying = np.flatnonzero(self._rng.random(n) < death_probability)
        if dying.size:
            self.graph.retire_pages(dying)
            self.created_at[dying] = self.day
        self.day += 1
        return visits

    def run(self, warmup_days: int, measure_days: int) -> dict:
        """Run and return absolute and normalized QPC over the measure window."""
        for _ in range(warmup_days):
            self.step()
        accumulator = QPCAccumulator()
        for _ in range(measure_days):
            visits = self.step()
            accumulator.update(visits, self.quality)
        absolute = accumulator.value
        ideal = ideal_qpc(self.quality, self.attention)
        return {
            "qpc_absolute": absolute,
            "qpc_normalized": absolute / ideal if ideal > 0 else 0.0,
            "days": warmup_days + measure_days,
            "links": len(self.graph.sources),
        }


__all__ = ["EvolvingWebGraph", "GraphCommunitySimulator"]
