"""Synthetic web-graph generators.

Public web crawls are not shipped with this package, so the standard
synthetic stand-ins are provided instead: preferential attachment (the
classic rich-get-richer model that yields power-law in-degree) and the
copying model (new pages copy a fraction of a prototype page's out-links).
Both return plain edge lists over integer node ids and can be converted to
``networkx`` directed graphs for interoperability.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive_int, check_probability


def preferential_attachment_graph(
    n: int,
    out_links: int = 5,
    seed_nodes: int = 5,
    rng: RandomSource = None,
) -> List[Tuple[int, int]]:
    """Directed preferential-attachment graph over nodes ``0 .. n-1``.

    Nodes arrive one at a time; each new node links to ``out_links`` existing
    nodes chosen with probability proportional to (1 + current in-degree),
    which produces a power-law in-degree distribution like the Web's.
    """
    check_positive_int("n", n)
    check_positive_int("out_links", out_links)
    check_positive_int("seed_nodes", seed_nodes)
    if seed_nodes >= n:
        raise ValueError("seed_nodes must be smaller than n")
    generator = as_rng(rng)

    edges: List[Tuple[int, int]] = []
    indegree = np.zeros(n, dtype=float)
    # Seed clique so early arrivals have someone to link to.
    for i in range(seed_nodes):
        for j in range(seed_nodes):
            if i != j:
                edges.append((i, j))
                indegree[j] += 1
    for node in range(seed_nodes, n):
        weights = 1.0 + indegree[:node]
        probabilities = weights / weights.sum()
        target_count = min(out_links, node)
        targets = generator.choice(node, size=target_count, replace=False, p=probabilities)
        for target in np.asarray(targets, dtype=int):
            edges.append((node, int(target)))
            indegree[target] += 1
    return edges


def copying_model_graph(
    n: int,
    out_links: int = 5,
    copy_probability: float = 0.5,
    seed_nodes: int = 5,
    rng: RandomSource = None,
) -> List[Tuple[int, int]]:
    """Directed copying-model graph over nodes ``0 .. n-1``.

    Each new node picks a random prototype; every one of its ``out_links``
    links copies the corresponding prototype link with ``copy_probability``
    and otherwise points to a uniformly random earlier node.  The copying
    model is the classic explanation for the Web's dense bipartite cores and
    also yields power-law in-degree.
    """
    check_positive_int("n", n)
    check_positive_int("out_links", out_links)
    check_probability("copy_probability", copy_probability)
    check_positive_int("seed_nodes", seed_nodes)
    if seed_nodes >= n:
        raise ValueError("seed_nodes must be smaller than n")
    generator = as_rng(rng)

    edges: List[Tuple[int, int]] = []
    out_neighbors: List[List[int]] = [[] for _ in range(n)]
    for i in range(seed_nodes):
        for j in range(seed_nodes):
            if i != j:
                edges.append((i, j))
                out_neighbors[i].append(j)
    for node in range(seed_nodes, n):
        prototype = int(generator.integers(0, node))
        prototype_links = out_neighbors[prototype]
        for slot in range(min(out_links, node)):
            if prototype_links and slot < len(prototype_links) and (
                generator.random() < copy_probability
            ):
                target = prototype_links[slot]
            else:
                target = int(generator.integers(0, node))
            if target == node:
                continue
            edges.append((node, target))
            out_neighbors[node].append(target)
    return edges


def to_networkx(edges: List[Tuple[int, int]], n: int):
    """Convert an edge list over ``0 .. n-1`` into a ``networkx.DiGraph``."""
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edges)
    return graph


__all__ = ["preferential_attachment_graph", "copying_model_graph", "to_networkx"]
