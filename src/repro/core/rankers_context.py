"""The snapshot of community state a ranker sees when producing a result list.

Kept in its own module (rather than inside ``rankers``) so that promotion
rules can depend on it without importing the ranker hierarchy, avoiding an
import cycle between ``repro.core.promotion`` and ``repro.core.rankers``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class RankingContext:
    """Everything a ranking method may consult about the current state.

    Attributes:
        popularity: per-page popularity ``P(p, t) = A(p, t) * Q(p)`` — the
            signal the search engine actually measures.
        awareness: per-page awareness among monitored users, used by the
            selective promotion rule.
        quality: per-page intrinsic quality; only the oracle ranker may use
            it (a real engine cannot observe quality directly).
        ages: per-page age in days, used by tie-breaking and by the
            age-based baselines; optional.
        popularity_history: optional ``(history_length, n)`` array of recent
            popularity snapshots, newest last, used by the derivative
            forecasting baseline.
        monitored_population: number of monitored users ``m``; lets promotion
            rules reason about awareness in units of users (needed so the
            selective rule keeps its meaning under fluid, fractional
            awareness updates).
    """

    popularity: np.ndarray
    awareness: np.ndarray
    quality: Optional[np.ndarray] = None
    ages: Optional[np.ndarray] = None
    popularity_history: Optional[np.ndarray] = None
    monitored_population: Optional[int] = None

    def __post_init__(self) -> None:
        self.popularity = np.asarray(self.popularity, dtype=float)
        self.awareness = np.asarray(self.awareness, dtype=float)
        if self.popularity.shape != self.awareness.shape:
            raise ValueError("popularity and awareness must have the same shape")
        if self.quality is not None:
            self.quality = np.asarray(self.quality, dtype=float)
            if self.quality.shape != self.popularity.shape:
                raise ValueError("quality must have the same shape as popularity")
        if self.ages is not None:
            self.ages = np.asarray(self.ages, dtype=float)
            if self.ages.shape != self.popularity.shape:
                raise ValueError("ages must have the same shape as popularity")

    @property
    def n(self) -> int:
        """Number of pages in the result set."""
        return int(self.popularity.size)

    @classmethod
    def from_pool(cls, pool, now: float = 0.0, popularity_history=None) -> "RankingContext":
        """Build a context from a :class:`~repro.community.PagePool`."""
        return cls(
            popularity=pool.popularity,
            awareness=pool.awareness,
            quality=pool.quality,
            ages=pool.ages(now),
            popularity_history=popularity_history,
            monitored_population=pool.monitored_population,
        )


class BatchRankingContext:
    """Ranking state for ``R`` replicate communities as ``(R, n)`` arrays.

    The batched counterpart of :class:`RankingContext`: every attribute is a
    matrix whose row ``r`` is replicate ``r``'s vector.  Ages are computed
    lazily from creation times because the common promotion rules and the
    random tie-breaker never consult them.

    ``popularity_history`` is, when present, a ``(history_length, R, n)``
    array of recent popularity snapshots (newest last), sliced per row for
    the fallback path.

    ``prev_order`` is an optional ``(R, n)`` adaptive-ranking hint: each
    row's *deterministic* permutation from the previous day of the same
    community.  Built-in rankers pass it through to the kernel layer's
    ``rank_day`` (which merges surviving sorted runs on near-sorted days
    and falls back to the full sort otherwise — bit-identical either way)
    and record the deterministic order they computed on
    ``deterministic_order``, so a day-stepping caller can chain hints from
    step to step.  Custom rankers may ignore both attributes freely.
    """

    def __init__(
        self,
        popularity: np.ndarray,
        awareness: np.ndarray,
        quality: Optional[np.ndarray] = None,
        created_at: Optional[np.ndarray] = None,
        now: float = 0.0,
        popularity_history: Optional[np.ndarray] = None,
        monitored_population: Optional[int] = None,
        prev_order: Optional[np.ndarray] = None,
    ) -> None:
        self.popularity = np.asarray(popularity, dtype=float)
        self.awareness = np.asarray(awareness, dtype=float)
        if self.popularity.ndim != 2 or self.popularity.shape != self.awareness.shape:
            raise ValueError("popularity and awareness must be equal (R, n) matrices")
        self.quality = quality
        self.created_at = created_at
        self.now = float(now)
        self.popularity_history = popularity_history
        self.monitored_population = monitored_population
        self.prev_order = prev_order
        #: Set by built-in rankers after ranking: the deterministic order
        #: they produced, usable as the next day's ``prev_order`` hint.
        self.deterministic_order: Optional[np.ndarray] = None
        self._ages: Optional[np.ndarray] = None

    @property
    def replicates(self) -> int:
        """Number of replicate rows ``R``."""
        return int(self.popularity.shape[0])

    @property
    def n(self) -> int:
        """Number of pages per replicate."""
        return int(self.popularity.shape[1])

    @property
    def ages(self) -> Optional[np.ndarray]:
        """Page ages per replicate, computed on first access."""
        if self._ages is None and self.created_at is not None:
            self._ages = np.maximum(0.0, self.now - self.created_at)
        return self._ages

    def row(self, index: int) -> RankingContext:
        """A per-replicate :class:`RankingContext` view (fallback path)."""
        history = self.popularity_history
        return RankingContext(
            popularity=self.popularity[index],
            awareness=self.awareness[index],
            quality=None if self.quality is None else self.quality[index],
            ages=None if self.ages is None else self.ages[index],
            popularity_history=(
                None if history is None else history[:, index, :]
            ),
            monitored_population=self.monitored_population,
        )

    @classmethod
    def from_batch_pool(
        cls, pool, now: float = 0.0, popularity_history=None, prev_order=None
    ) -> "BatchRankingContext":
        """Build a batch context from a :class:`~repro.community.BatchPagePool`."""
        awareness = pool.awareness  # one (R, n) pass, reused for popularity
        return cls(
            popularity=awareness * pool.quality,
            awareness=awareness,
            quality=pool.quality,
            created_at=pool.created_at,
            now=now,
            popularity_history=popularity_history,
            monitored_population=pool.monitored_population,
            prev_order=prev_order,
        )


__all__ = ["RankingContext", "BatchRankingContext"]
