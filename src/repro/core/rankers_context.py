"""The snapshot of community state a ranker sees when producing a result list.

Kept in its own module (rather than inside ``rankers``) so that promotion
rules can depend on it without importing the ranker hierarchy, avoiding an
import cycle between ``repro.core.promotion`` and ``repro.core.rankers``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class RankingContext:
    """Everything a ranking method may consult about the current state.

    Attributes:
        popularity: per-page popularity ``P(p, t) = A(p, t) * Q(p)`` — the
            signal the search engine actually measures.
        awareness: per-page awareness among monitored users, used by the
            selective promotion rule.
        quality: per-page intrinsic quality; only the oracle ranker may use
            it (a real engine cannot observe quality directly).
        ages: per-page age in days, used by tie-breaking and by the
            age-based baselines; optional.
        popularity_history: optional ``(history_length, n)`` array of recent
            popularity snapshots, newest last, used by the derivative
            forecasting baseline.
        monitored_population: number of monitored users ``m``; lets promotion
            rules reason about awareness in units of users (needed so the
            selective rule keeps its meaning under fluid, fractional
            awareness updates).
    """

    popularity: np.ndarray
    awareness: np.ndarray
    quality: Optional[np.ndarray] = None
    ages: Optional[np.ndarray] = None
    popularity_history: Optional[np.ndarray] = None
    monitored_population: Optional[int] = None

    def __post_init__(self) -> None:
        self.popularity = np.asarray(self.popularity, dtype=float)
        self.awareness = np.asarray(self.awareness, dtype=float)
        if self.popularity.shape != self.awareness.shape:
            raise ValueError("popularity and awareness must have the same shape")
        if self.quality is not None:
            self.quality = np.asarray(self.quality, dtype=float)
            if self.quality.shape != self.popularity.shape:
                raise ValueError("quality must have the same shape as popularity")
        if self.ages is not None:
            self.ages = np.asarray(self.ages, dtype=float)
            if self.ages.shape != self.popularity.shape:
                raise ValueError("ages must have the same shape as popularity")

    @property
    def n(self) -> int:
        """Number of pages in the result set."""
        return int(self.popularity.size)

    @classmethod
    def from_pool(cls, pool, now: float = 0.0, popularity_history=None) -> "RankingContext":
        """Build a context from a :class:`~repro.community.PagePool`."""
        return cls(
            popularity=pool.popularity,
            awareness=pool.awareness,
            quality=pool.quality,
            ages=pool.ages(now),
            popularity_history=popularity_history,
            monitored_population=pool.monitored_population,
        )


__all__ = ["RankingContext"]
