"""Ranking methods: deterministic popularity ranking, randomized rank
promotion, and the reference rankers used for evaluation.

Every ranker maps a :class:`~repro.core.rankers_context.RankingContext` to a
permutation of page indices (rank 1 first).

Tie-breaking matters much more than it may appear: popularity measured over
``m`` monitored users is heavily discretized, and the thousands of pages tied
at popularity zero would all be buried at the bottom under a fixed order.
The default breaks ties *uniformly at random on every ranking call*, which
matches the analytical model's assumption that a zero-popularity page sits at
the expected rank of its tie group and models the measurement noise a real
popularity signal would have.  The live study's older-pages-first rule is
available as ``tie_breaker="age"``, and a fully deterministic index order as
``tie_breaker="index"``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.batch_rank import (
    TIE_BREAKERS,
    batched_deterministic_order,
    batched_promotion_merge,
)
from repro.core.merge import randomized_merge
from repro.core.promotion import NoPromotionRule, PromotionRule, SelectivePromotionRule
from repro.core.rankers_context import BatchRankingContext, RankingContext
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_probability


class Ranker(abc.ABC):
    """A search-result ranking method."""

    @abc.abstractmethod
    def rank(self, context: RankingContext, rng: RandomSource = None) -> np.ndarray:
        """Return page indices ordered from rank 1 to rank ``n``."""

    def rank_batch(
        self,
        context: BatchRankingContext,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Rank ``R`` replicate communities at once; returns ``(R, n)`` orders.

        Row ``r`` must equal ``self.rank(context.row(r), rngs[r])`` bit for
        bit, consuming ``rngs[r]`` exactly as the sequential call would.
        This default implementation does precisely that, one row at a time,
        so any custom :class:`Ranker` works with the batch engine unchanged;
        the built-in rankers override it with vectorized kernels.
        """
        rows: List[np.ndarray] = [
            self.rank(context.row(row), rngs[row])
            for row in range(context.replicates)
        ]
        return np.asarray(rows, dtype=np.intp)

    @property
    def is_randomized(self) -> bool:
        """Whether repeated calls with the same context can return different lists."""
        return False

    def describe(self) -> str:
        """Short description used in experiment reports."""
        return type(self).__name__


def _deterministic_order(
    scores: np.ndarray,
    ages: Optional[np.ndarray],
    tie_breaker: str = "random",
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sort descending by score with the requested tie-breaking rule.

    ``numpy.lexsort`` sorts ascending by the last key first, so keys are
    negated where a descending order is wanted.

    The random tie-breaker requires the caller's generator: every ranking
    call sits inside a seeded simulation or serving stream, and silently
    falling back to fresh entropy here would make seed-equal runs diverge.
    """
    scores = np.asarray(scores, dtype=float)
    n = scores.size
    if tie_breaker == "random":
        if rng is None:
            raise ValueError(
                "tie_breaker='random' requires the caller's random generator; "
                "pass rng explicitly (e.g. via repro.utils.rng.as_rng)"
            )
        tie_key = rng.random(n)
        return np.lexsort((tie_key, -scores))
    if tie_breaker == "age":
        ages = np.zeros(n) if ages is None else np.asarray(ages, dtype=float)
        return np.lexsort((np.arange(n), -ages, -scores))
    if tie_breaker == "index":
        return np.lexsort((np.arange(n), -scores))
    raise ValueError("tie_breaker must be one of %s, got %r" % (TIE_BREAKERS, tie_breaker))


@dataclass(frozen=True)
class PopularityRanker(Ranker):
    """Non-randomized ranking: strictly descending popularity.

    This is the paper's baseline ("no randomization"): the ranking a
    popularity-driven search engine produces when it never explores.
    """

    tie_breaker: str = "random"

    def __post_init__(self) -> None:
        if self.tie_breaker not in TIE_BREAKERS:
            raise ValueError("tie_breaker must be one of %s" % (TIE_BREAKERS,))

    @property
    def is_randomized(self) -> bool:
        return self.tie_breaker == "random"

    def rank(self, context: RankingContext, rng: RandomSource = None) -> np.ndarray:
        return _deterministic_order(
            context.popularity, context.ages, self.tie_breaker, as_rng(rng)
        )

    def rank_batch(
        self,
        context: BatchRankingContext,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        ages = context.ages if self.tie_breaker == "age" else None
        orders = batched_deterministic_order(
            context.popularity, ages, self.tie_breaker, rngs,
            prev_perm=context.prev_order,
        )
        context.deterministic_order = orders
        return orders

    def describe(self) -> str:
        return "No randomization"


@dataclass(frozen=True)
class RandomizedPromotionRanker(Ranker):
    """Randomized rank promotion (the paper's proposal, Section 4).

    A promotion rule selects the pool ``P_p``; the pool is shuffled and
    merged into the deterministic popularity ranking using the starting
    point ``k`` and degree of randomization ``r``.
    """

    promotion_rule: PromotionRule = field(default_factory=SelectivePromotionRule)
    k: int = 1
    r: float = 0.1
    tie_breaker: str = "random"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1, got %d" % self.k)
        check_probability("r", self.r)
        if self.tie_breaker not in TIE_BREAKERS:
            raise ValueError("tie_breaker must be one of %s" % (TIE_BREAKERS,))

    @property
    def is_randomized(self) -> bool:
        return True

    def rank(self, context: RankingContext, rng: RandomSource = None) -> np.ndarray:
        generator = as_rng(rng)
        promoted_mask = np.asarray(self.promotion_rule.select(context, generator), dtype=bool)
        if promoted_mask.shape != (context.n,):
            raise ValueError("promotion rule returned a mask of the wrong shape")
        order = _deterministic_order(
            context.popularity, context.ages, self.tie_breaker, generator
        )
        deterministic = order[~promoted_mask[order]]
        promoted = order[promoted_mask[order]]
        if promoted.size == 0 or self.r == 0.0:
            return order
        return randomized_merge(deterministic, promoted, self.k, self.r, generator)

    def rank_batch(
        self,
        context: BatchRankingContext,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        promoted_mask = np.asarray(
            self.promotion_rule.select_batch(context, rngs), dtype=bool
        )
        if promoted_mask.shape != context.popularity.shape:
            raise ValueError("promotion rule returned a mask of the wrong shape")
        ages = context.ages if self.tie_breaker == "age" else None
        orders = batched_deterministic_order(
            context.popularity, ages, self.tie_breaker, rngs,
            prev_perm=context.prev_order,
        )
        context.deterministic_order = orders
        if self.r == 0.0:
            return orders
        return batched_promotion_merge(orders, promoted_mask, self.k, self.r, rngs)

    def describe(self) -> str:
        return "Randomized(%s, k=%d, r=%.2f)" % (
            self.promotion_rule.describe(), self.k, self.r,
        )


def selective_ranker(r: float = 0.1, k: int = 1) -> RandomizedPromotionRanker:
    """Convenience constructor for selective randomized rank promotion."""
    return RandomizedPromotionRanker(SelectivePromotionRule(), k=k, r=r)


def uniform_ranker(r: float = 0.1, k: int = 1) -> RandomizedPromotionRanker:
    """Convenience constructor for uniform randomized rank promotion.

    Following the paper, the per-page promotion probability equals the merge
    bias ``r``.
    """
    from repro.core.promotion import UniformPromotionRule

    return RandomizedPromotionRanker(UniformPromotionRule(r), k=k, r=r)


@dataclass(frozen=True)
class QualityOracleRanker(Ranker):
    """Ranks by intrinsic quality — the unattainable ideal used to normalize QPC."""

    def rank(self, context: RankingContext, rng: RandomSource = None) -> np.ndarray:
        if context.quality is None:
            raise ValueError("QualityOracleRanker requires quality in the context")
        return _deterministic_order(context.quality, context.ages, "index")

    def rank_batch(
        self,
        context: BatchRankingContext,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        if context.quality is None:
            raise ValueError("QualityOracleRanker requires quality in the context")
        orders = batched_deterministic_order(
            context.quality, None, "index", rngs, prev_perm=context.prev_order
        )
        context.deterministic_order = orders
        return orders

    def describe(self) -> str:
        return "Quality oracle"


@dataclass(frozen=True)
class RandomRanker(Ranker):
    """Fully random ranking — the other extreme of the exploration spectrum."""

    @property
    def is_randomized(self) -> bool:
        return True

    def rank(self, context: RankingContext, rng: RandomSource = None) -> np.ndarray:
        return as_rng(rng).permutation(context.n)

    def rank_batch(
        self,
        context: BatchRankingContext,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        n = context.n
        return np.asarray(
            [as_rng(rng).permutation(n) for rng in rngs], dtype=np.intp
        )

    def describe(self) -> str:
        return "Fully random"


@dataclass(frozen=True)
class NoPromotionRanker(RandomizedPromotionRanker):
    """Randomized ranker configured with an empty pool; behaves deterministically.

    Useful in sweeps over ``r`` where ``r = 0`` should fall back to the
    non-randomized baseline through the exact same code path.
    """

    promotion_rule: PromotionRule = field(default_factory=NoPromotionRule)
    r: float = 0.0


__all__ = [
    "Ranker",
    "RankingContext",
    "PopularityRanker",
    "RandomizedPromotionRanker",
    "QualityOracleRanker",
    "RandomRanker",
    "NoPromotionRanker",
    "selective_ranker",
    "uniform_ranker",
]
