"""The formal kernel API every compute backend implements.

Every hot path of the repository — the ``(R, n)`` batch-simulation day
step, the lockstep sweep's flush-window advance, and the serving order
maintenance — decomposes into six array kernels:

``rank_day``
    Batched descending popularity order with exact tie-breaking (the PR 2
    "batched quicksort + tie-run repair" construction).
``awareness_update``
    One day's awareness gain applied in place over ``(R, n)`` state.
``visit_allocate``
    Attention shares scattered to page indices (plus the optional surfing
    blend) and the monitored-visit allocation derived from them.
``promotion_merge``
    The batched randomized promotion merge over full rankings.
``lane_repair``
    Grouped merge-repair of maintained serving orders — the sweep's stale
    lanes repaired as one batched call instead of lane by lane.
``feedback_flush``
    The fluid-mode sparse feedback update over flat (possibly stacked)
    awareness/popularity state.

plus one documented composite, :meth:`KernelBackend.day_tail`, covering
everything a batch-simulation day does after the ranking is known.  The
composite exists because a fusing backend (numba) wants to run the whole
post-ranking tail as one loop nest rather than as two kernel calls; the
base-class default simply chains ``visit_allocate`` and
``awareness_update`` so non-fusing backends get it for free.

The parity contract is the repository-wide one: whatever backend executes
a kernel, the result must be **bit-identical** to the numpy reference
(``repro.core.kernels.numpy_backend``), which is itself bit-identical to
the sequential per-community code by construction.  The contract is
achievable because every random draw is *parity-mandated to stay in
numpy*: backends receive the caller's ``numpy.random.Generator`` objects
and must consume them through the shared helpers here (or ``super()``), so
only deterministic array math is ever reimplemented.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

import numpy as np

TIE_BREAKERS = ("random", "age", "index")

VALID_KERNELS = (
    "rank_day",
    "awareness_update",
    "visit_allocate",
    "promotion_merge",
    "lane_repair",
    "feedback_flush",
)


def check_tie_breaker(tie_breaker: str) -> None:
    """Reject tie-break rules outside :data:`TIE_BREAKERS`."""
    if tie_breaker not in TIE_BREAKERS:
        raise ValueError(
            "tie_breaker must be one of %s, got %r" % (TIE_BREAKERS, tie_breaker)
        )


def draw_tie_keys(
    rngs: Sequence[np.random.Generator],
    shape: Tuple[int, int],
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-row uniform tie keys, drawn exactly as the sequential path draws.

    Parity-mandated RNG: every backend funnels its ``"random"`` tie-break
    draws through this one helper so row ``r`` consumes ``rngs[r]``
    identically to ``_deterministic_order(..., rng=rngs[r])`` — one
    ``random(n)`` call per row — regardless of which backend sorts.
    """
    R, n = shape
    tie_keys = out if out is not None else np.empty((R, n), dtype=float)
    if tie_keys.shape != (R, n):
        raise ValueError("out_tie_keys must have shape (%d, %d)" % (R, n))
    for row in range(R):
        rngs[row].random(out=tie_keys[row])
    return tie_keys


class RankRouteStats:
    """Cumulative per-row counters for the adaptive ``rank_day`` router.

    One module-level instance (:data:`ROUTE_STATS`) is shared by every
    backend: the numba backend updates the same object, so callers
    (benches, :class:`~repro.simulation.batch.BatchSimulator` telemetry,
    sweep resorts) sample route mix without caring which backend ran.
    Counters only ever increase; callers snapshot before/after a region
    and difference the totals.  ``displacement_sum``/``displacement_max``
    track the estimated (numpy) or realized (numba) per-row displacement
    bound of rows that took the windowed route.
    """

    __slots__ = (
        "copy",
        "run_merge",
        "windowed",
        "full",
        "displacement_sum",
        "displacement_max",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.copy = 0
        self.run_merge = 0
        self.windowed = 0
        self.full = 0
        self.displacement_sum = 0
        self.displacement_max = 0

    def record_windowed(self, rows: int, displacement_sum: int, displacement_max: int) -> None:
        self.windowed += rows
        self.displacement_sum += displacement_sum
        if displacement_max > self.displacement_max:
            self.displacement_max = displacement_max

    def as_dict(self) -> dict:
        return {
            "rank_route_copy": self.copy,
            "rank_route_run_merge": self.run_merge,
            "rank_route_windowed": self.windowed,
            "rank_route_full": self.full,
            "rank_displacement_sum": self.displacement_sum,
            "rank_displacement_max": self.displacement_max,
        }


#: The shared route-mix counter (see :class:`RankRouteStats`).
ROUTE_STATS = RankRouteStats()


def merge_repair(
    order: np.ndarray,
    popularity: np.ndarray,
    dirty: np.ndarray,
    scratch: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact O(n + d log d) merge repair of one maintained descending order.

    The single-lane reference shared by ``ServingEngine._repair_order`` and
    the grouped :meth:`NumpyKernelBackend.lane_repair` kernel — one
    implementation, so lane-by-lane and grouped repairs cannot drift.  The
    ``dirty`` pages are extracted, sorted by descending popularity (stable
    over their ascending page index), and merged back *after* their
    equal-popularity keeps (``side="right"``), which is where a re-sorted
    tie group would place them.

    Returns ``(merged_order, scratch)``; ``scratch`` is the reusable
    all-``False`` boolean mask, handed back so hot callers can keep it.
    """
    n = order.size
    if scratch is None or scratch.size != n:
        scratch = np.zeros(n, dtype=bool)
    scratch[dirty] = True
    keep = order[~scratch[order]]
    scratch[dirty] = False  # leave the scratch clean for the next repair
    moved = dirty[np.argsort(-popularity[dirty], kind="stable")]
    positions = np.searchsorted(-popularity[keep], -popularity[moved], side="right")
    # Equivalent to np.insert(keep, positions, moved) — positions are
    # nondecreasing (moved is sorted), so each inserted element lands at
    # its original position plus the number of insertions before it —
    # without np.insert's generic-case overhead on the serving hot path.
    merged = np.empty(n, dtype=order.dtype)
    slots = positions + np.arange(moved.size)
    keep_mask = np.ones(n, dtype=bool)
    keep_mask[slots] = False
    merged[slots] = moved
    merged[keep_mask] = keep
    return merged, scratch


class KernelBackend(abc.ABC):
    """Dispatch target for the six day-step/serving kernels.

    Implementations are stateless singletons registered in
    :mod:`repro.core.kernels`; callers obtain the active one with
    ``get_backend()`` and never instantiate backends directly.
    """

    #: Registry name (``"numpy"``, ``"numba"``, ...).
    name: str = "abstract"

    # ------------------------------------------------------------- kernels

    @abc.abstractmethod
    def rank_day(
        self,
        scores: np.ndarray,
        ages: Optional[np.ndarray],
        tie_breaker: str,
        rngs: Sequence[np.random.Generator],
        out_tie_keys: Optional[np.ndarray] = None,
        prev_perm: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batched descending order over ``(R, n)`` scores with exact ties.

        Row ``r`` must equal ``np.lexsort`` over the sequential composite
        key (see ``repro.core.rankers._deterministic_order``) bit for bit,
        consuming ``rngs[r]`` via :func:`draw_tie_keys` when
        ``tie_breaker == "random"``.

        ``prev_perm`` is an optional ``(R, n)`` permutation hint — row
        ``r``'s ranking from the *previous* day.  Popularity drifts slowly
        between days, so yesterday's order viewed under today's scores is
        often a small number of sorted runs; a backend may then build the
        new permutation by merging those runs instead of re-sorting from
        scratch.  When the day is instead *densely* perturbed — too many
        runs to merge, but every page displaced by at most ``d`` ranks (the
        fluid steady state) — a backend may estimate ``d`` from the hint
        and sort overlapping width-``2d`` windows along yesterday's order
        (the displacement-bounded windowed route), verifying the bound
        after the fact.  The hint never changes the result: the permutation
        contract above is bit-identical with or without it (any sort order
        within equal primary keys is normalized by the exact tie repair),
        and a backend must fall back to the full sort whenever the hint is
        not actually near-sorted or a row violates its displacement bound.
        Tie-key draws are taken *before* the sort path is chosen, so RNG
        consumption is hint-independent.  Route choices and realized
        displacement bounds are accounted per row in
        :data:`repro.core.kernels.api.ROUTE_STATS` (shared by all
        backends).
        """

    @abc.abstractmethod
    def awareness_update(
        self,
        aware_count: np.ndarray,
        monitored_population: int,
        monitored_visits: np.ndarray,
        mode: str,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Apply one day's awareness gain in place; returns ``aware_count``.

        Fluid mode is the elementwise expectation
        ``min(m, a + (m - a) * (1 - (1 - 1/m)**v))``; stochastic mode draws
        row ``r``'s binomials from ``rngs[r]`` exactly as
        :func:`repro.community.page.awareness_gain_batch` does.
        """

    @abc.abstractmethod
    def visit_allocate(
        self,
        rankings: np.ndarray,
        shares_by_rank: np.ndarray,
        rate: float,
        mode: str,
        rngs: Sequence[np.random.Generator],
        surfing_fraction: float = 0.0,
        surf_shares: Optional[np.ndarray] = None,
        out_shares: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Scatter rank shares to pages and allocate monitored visits.

        Returns ``(shares, monitored_visits)``, both ``(R, n)``.  With a
        non-zero ``surfing_fraction`` the scattered shares are blended with
        the precomputed ``surf_shares`` matrix exactly as
        :func:`repro.visits.allocation.rank_visit_shares_batch` blends.
        """

    @abc.abstractmethod
    def promotion_merge(
        self,
        perms: np.ndarray,
        promoted_mask: np.ndarray,
        k: int,
        r: float,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Batched randomized promotion merge; row-wise ``randomized_merge``."""

    @abc.abstractmethod
    def lane_repair(
        self,
        orders: Sequence[np.ndarray],
        popularity: Sequence[np.ndarray],
        dirty: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        """Grouped merge-repair of maintained descending orders.

        One batched call repairs every lane of one community size: lane
        ``i``'s repaired order must be bit-identical to the sequential
        O(n + d log d) repair of ``ServingEngine._repair_order`` — extract
        the ``dirty[i]`` pages, sort them by ``-popularity[i]`` (stable
        over ascending page index), and merge them back after their equal-
        popularity keeps.  Callers guarantee ``0 < dirty[i].size < n // 2``
        (larger dirty sets take the full re-sort path through
        :meth:`rank_day`) and equal ``n`` across the call.
        """

    @abc.abstractmethod
    def feedback_flush(
        self,
        aware: np.ndarray,
        popularity: np.ndarray,
        quality: np.ndarray,
        dirty: np.ndarray,
        touched: np.ndarray,
        summed: np.ndarray,
        monitored_population: int,
    ) -> None:
        """Fluid-mode sparse feedback over flat state, in place.

        ``touched`` holds unique flat indices (a stacked lane group uses
        ``row * n + page`` keys over raveled matrices) and ``summed`` the
        per-index visit totals.  Applies the fluid awareness gain, refreshes
        the materialized popularity, and marks the dirty flags; version
        bumps stay with the caller.
        """

    # ----------------------------------------------------------- composite

    def day_tail(
        self,
        rankings: np.ndarray,
        shares_by_rank: np.ndarray,
        rate: float,
        mode: str,
        rngs: Sequence[np.random.Generator],
        aware_count: np.ndarray,
        monitored_population: int,
        surfing_fraction: float = 0.0,
        surf_shares: Optional[np.ndarray] = None,
        out_shares: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Everything a batch-simulation day does after ranking; returns shares.

        The default chains :meth:`visit_allocate` and
        :meth:`awareness_update`; fusing backends override it to run the
        whole fluid tail — share scatter, surfing blend, visit allocation,
        awareness gain, clip — as one loop nest.  ``aware_count`` is
        updated in place either way.
        """
        shares, monitored = self.visit_allocate(
            rankings,
            shares_by_rank,
            rate,
            mode,
            rngs,
            surfing_fraction=surfing_fraction,
            surf_shares=surf_shares,
            out_shares=out_shares,
        )
        self.awareness_update(
            aware_count, monitored_population, monitored, mode, rngs
        )
        return shares

    # ------------------------------------------------------------- utility

    def warmup(self) -> None:
        """Pre-compile / pre-allocate whatever the backend needs (no-op here).

        Benchmarks call this before timing so JIT compilation of a
        compiling backend never lands inside a measured region.
        """

    def describe(self) -> str:
        """Short human-readable backend tag."""
        return self.name


__all__ = [
    "KernelBackend",
    "RankRouteStats",
    "ROUTE_STATS",
    "TIE_BREAKERS",
    "VALID_KERNELS",
    "check_tie_breaker",
    "draw_tie_keys",
    "merge_repair",
]
