"""Optional numba backend: the batch day's elementwise passes, fused.

Importing this module requires the optional ``numba`` package; the
registry (:func:`repro.core.kernels.get_backend`) import-guards it and
degrades to the numpy reference with a single warning when it is missing,
so numba is never a hard dependency.

Fusion strategy (the ROADMAP's "JIT day kernel"): the ~30 elementwise
numpy passes of one ``(R, n)`` batch day collapse into a handful of
``@njit(parallel=True)`` loop nests —

* the post-ranking **day tail** (attention-share scatter, surfing blend,
  monitored-visit allocation, awareness gain, clip) runs as two fused
  nests around one numpy ``pow`` ufunc call instead of ~12 array passes;
* the **tie-run repair** of the batched ranking drops the Python
  per-row/per-run loop (in steady state every replicate carries one large
  zero-popularity tie group, so this loop runs every day);
* the **promotion merge** replaces the stable ``(R, n)`` argsort partition
  with a single linear pass per row and the eight-pass clipped-cumsum
  bookkeeping with one sequential scan per row;
* the sweep's **grouped lane repair** and **feedback flush** run their
  gather/merge/scatter per lane (or per touched page) inside one nest.

The parity contract is inherited, not re-proven: this class subclasses
:class:`~repro.core.kernels.numpy_backend.NumpyKernelBackend` and only
overrides deterministic array math.  Every random draw — tie keys, pool
shuffles, merge coins, stochastic multinomials/binomials — still executes
in the shared numpy method bodies, in the same order, from the same
generators; the awareness ``pow`` pass likewise stays on the numpy ufunc,
because numpy's SIMD float64 ``pow`` and libm's ``pow`` (what ``**``
lowers to under numba) differ in the last ulp; and the remaining fused
float expressions replicate the reference operation trees term for term
(scalar ``1 - 1/m`` hoisted exactly as the ufunc expression hoists it),
so results are bit-identical to the numpy backend.  Stochastic-mode tails
and any input whose dtype/layout the JIT kernels do not cover delegate to
``super()`` outright.  ``fastmath`` stays **off** everywhere: reordering
float arithmetic would break bit parity for a few percent of throughput.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

try:
    from numba import njit, prange
except ImportError as error:  # pragma: no cover - exercised via the registry
    raise ImportError(
        "the numba kernel backend requires the optional 'numba' package "
        "(pip install -r requirements-numba.txt): %s" % error
    ) from error

from repro.core.kernels.api import KernelBackend
from repro.core.kernels.numpy_backend import NumpyKernelBackend


def _f64c(array: np.ndarray) -> bool:
    return array.dtype == np.float64 and array.flags.c_contiguous


@njit(cache=True, parallel=True)
def _repair_tie_runs_nb(perm, sorted_keys, keys, use_keys):  # pragma: no cover
    R, n = perm.shape
    for row in prange(R):
        j = 0
        while j < n - 1:
            if sorted_keys[row, j] == sorted_keys[row, j + 1]:
                b = j + 2
                while b < n and sorted_keys[row, b] == sorted_keys[row, j]:
                    b += 1
                size = b - j
                members = np.sort(perm[row, j:b])
                if use_keys:
                    gathered = np.empty(size, dtype=np.float64)
                    for t in range(size):
                        gathered[t] = keys[row, members[t]]
                    idx = np.argsort(gathered, kind="mergesort")
                    for t in range(size):
                        perm[row, j + t] = members[idx[t]]
                else:
                    for t in range(size):
                        perm[row, j + t] = members[t]
                j = b
            else:
                j += 1


#: Route codes written by :func:`_rank_adaptive_nb`, matching the numpy
#: router's four-way split (see ``NumpyKernelBackend._rank_adaptive``).
ROUTE_COPY = 0
ROUTE_RUN_MERGE = 1
ROUTE_FULL = 2
ROUTE_WINDOWED = 3


@njit(cache=True, parallel=True)
def _rank_adaptive_nb(negated, prev_perm, max_moved, max_shift, out, route, shifts):  # pragma: no cover
    # The adaptive rank_day as one fused nest per row: detect run
    # boundaries in yesterday's order under today's keys, extract the
    # break-adjacent moved set, verify the remaining spine stayed sorted,
    # and two-pointer-merge the sorted moved pages back in after their
    # equal keys (the side="right" convention of the numpy reference).
    # Rows that decline the run merge (too many boundaries, or a displaced
    # block the extraction could not heal) try the displacement-bounded
    # route instead: a bounded insertion pass along yesterday's order —
    # the fused equivalent of the numpy backend's windowed block sorts —
    # that aborts to the caller's batched argsort the moment any single
    # insertion must shift further than ``max_shift``.  Unlike the numpy
    # route the realized shift *is* the exact displacement, so no
    # post-sort verification is needed; ``shifts[row]`` reports it.
    R, n = negated.shape
    for row in prange(R):
        moved_mask = np.zeros(n, dtype=np.bool_)
        break_count = 0
        run_merge_ok = True
        prev_key = negated[row, prev_perm[row, 0]]
        for j in range(1, n):
            key = negated[row, prev_perm[row, j]]
            if key < prev_key:
                break_count += 1
                if 4 * break_count > max_moved:
                    run_merge_ok = False
                    break
                # Two pages on each side of the boundary, like the numpy
                # reference's moved window.
                if j >= 2:
                    moved_mask[j - 2] = True
                moved_mask[j - 1] = True
                moved_mask[j] = True
                if j + 1 < n:
                    moved_mask[j + 1] = True
            prev_key = key
        if break_count == 0:
            for j in range(n):
                out[row, j] = prev_perm[row, j]
            route[row] = ROUTE_COPY
            continue
        healed = False
        if run_merge_ok:
            d = 0
            for j in range(n):
                if moved_mask[j]:
                    d += 1
            keep_count = n - d
            keep_keys = np.empty(keep_count, dtype=np.float64)
            keep_idx = np.empty(keep_count, dtype=np.int64)
            moved_keys = np.empty(d, dtype=np.float64)
            moved_idx = np.empty(d, dtype=np.int64)
            keeps = 0
            moves = 0
            healed = True
            last = -np.inf
            for j in range(n):
                page = prev_perm[row, j]
                key = negated[row, page]
                if moved_mask[j]:
                    moved_keys[moves] = key
                    moved_idx[moves] = page
                    moves += 1
                else:
                    if key < last:
                        healed = False  # a displaced block, not point moves
                        break
                    last = key
                    keep_keys[keeps] = key
                    keep_idx[keeps] = page
                    keeps += 1
            if healed:
                order = np.argsort(moved_keys, kind="mergesort")
                keep_at = 0
                write = 0
                for t in range(d):
                    moved_key = moved_keys[order[t]]
                    while keep_at < keep_count and keep_keys[keep_at] <= moved_key:
                        out[row, write] = keep_idx[keep_at]
                        write += 1
                        keep_at += 1
                    out[row, write] = moved_idx[order[t]]
                    write += 1
                while keep_at < keep_count:
                    out[row, write] = keep_idx[keep_at]
                    write += 1
                    keep_at += 1
                route[row] = ROUTE_RUN_MERGE
                continue
        # Displacement-bounded insertion along yesterday's order: the
        # sorted prefix lives in (skeys, out[row]); each new page binary
        # walks back at most max_shift slots.  Near-sorted fluid rows
        # cost O(n * realized_shift); a bound violation aborts the row to
        # the batched argsort before wasting more than it already has.
        skeys = np.empty(n, dtype=np.float64)
        bounded = True
        max_seen = 0
        for j in range(n):
            page = prev_perm[row, j]
            key = negated[row, page]
            i = j
            while i > 0 and skeys[i - 1] > key:
                i -= 1
                if j - i > max_shift:
                    bounded = False
                    break
            if not bounded:
                break
            for t in range(j, i, -1):
                skeys[t] = skeys[t - 1]
                out[row, t] = out[row, t - 1]
            skeys[i] = key
            out[row, i] = page
            if j - i > max_seen:
                max_seen = j - i
        if bounded:
            route[row] = ROUTE_WINDOWED
            shifts[row] = max_seen
        else:
            route[row] = ROUTE_FULL


@njit(cache=True, parallel=True)
def _partition_by_mask_nb(perms, mask_by_rank, n_promoted, out):  # pragma: no cover
    R, n = perms.shape
    for row in prange(R):
        deterministic_at = 0
        promoted_at = n - n_promoted[row]
        for j in range(n):
            value = perms[row, j]
            if mask_by_rank[row, j]:
                out[row, promoted_at] = value
                promoted_at += 1
            else:
                out[row, deterministic_at] = value
                deterministic_at += 1


@njit(cache=True, parallel=True)
def _merge_by_draws_nb(values, draws, r, n_det, n_prom, out):  # pragma: no cover
    R, n = values.shape
    for row in prange(R):
        nd = n_det[row]
        pool = n_prom[row]
        c_prev = 0
        running = 0
        for j in range(n):
            if draws[row, j] < r:
                running += 1
            c = running
            lower = j + 1 - nd
            if c < lower:
                c = lower
            if c > pool:
                c = pool
            if c > c_prev:
                out[row, j] = values[row, nd + c - 1]
            else:
                out[row, j] = values[row, j - c]
            c_prev = c


@njit(cache=True, parallel=True)
def _scatter_blend_rate_nb(
    rankings, shares_by_rank, surf, use_surf, x, rate, out_shares, out_visits
):  # pragma: no cover
    R, n = rankings.shape
    for row in prange(R):
        for j in range(n):
            out_shares[row, rankings[row, j]] = shares_by_rank[j]
        if use_surf:
            for p in range(n):
                out_shares[row, p] = (
                    (1.0 - x) * out_shares[row, p] + x * surf[row, p]
                )
        for p in range(n):
            out_visits[row, p] = out_shares[row, p] * rate


@njit(cache=True, parallel=True)
def _apply_gain_nb(aware, m, p_new):  # pragma: no cover
    # p_new = (1 - 1/m) ** visits, precomputed by the numpy pow ufunc: numpy's
    # SIMD float64 pow and libm's pow (what `**` lowers to inside numba)
    # disagree in the last ulp, so the pow pass is parity-critical numpy work
    # exactly like the RNG draws.  Everything around it fuses.
    R, n = aware.shape
    for row in prange(R):
        for p in range(n):
            a = aware[row, p]
            gained = (m - a) * (1.0 - p_new[row, p])
            updated = a + gained
            if updated > m:
                updated = m
            aware[row, p] = updated


@njit(cache=True, parallel=True)
def _lane_repair_nb(orders, pop, dirty_flat, offsets, out):  # pragma: no cover
    L, n = orders.shape
    for lane in prange(L):
        lo = offsets[lane]
        hi = offsets[lane + 1]
        d = hi - lo
        mask = np.zeros(n, dtype=np.bool_)
        for t in range(lo, hi):
            mask[dirty_flat[t]] = True
        keep_count = n - d
        keep = np.empty(keep_count, dtype=orders.dtype)
        ki = 0
        for j in range(n):
            value = orders[lane, j]
            if not mask[value]:
                keep[ki] = value
                ki += 1
        neg_moved = np.empty(d, dtype=np.float64)
        for t in range(d):
            neg_moved[t] = -pop[lane, dirty_flat[lo + t]]
        idx = np.argsort(neg_moved, kind="mergesort")
        neg_keep = np.empty(keep_count, dtype=np.float64)
        for t in range(keep_count):
            neg_keep[t] = -pop[lane, keep[t]]
        # Streaming equivalent of the reference's slots scatter: insertion
        # positions are nondecreasing (moved is sorted), so one forward
        # merge reproduces np.insert(keep, positions, moved) exactly.
        write_at = 0
        ki = 0
        for t in range(d):
            position = np.searchsorted(neg_keep, neg_moved[idx[t]], side="right")
            while ki < position:
                out[lane, write_at] = keep[ki]
                ki += 1
                write_at += 1
            out[lane, write_at] = dirty_flat[lo + idx[t]]
            write_at += 1
        while ki < keep_count:
            out[lane, write_at] = keep[ki]
            ki += 1
            write_at += 1


@njit(cache=True, parallel=True)
def _feedback_flush_nb(
    aware, popularity, quality, dirty, touched, p_new, m
):  # pragma: no cover
    # p_new precomputed by the numpy pow ufunc (see _apply_gain_nb).
    for t in prange(touched.size):
        i = touched[t]
        a = aware[i]
        gained = (m - a) * (1.0 - p_new[t])
        updated = a + gained
        if updated > m:
            updated = m
        aware[i] = updated
        popularity[i] = (updated / m) * quality[i]
        dirty[i] = True


class NumbaKernelBackend(NumpyKernelBackend):
    """JIT-fused kernels; bit-identical to :class:`NumpyKernelBackend`."""

    name = "numba"

    # ------------------------------------------------- rank_day (repair)

    def _repair_tie_runs(self, perm, sorted_keys, tie_breaker, tie_keys, ages):
        if tie_breaker == "random":
            keys, use_keys = tie_keys, True
        elif tie_breaker == "age":
            # argsort(-ages) ascending-stable == the reference's descending
            # age order; negating up front lets one kernel serve both rules.
            keys, use_keys = np.negative(np.asarray(ages, dtype=np.float64)), True
        else:
            keys, use_keys = np.zeros((0, 0), dtype=np.float64), False
        _repair_tie_runs_nb(perm, sorted_keys, keys, use_keys)

    # ------------------------------------------------- rank_day (adaptive)

    def _rank_adaptive(self, negated, prev_perm):
        # One fused nest per row (run detection, moved-set extraction,
        # spine check, two-pointer re-insertion merge, displacement-
        # bounded insertion) instead of the reference's batched passes;
        # rows the kernel routes to ``full`` fall back to the same
        # batched argsort.  The tie repair normalizes any within-tie
        # differences, so the result remains bit-identical.  The bounded
        # insertion route is exact by construction (the bound is checked
        # on every shift, not estimated), so no verify rows are returned.
        from repro.core.kernels.api import ROUTE_STATS
        from repro.core.kernels.numpy_backend import ADAPTIVE_MAX_MOVED_FRACTION

        R, n = negated.shape
        out = np.empty((R, n), dtype=np.int64)
        route = np.zeros(R, dtype=np.int8)
        shifts = np.zeros(R, dtype=np.int64)
        _rank_adaptive_nb(
            np.ascontiguousarray(negated, dtype=np.float64),
            np.ascontiguousarray(prev_perm, dtype=np.int64),
            max(4, int(n * ADAPTIVE_MAX_MOVED_FRACTION)),
            n // 8,  # same cutoff as the numpy route's 2d > n/4
            out,
            route,
            shifts,
        )
        counts = np.bincount(route, minlength=4)
        ROUTE_STATS.copy += int(counts[ROUTE_COPY])
        ROUTE_STATS.run_merge += int(counts[ROUTE_RUN_MERGE])
        windowed = route == ROUTE_WINDOWED
        if counts[ROUTE_WINDOWED]:
            ROUTE_STATS.record_windowed(
                int(counts[ROUTE_WINDOWED]),
                int(shifts[windowed].sum()),
                int(shifts[windowed].max()),
            )
        if counts[ROUTE_FULL]:
            rows = np.flatnonzero(route == ROUTE_FULL)
            out[rows] = np.argsort(negated[rows], axis=1)
            ROUTE_STATS.full += rows.size
        return out, None

    # ---------------------------------------------------- promotion_merge

    def _partition_by_mask(self, perms, mask_by_rank, n_promoted):
        out = np.empty(perms.shape, dtype=perms.dtype)
        _partition_by_mask_nb(perms, mask_by_rank, n_promoted, out)
        return out

    def _merge_by_draws(self, values, draws, r, n_deterministic, n_promoted):
        out = np.empty(values.shape, dtype=values.dtype)
        _merge_by_draws_nb(
            values, draws, float(r), n_deterministic, n_promoted, out
        )
        return out

    # ----------------------------------------------------------- day tail

    def visit_allocate(
        self,
        rankings: np.ndarray,
        shares_by_rank: np.ndarray,
        rate: float,
        mode: str,
        rngs: Sequence[np.random.Generator],
        surfing_fraction: float = 0.0,
        surf_shares: Optional[np.ndarray] = None,
        out_shares: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        if mode != "fluid":
            return super().visit_allocate(
                rankings, shares_by_rank, rate, mode, rngs,
                surfing_fraction=surfing_fraction,
                surf_shares=surf_shares,
                out_shares=out_shares,
            )
        rankings = np.ascontiguousarray(rankings, dtype=np.int64)
        R, n = rankings.shape
        if out_shares is None or not _f64c(out_shares):
            out_shares = np.empty((R, n), dtype=np.float64)
        use_surf = bool(surfing_fraction)
        if use_surf and surf_shares is None:
            raise ValueError("surfing blend requires the surf_shares matrix")
        surf = (
            np.ascontiguousarray(surf_shares, dtype=np.float64)
            if use_surf
            else np.zeros((0, 0), dtype=np.float64)
        )
        visits = np.empty((R, n), dtype=np.float64)
        _scatter_blend_rate_nb(
            rankings,
            np.ascontiguousarray(shares_by_rank, dtype=np.float64),
            surf,
            use_surf,
            float(surfing_fraction),
            float(rate),
            out_shares,
            visits,
        )
        return out_shares, visits

    def awareness_update(
        self,
        aware_count: np.ndarray,
        monitored_population: int,
        monitored_visits: np.ndarray,
        mode: str,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        if mode != "fluid" or not _f64c(aware_count):
            return super().awareness_update(
                aware_count, monitored_population, monitored_visits, mode, rngs
            )
        # Same expression (and ufunc) as awareness_gain_batch: scalar base,
        # numpy pow — see _apply_gain_nb for why this pass stays in numpy.
        p_new = (1.0 - 1.0 / monitored_population) ** np.ascontiguousarray(
            monitored_visits, dtype=np.float64
        )
        _apply_gain_nb(aware_count, float(monitored_population), p_new)
        return aware_count

    def day_tail(
        self,
        rankings: np.ndarray,
        shares_by_rank: np.ndarray,
        rate: float,
        mode: str,
        rngs: Sequence[np.random.Generator],
        aware_count: np.ndarray,
        monitored_population: int,
        surfing_fraction: float = 0.0,
        surf_shares: Optional[np.ndarray] = None,
        out_shares: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        # Bypass the numpy backend's row-blocked tail: composing the fused
        # JIT visit_allocate and awareness_update above — one loop nest
        # each around the numpy pow pass — is already the maximum fusion
        # the parity contract allows (see _apply_gain_nb), and the blocked
        # numpy passes would replace those nests, not feed them.
        return KernelBackend.day_tail(
            self, rankings, shares_by_rank, rate, mode, rngs,
            aware_count, monitored_population,
            surfing_fraction=surfing_fraction,
            surf_shares=surf_shares,
            out_shares=out_shares,
        )

    # -------------------------------------------------------- lane_repair

    def lane_repair(
        self,
        orders: Sequence[np.ndarray],
        popularity: Sequence[np.ndarray],
        dirty: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        L = len(orders)
        if L == 0:
            return []
        n = orders[0].size
        stacked = np.empty((L, n), dtype=np.int64)
        pop = np.empty((L, n), dtype=np.float64)
        offsets = np.zeros(L + 1, dtype=np.int64)
        for lane in range(L):
            stacked[lane] = orders[lane]
            pop[lane] = popularity[lane]
            offsets[lane + 1] = offsets[lane] + dirty[lane].size
        dirty_flat = np.empty(int(offsets[-1]), dtype=np.int64)
        for lane in range(L):
            dirty_flat[offsets[lane]:offsets[lane + 1]] = dirty[lane]
        out = np.empty((L, n), dtype=np.int64)
        _lane_repair_nb(stacked, pop, dirty_flat, offsets, out)
        return [out[lane] for lane in range(L)]

    # ----------------------------------------------------- feedback_flush

    def feedback_flush(
        self,
        aware: np.ndarray,
        popularity: np.ndarray,
        quality: np.ndarray,
        dirty: np.ndarray,
        touched: np.ndarray,
        summed: np.ndarray,
        monitored_population: int,
    ) -> None:
        if not (_f64c(aware) and _f64c(popularity) and _f64c(quality)):
            super().feedback_flush(
                aware, popularity, quality, dirty, touched, summed,
                monitored_population,
            )
            return
        # The pow pass stays on the numpy ufunc (see _apply_gain_nb); the
        # expression mirrors the reference backend's feedback_flush exactly.
        p_new = (1.0 - 1.0 / monitored_population) ** np.ascontiguousarray(
            summed, dtype=np.float64
        )
        _feedback_flush_nb(
            aware,
            popularity,
            quality,
            dirty,
            np.ascontiguousarray(touched, dtype=np.int64),
            p_new,
            float(monitored_population),
        )

    # ------------------------------------------------------------ warmup

    def warmup(self) -> None:
        """Compile every JIT kernel on tiny inputs (outside timed regions)."""
        rngs = [np.random.default_rng(seed) for seed in (0, 1)]
        scores = np.array([[0.5, 0.5, 0.1], [0.2, 0.3, 0.3]])
        ages = np.array([[1.0, 2.0, 2.0], [0.0, 1.0, 1.0]])
        for tie_breaker, age_arg in (("random", None), ("age", ages), ("index", None)):
            self.rank_day(scores, age_arg, tie_breaker, rngs)
        # prev_perm hint: row 1 has one break with one moved page, which
        # compiles the adaptive re-insertion kernel.
        self.rank_day(
            scores, None, "index", rngs,
            prev_perm=np.arange(3)[None, :].repeat(2, axis=0),
        )
        # Adjacent swaps on a descending base: one break per pair defeats
        # the run merge, while every insertion shifts one slot — exercises
        # the displacement-bounded route of the same kernel.
        swapped = np.arange(32, dtype=float)[::-1].copy()
        even = swapped[0::2].copy()
        swapped[0::2] = swapped[1::2]
        swapped[1::2] = even
        self.rank_day(
            np.tile(swapped, (2, 1)), None, "index", rngs,
            prev_perm=np.arange(32)[None, :].repeat(2, axis=0),
        )
        perms = np.argsort(-scores, axis=1)
        mask = np.array([[True, False, True], [False, True, False]])
        self.promotion_merge(perms, mask, 1, 0.5, rngs)
        shares_by_rank = np.array([0.6, 0.3, 0.1])
        aware = np.zeros((2, 3))
        surf = np.full((2, 3), 1.0 / 3.0)
        for frozen in (False, True):  # read-only share vectors type separately
            vector = shares_by_rank.copy()
            vector.setflags(write=not frozen)
            self.day_tail(perms, vector, 2.0, "fluid", rngs, aware, 10)
            self.day_tail(
                perms, vector, 2.0, "fluid", rngs, aware, 10,
                surfing_fraction=0.2, surf_shares=surf,
            )
            self.visit_allocate(perms, vector, 2.0, "fluid", rngs)
        self.awareness_update(aware, 10, np.ones((2, 3)), "fluid", rngs)
        order = np.array([0, 1, 2], dtype=np.int64)
        self.lane_repair(
            [order, order.copy()],
            [np.array([0.3, 0.2, 0.1]), np.array([0.1, 0.2, 0.3])],
            [np.array([1], dtype=np.int64), np.array([0], dtype=np.int64)],
        )
        flat = np.zeros(3)
        self.feedback_flush(
            flat, flat.copy(), np.ones(3), np.zeros(3, dtype=bool),
            np.array([1], dtype=np.int64), np.array([2.0]), 10,
        )


#: Module-level singleton the registry hands out.
BACKEND = NumbaKernelBackend()

__all__ = ["NumbaKernelBackend", "BACKEND"]
