"""Backend-dispatched compute kernels for the repository's hot paths.

The batch simulator's ``(R, n)`` day step, the lockstep sweep's
flush-window advance and the serving order maintenance all route their
array math through one :class:`~repro.core.kernels.api.KernelBackend`.
Two backends ship:

``numpy`` (:mod:`~repro.core.kernels.numpy_backend`)
    The always-available reference — the exact code previously inlined in
    the engines, bit-identical to them by construction.
``numba`` (:mod:`~repro.core.kernels.numba_backend`)
    An optional JIT backend that fuses the elementwise passes of one batch
    day into ``@njit(parallel=...)`` loop nests.  Parity-mandated RNG
    draws stay in numpy; everything else fuses, and the results remain
    bit-identical to the numpy backend.  numba is **never** a hard
    dependency: requesting it without the package installed degrades
    silently to numpy with a single :class:`RuntimeWarning`.

Selection, in priority order:

1. an explicit ``get_backend("name")`` / ``set_backend("name")`` call
   (the CLI ``--backend`` flag goes through ``set_backend``);
2. the ``REPRO_KERNEL_BACKEND`` environment variable (inherited by
   process-pool workers, so sharded runs stay on one backend);
3. the ``numpy`` default.

This module is deliberately light at import time: backend modules load
lazily on first use, so ``import repro`` never pays numba's import cost
and the ``repro.core.batch_rank`` dispatch functions can import
``get_backend`` without a cycle.
"""

from __future__ import annotations

import importlib
import importlib.util
import os
import threading
import warnings
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.core.kernels.api import (  # noqa: F401  (re-exported API surface)
    ROUTE_STATS,
    KernelBackend,
    RankRouteStats,
    TIE_BREAKERS,
    VALID_KERNELS,
    check_tie_breaker,
    draw_tie_keys,
    merge_repair,
)

#: Environment variable naming the default backend for the process tree.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Registry: backend name -> module (relative to this package) exposing a
#: module-level ``BACKEND`` singleton.
_BACKEND_MODULES: Dict[str, str] = {
    "numpy": ".numpy_backend",
    "numba": ".numba_backend",
}

_instances: Dict[str, KernelBackend] = {}
_default_name: Optional[str] = None
_fallback_warned: set = set()
_instrumentation = None
_lock = threading.Lock()


def set_kernel_instrumentation(wrap) -> None:
    """Install (or clear, with ``None``) a backend instrumentation hook.

    ``wrap`` is a callable mapping a resolved :class:`KernelBackend` to
    the instance :func:`get_backend` should hand out — typically a
    :class:`repro.telemetry.spans.TimedKernelBackend` proxy, installed
    for the duration of one telemetry-enabled run via
    :meth:`repro.telemetry.TelemetryRecorder.install_kernel_spans`.  The
    registry cache always holds the raw backends; the hook applies at
    dispatch time, so clearing it instantly restores the uninstrumented
    path (a single ``is None`` check per dispatch).
    """
    global _instrumentation
    _instrumentation = wrap


def get_kernel_instrumentation():
    """The currently installed instrumentation hook, or ``None``."""
    return _instrumentation


def available_backends() -> List[str]:
    """Backend names whose imports would succeed on this host."""
    names = ["numpy"]
    if importlib.util.find_spec("numba") is not None:
        names.append("numba")
    return names


def _import_backend(name: str) -> KernelBackend:
    module = importlib.import_module(_BACKEND_MODULES[name], package=__name__)
    return module.BACKEND


def _fallback(name: str, error: BaseException) -> KernelBackend:
    """Degrade to numpy with one warning per unavailable backend name."""
    with _lock:
        if name not in _fallback_warned:
            _fallback_warned.add(name)
            warnings.warn(
                "kernel backend %r is unavailable (%s); falling back to the "
                "numpy reference backend" % (name, error),
                RuntimeWarning,
                stacklevel=3,
            )
    return get_backend("numpy")


def get_backend(name: Optional[str] = None) -> KernelBackend:
    """Resolve a kernel backend by name (or the process default).

    ``None`` resolves the default: a prior :func:`set_backend` call,
    else the ``REPRO_KERNEL_BACKEND`` environment variable, else
    ``"numpy"``.  Explicitly requesting an unknown name raises
    ``ValueError``; an unknown name *from the environment* and a known
    backend whose import fails (numba not installed) both degrade to
    numpy with a single warning, so a stray variable can never break a
    run that would work without it.
    """
    from_env = False
    if name is None:
        if _default_name is not None:
            name = _default_name
        else:
            name = os.environ.get(ENV_VAR, "").strip().lower() or "numpy"
            from_env = name != "numpy"
    name = name.lower()
    if name not in _BACKEND_MODULES:
        if from_env:
            return _fallback(name, NameError("unknown backend name"))
        raise ValueError(
            "unknown kernel backend %r; expected one of %s"
            % (name, tuple(_BACKEND_MODULES))
        )
    instance = _instances.get(name)
    if instance is None:
        try:
            instance = _import_backend(name)
        except ImportError as error:
            # Cache the fallback under the requested name: a failed import
            # evicts the module from sys.modules, so without this every
            # dispatch in a degraded process (REPRO_KERNEL_BACKEND=numba,
            # numba absent — e.g. pool workers) would re-pay the import
            # attempt.  The cache must hold the raw backend, never an
            # instrumentation proxy (whose recorder may since have closed),
            # so unwrap what the recursive numpy resolution handed back.
            instance = _fallback(name, error)
            instance = getattr(instance, "_inner", instance)
        with _lock:
            _instances[name] = instance
    if _instrumentation is not None:
        return _instrumentation(instance)
    return instance


def set_backend(name: Optional[str]) -> KernelBackend:
    """Set the process-default backend; returns the resolved instance.

    The default is what ``get_backend()`` (no argument) hands to every
    dispatch site.  Resolution applies the same fallback rules as
    :func:`get_backend`, so ``set_backend("numba")`` without numba
    installed warns once and pins numpy.  Passing ``None`` clears the
    override (environment/default resolution applies again).
    """
    global _default_name
    if name is None:
        _default_name = None
        return get_backend()
    backend = get_backend(name)
    _default_name = backend.name
    return backend


@contextmanager
def use_backend(name: Optional[str]):
    """Temporarily pin the process-default backend (tests, benchmarks)."""
    global _default_name
    previous = _default_name
    try:
        yield set_backend(name)
    finally:
        _default_name = previous


def _reset_dispatch_state() -> None:
    """Forget the default override, warning memory, instrumentation hook
    and cached fallback aliases (entries resolving to a different backend
    than their key) — test isolation."""
    global _default_name, _instrumentation
    _default_name = None
    _instrumentation = None
    with _lock:
        _fallback_warned.clear()
        for key in [k for k, v in _instances.items() if v.name != k]:
            del _instances[key]


__all__ = [
    "KernelBackend",
    "RankRouteStats",
    "ROUTE_STATS",
    "TIE_BREAKERS",
    "VALID_KERNELS",
    "ENV_VAR",
    "merge_repair",
    "available_backends",
    "get_backend",
    "get_kernel_instrumentation",
    "set_backend",
    "set_kernel_instrumentation",
    "use_backend",
    "check_tie_breaker",
    "draw_tie_keys",
]
