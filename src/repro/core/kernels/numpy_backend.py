"""The numpy reference backend: the repository's exact kernel semantics.

Every kernel here is the code that used to live inline in
``repro.core.batch_rank``, ``repro.simulation.batch`` and
``repro.serving.sweep`` — carved out behind the
:class:`~repro.core.kernels.api.KernelBackend` API, not rewritten — so the
numpy backend is bit-identical to the pre-refactor engines by
construction.  Where a single-community reference helper exists
(``awareness_gain_batch``, ``allocate_monitored_visits_batch``) the kernel
delegates to it rather than copying the arithmetic.

Other backends subclass :class:`NumpyKernelBackend` and override only the
deterministic array math (``_repair_tie_runs``, ``_partition_by_mask``,
``_merge_by_draws``, the fluid elementwise passes); the parity-mandated
RNG consumption — tie-key draws, pool shuffles, merge coins, stochastic
binomials/multinomials — lives in the shared method bodies and is never
overridden.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.community.page import awareness_gain_batch
from repro.core.kernels.api import (
    KernelBackend,
    check_tie_breaker,
    draw_tie_keys,
)
from repro.visits.allocation import allocate_monitored_visits_batch


def merge_repair(
    order: np.ndarray,
    popularity: np.ndarray,
    dirty: np.ndarray,
    scratch: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact O(n + d log d) merge repair of one maintained descending order.

    The single-lane reference shared by ``ServingEngine._repair_order`` and
    the grouped :meth:`NumpyKernelBackend.lane_repair` kernel — one
    implementation, so lane-by-lane and grouped repairs cannot drift.  The
    ``dirty`` pages are extracted, sorted by descending popularity (stable
    over their ascending page index), and merged back *after* their
    equal-popularity keeps (``side="right"``), which is where a re-sorted
    tie group would place them.

    Returns ``(merged_order, scratch)``; ``scratch`` is the reusable
    all-``False`` boolean mask, handed back so hot callers can keep it.
    """
    n = order.size
    if scratch is None or scratch.size != n:
        scratch = np.zeros(n, dtype=bool)
    scratch[dirty] = True
    keep = order[~scratch[order]]
    scratch[dirty] = False  # leave the scratch clean for the next repair
    moved = dirty[np.argsort(-popularity[dirty], kind="stable")]
    positions = np.searchsorted(-popularity[keep], -popularity[moved], side="right")
    # Equivalent to np.insert(keep, positions, moved) — positions are
    # nondecreasing (moved is sorted), so each inserted element lands at
    # its original position plus the number of insertions before it —
    # without np.insert's generic-case overhead on the serving hot path.
    merged = np.empty(n, dtype=order.dtype)
    slots = positions + np.arange(moved.size)
    keep_mask = np.ones(n, dtype=bool)
    keep_mask[slots] = False
    merged[slots] = moved
    merged[keep_mask] = keep
    return merged, scratch


class NumpyKernelBackend(KernelBackend):
    """Pure-numpy kernels; always available, always the parity reference."""

    name = "numpy"

    # ------------------------------------------------------------ rank_day

    def rank_day(
        self,
        scores: np.ndarray,
        ages: Optional[np.ndarray],
        tie_breaker: str,
        rngs: Sequence[np.random.Generator],
        out_tie_keys: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        from repro.core.batch_rank import _flat_take

        scores = np.asarray(scores, dtype=float)
        R, n = scores.shape
        tie_keys = None
        if tie_breaker == "random":
            tie_keys = draw_tie_keys(rngs, (R, n), out=out_tie_keys)
        elif tie_breaker == "age":
            # The sequential path substitutes zero ages when none are given;
            # mirror that so the per-row contract holds for age-less contexts.
            ages = (
                np.zeros((R, n)) if ages is None else np.asarray(ages, dtype=float)
            )
        else:
            check_tie_breaker(tie_breaker)

        negated = -scores
        perm = np.argsort(negated, axis=1)  # unstable quicksort: ties repaired below
        sorted_keys = _flat_take(negated, perm)
        self._repair_tie_runs(perm, sorted_keys, tie_breaker, tie_keys, ages)
        return perm

    def _repair_tie_runs(
        self,
        perm: np.ndarray,
        sorted_keys: np.ndarray,
        tie_breaker: str,
        tie_keys: Optional[np.ndarray],
        ages: Optional[np.ndarray],
    ) -> None:
        """Reorder every run of equal primary keys by the exact tie-break rule.

        ``perm`` is modified in place.  Within a run the required order is:
        by tie key ascending (``random``), by age descending (``age``), or
        by page index ascending (``index``); remaining ties fall back to
        page index, matching ``np.lexsort`` stability in the sequential
        path.
        """
        equal_next = sorted_keys[:, 1:] == sorted_keys[:, :-1]
        for row in np.flatnonzero(equal_next.any(axis=1)):
            pairs = np.flatnonzero(equal_next[row])
            # Contiguous stretches of `pairs` are single runs of equal keys.
            breaks = np.flatnonzero(np.diff(pairs) > 1)
            run_starts = np.concatenate(([0], breaks + 1))
            run_ends = np.concatenate((breaks, [pairs.size - 1]))
            for lo, hi in zip(run_starts, run_ends):
                a, b = pairs[lo], pairs[hi] + 2  # run spans positions a..b-1
                members = np.sort(perm[row, a:b])
                if tie_breaker == "random":
                    members = members[
                        np.argsort(tie_keys[row, members], kind="stable")
                    ]
                elif tie_breaker == "age":
                    members = members[
                        np.argsort(-ages[row, members], kind="stable")
                    ]
                perm[row, a:b] = members

    # ---------------------------------------------------- promotion_merge

    def promotion_merge(
        self,
        perms: np.ndarray,
        promoted_mask: np.ndarray,
        k: int,
        r: float,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        from repro.core.batch_rank import _flat_take

        R, n = perms.shape
        mask_by_rank = _flat_take(promoted_mask, perms)
        n_promoted = mask_by_rank.sum(axis=1)
        n_deterministic = n - n_promoted

        values = self._partition_by_mask(perms, mask_by_rank, n_promoted)

        # Per-row generator work (the only non-batched part, by parity): the
        # promotion-pool shuffle followed by the merge coin flips, in the
        # same order and with the same sizes as the sequential path.  The
        # uniform draws land in one (R, n) buffer so everything after runs
        # through the backend's merge pass.
        # Undrawn slots keep coin value 1.0, which never passes `< r`
        # (r <= 1), so rows or prefixes without sequential draws contribute
        # no flips.
        draws = np.ones((R, n), dtype=float)
        for row in range(R):
            pool_size = int(n_promoted[row])
            if pool_size == 0:
                continue
            generator = rngs[row]
            pool_view = values[row, n - pool_size:]
            if pool_size > 1:
                generator.shuffle(pool_view)
            taken = min(k - 1, n - pool_size)
            if taken >= n or n - pool_size - taken == 0:
                continue  # sequential path draws no coins in these cases
            generator.random(out=draws[row, taken:])

        return self._merge_by_draws(values, draws, r, n_deterministic, n_promoted)

    def _partition_by_mask(
        self,
        perms: np.ndarray,
        mask_by_rank: np.ndarray,
        n_promoted: np.ndarray,
    ) -> np.ndarray:
        """Partition each row into [deterministic..., promoted...], rank order.

        A stable argsort of the boolean mask is exactly that partition.
        """
        from repro.core.batch_rank import _flat_take

        partition = np.argsort(mask_by_rank, axis=1, kind="stable")
        return _flat_take(perms, partition)

    def _merge_by_draws(
        self,
        values: np.ndarray,
        draws: np.ndarray,
        r: float,
        n_deterministic: np.ndarray,
        n_promoted: np.ndarray,
    ) -> np.ndarray:
        """Drain both lists by the drawn coins (clipped-cumsum slot algebra)."""
        from repro.core.batch_rank import _flat_take, batched_merge_counts

        R, n = values.shape
        flips = draws < r
        counts = batched_merge_counts(flips, n_deterministic, n_promoted)
        position = np.arange(n, dtype=np.int32)[None, :]
        # Slot j takes from the promotion pool iff the clipped count increased.
        take_promoted = np.empty((R, n), dtype=bool)
        take_promoted[:, 0] = counts[:, 0] > 0
        np.greater(counts[:, 1:], counts[:, :-1], out=take_promoted[:, 1:])
        source = np.where(
            take_promoted,
            n_deterministic.astype(np.int32)[:, None] + counts - 1,
            position - counts,
        )
        return _flat_take(values, source)

    # ---------------------------------------------------------- day tail

    def visit_allocate(
        self,
        rankings: np.ndarray,
        shares_by_rank: np.ndarray,
        rate: float,
        mode: str,
        rngs: Sequence[np.random.Generator],
        surfing_fraction: float = 0.0,
        surf_shares: Optional[np.ndarray] = None,
        out_shares: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        rankings = np.asarray(rankings)
        R, n = rankings.shape
        if out_shares is None:
            out_shares = np.empty((R, n), dtype=float)
        # Row-wise 1-D scatters: numpy's fast path for (1-D index, 1-D
        # contiguous values) beats one 2-D advanced-index scatter with a
        # broadcast right-hand side by ~2x at these shapes, and a scatter
        # over duplicate-free indices is order-independent, so the result
        # is bit-identical either way.
        for row in range(R):
            out_shares[row][rankings[row]] = shares_by_rank
        if surfing_fraction:
            if surf_shares is None:
                raise ValueError("surfing blend requires the surf_shares matrix")
            out_shares *= 1.0 - surfing_fraction
            out_shares += surfing_fraction * surf_shares
        monitored = allocate_monitored_visits_batch(out_shares, rate, mode, rngs)
        return out_shares, monitored

    def awareness_update(
        self,
        aware_count: np.ndarray,
        monitored_population: int,
        monitored_visits: np.ndarray,
        mode: str,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        gained = awareness_gain_batch(
            aware_count,
            monitored_population,
            monitored_visits,
            mode=mode,
            rngs=rngs,
        )
        np.minimum(monitored_population, aware_count + gained, out=aware_count)
        return aware_count

    # -------------------------------------------------------- lane_repair

    def lane_repair(
        self,
        orders: Sequence[np.ndarray],
        popularity: Sequence[np.ndarray],
        dirty: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        repaired: List[np.ndarray] = []
        scratch: Optional[np.ndarray] = None  # shared across equal-size lanes
        for lane_order, lane_pop, lane_dirty in zip(orders, popularity, dirty):
            merged, scratch = merge_repair(lane_order, lane_pop, lane_dirty, scratch)
            repaired.append(merged)
        return repaired

    # ----------------------------------------------------- feedback_flush

    def feedback_flush(
        self,
        aware: np.ndarray,
        popularity: np.ndarray,
        quality: np.ndarray,
        dirty: np.ndarray,
        touched: np.ndarray,
        summed: np.ndarray,
        monitored_population: int,
    ) -> None:
        m = monitored_population
        values = aware[touched]
        # awareness_gain (fluid): gained = (m - aware) * (1 - (1 - 1/m)**v),
        # elementwise — identical per entry to the per-lane call.
        gained = (m - values) * (1.0 - (1.0 - 1.0 / m) ** summed)
        updated = np.minimum(float(m), values + gained)
        aware[touched] = updated
        popularity[touched] = (updated / m) * quality[touched]
        dirty[touched] = True


#: Module-level singleton the registry hands out.
BACKEND = NumpyKernelBackend()

__all__ = ["NumpyKernelBackend", "BACKEND", "merge_repair"]
