"""The numpy reference backend: the repository's exact kernel semantics.

Every kernel here is the code that used to live inline in
``repro.core.batch_rank``, ``repro.simulation.batch`` and
``repro.serving.sweep`` — carved out behind the
:class:`~repro.core.kernels.api.KernelBackend` API, not rewritten — so the
numpy backend is bit-identical to the pre-refactor engines by
construction.  Where a single-community reference helper exists
(``awareness_gain_batch``, ``allocate_monitored_visits_batch``) the kernel
delegates to it rather than copying the arithmetic.

Other backends subclass :class:`NumpyKernelBackend` and override only the
deterministic array math (``_repair_tie_runs``, ``_partition_by_mask``,
``_merge_by_draws``, the fluid elementwise passes); the parity-mandated
RNG consumption — tie-key draws, pool shuffles, merge coins, stochastic
binomials/multinomials — lives in the shared method bodies and is never
overridden.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.community.page import awareness_gain_batch
from repro.core.kernels.api import (
    ROUTE_STATS,
    KernelBackend,
    RankRouteStats,  # noqa: F401  (back-compat re-export; moved to api)
    check_tie_breaker,
    draw_tie_keys,
    merge_repair,
)
from repro.utils.validation import check_probability
from repro.visits.allocation import allocate_monitored_visits_batch

#: Adaptive ``rank_day`` threshold (see :meth:`NumpyKernelBackend.rank_day`).
#: A row is treated as near-sorted when its break-adjacent moved set — at
#: most four pages per detected run boundary (two each side) — is no more
#: than ``n * ADAPTIVE_MAX_MOVED_FRACTION`` pages; beyond that the
#: O(n + d log d) re-insertion merge stops beating the O(n log n) full
#: sort and the row falls back to ``argsort``.
ADAPTIVE_MAX_MOVED_FRACTION = 0.125

#: Row-block size of the adaptive analysis, in elements: the re-insertion
#: pipeline runs ~12 elementwise passes over (rows, n) temporaries, so the
#: rows are processed in blocks of ~64k elements (512 KB of float64) to
#: keep every temporary cache-resident — the same row-blocking argument as
#: :data:`DAY_TAIL_BLOCK_ROWS`, sized by elements because ``n`` varies.
ADAPTIVE_BLOCK_ELEMENTS = 65536

#: Row-block height of the fluid day tail.  The unfused ``(R, n)`` tail
#: streams ~R*n*8-byte temporaries through L2 between every elementwise
#: pass; processing 8 rows per block keeps each temporary L1/L2-resident
#: while the passes stay full-width ufunc calls (the ROADMAP's row-blocked
#: day tail).
DAY_TAIL_BLOCK_ROWS = 8

#: Number of probe positions the windowed-route displacement estimator
#: samples per row.  The estimate costs one prefix-max pass plus one
#: vectorized comparison per power-of-two gap — negligible next to
#: either sort route — and its resolution is ``n / probes`` elements,
#: which lower-bounds the window radius the route can pick.  The probe
#: only *lower*-bounds the true maximum displacement (unprobed positions
#: may move further); the gap-doubling slack plus the power-of-two
#: round-up make the window wide enough in practice, and the post-sort
#: verification catches any row the estimate still undershoots.
ADAPTIVE_WINDOW_PROBES = 512

#: Smallest window radius the windowed route will use.  Below this the
#: per-pass reshape/argsort overhead dominates and the route cannot beat
#: a plain copy-or-merge anyway.
ADAPTIVE_WINDOW_MIN = 8


#: Thread-local packed-key buffer of the windowed sort
#: (:meth:`NumpyKernelBackend._windowed_sort_rows`): reused across days so
#: the route does not fault in a fresh ~(rows, n) arena every call.
_WINDOWED_SCRATCH = threading.local()


class NumpyKernelBackend(KernelBackend):
    """Pure-numpy kernels; always available, always the parity reference."""

    name = "numpy"

    # ------------------------------------------------------------ rank_day

    def rank_day(
        self,
        scores: np.ndarray,
        ages: Optional[np.ndarray],
        tie_breaker: str,
        rngs: Sequence[np.random.Generator],
        out_tie_keys: Optional[np.ndarray] = None,
        prev_perm: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        from repro.core.batch_rank import _flat_take

        scores = np.asarray(scores, dtype=float)
        R, n = scores.shape
        tie_keys = None
        if tie_breaker == "random":
            # Drawn before the sort path is chosen: RNG consumption must not
            # depend on whether the adaptive hint is taken (parity contract).
            tie_keys = draw_tie_keys(rngs, (R, n), out=out_tie_keys)
        elif tie_breaker == "age":
            if ages is None:
                # The sequential path substitutes zero ages when none are
                # given; all-equal ages make the age key a no-op, so the
                # stable fallback to page index decides every tie — exactly
                # the "index" rule.  Short-circuiting avoids allocating and
                # sorting a fresh (R, n) zero matrix every day.
                tie_breaker = "index"
            else:
                ages = np.asarray(ages, dtype=float)
        else:
            check_tie_breaker(tie_breaker)

        negated = -scores
        verify_rows = None
        if prev_perm is not None and n > 0:
            prev_perm = np.asarray(prev_perm)
            if prev_perm.shape != (R, n):
                raise ValueError(
                    "prev_perm must have shape (%d, %d), got %s"
                    % (R, n, prev_perm.shape)
                )
            perm, verify_rows = self._rank_adaptive(negated, prev_perm)
        else:
            perm = np.argsort(negated, axis=1)  # unstable quicksort: ties repaired below
        sorted_keys = _flat_take(negated, perm)
        if verify_rows is not None and verify_rows.size:
            # The windowed route's overlap-consistency check, folded onto
            # the sorted-key gather every route pays anyway: a row whose
            # displacement bound was violated is not nondecreasing here
            # and is re-sorted exactly, so the estimate only ever affects
            # speed, never the result.
            if verify_rows.size == perm.shape[0]:
                checked = sorted_keys  # all rows windowed: skip the gather
            else:
                checked = sorted_keys[verify_rows]
            bad = verify_rows[np.any(checked[:, 1:] < checked[:, :-1], axis=1)]
            if bad.size:
                ROUTE_STATS.windowed -= bad.size
                ROUTE_STATS.full += bad.size
                perm[bad] = np.argsort(negated[bad], axis=1)
                sorted_keys[bad] = np.take_along_axis(
                    negated[bad], perm[bad], axis=1
                )
        self._repair_tie_runs(perm, sorted_keys, tie_breaker, tie_keys, ages)
        return perm

    # ----------------------------------------------- rank_day (adaptive)

    def _rank_adaptive(
        self, negated: np.ndarray, prev_perm: np.ndarray
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Sort each row by merging yesterday's order where it survived.

        Yesterday's permutation viewed under today's keys decomposes into
        maximal nondecreasing runs (ties never break a run — the exact tie
        repair afterwards normalizes them anyway).  Rows split four ways,
        each handled batched across the rows that take it:

        * no run boundary — yesterday's order is already sorted, copy it;
        * few boundaries — extract the *moved set* (the two pages adjacent
          to every boundary), verify that the remaining spine is one
          sorted run, and binary-merge the sorted moved pages back into it
          (:meth:`_reinsert_moved`, O(n + d log d));
        * many boundaries but a small probed displacement bound ``d`` —
          the fluid steady-state shape: sort width-``2d`` windows along
          yesterday's order (:meth:`_rank_displaced`, O(n log d));
        * everything else — the day is not near-sorted: full ``argsort``.

        Every path produces *a* permutation sorted by the primary key,
        which is all the tie repair needs to make the result bit-identical
        to the full-sort path.  Returns ``(perm, verify_rows)``:
        ``verify_rows`` (possibly ``None``) lists the rows that took the
        windowed route, whose estimated bound the caller must verify
        against the sorted keys it gathers anyway.
        """
        from repro.core.batch_rank import _flat_take

        R, n = negated.shape
        prev_keys = _flat_take(negated, prev_perm)
        breaks = prev_keys[:, 1:] < prev_keys[:, :-1]
        break_counts = breaks.sum(axis=1)
        max_moved = max(4, int(n * ADAPTIVE_MAX_MOVED_FRACTION))
        sorted_rows = break_counts == 0
        candidate = ~sorted_rows & (4 * break_counts <= max_moved)
        displaced = ~sorted_rows & ~candidate
        # Uniform days skip the per-subset gathers: every row sorted
        # (quiet day), or every row churned (the fluid steady state —
        # the whole batch goes to the displacement-bounded route in one
        # call, full width: its window sorts are cache-local by
        # construction, so it needs no row blocking).
        if sorted_rows.all():
            ROUTE_STATS.copy += R
            return prev_perm.copy(), None
        if displaced.all():
            return self._rank_displaced(negated, prev_keys, prev_perm)
        perm = np.empty((R, n), dtype=prev_perm.dtype)
        if sorted_rows.any():
            ROUTE_STATS.copy += int(sorted_rows.sum())
            perm[sorted_rows] = prev_perm[sorted_rows]
        if candidate.any():
            # The re-insertion analysis is ~12 elementwise passes over
            # (rows, n) temporaries; cache-sized row blocks
            # (:data:`ADAPTIVE_BLOCK_ELEMENTS`) keep them resident.
            rows = np.flatnonzero(candidate)
            block = max(1, ADAPTIVE_BLOCK_ELEMENTS // max(1, n))
            for lo in range(0, rows.size, block):
                sub = rows[lo:lo + block]
                merged, healed = self._reinsert_moved(
                    prev_keys[sub], prev_perm[sub], breaks[sub]
                )
                ROUTE_STATS.run_merge += int(healed.sum())
                perm[sub[healed]] = merged[healed]
                if not healed.all():
                    displaced[sub[~healed]] = True
        verify_rows = None
        if displaced.any():
            rows = np.flatnonzero(displaced)
            perm[rows], verify = self._rank_displaced(
                negated[rows], prev_keys[rows], prev_perm[rows]
            )
            if verify is not None:
                verify_rows = rows[verify]
        return perm, verify_rows

    def _rank_displaced(
        self, negated: np.ndarray, prev_keys: np.ndarray, prev_perm: np.ndarray
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Displacement-bounded windowed sort of rows that declined run-merge.

        Fluid steady-state days defeat run-merging (thousands of run
        boundaries from near-tied tail churn) yet displace each page only
        a short distance.  For such rows a probe lower-bounds the maximum
        displacement ``d`` (:meth:`_estimate_displacement`), and two
        offset passes of disjoint width-``2d`` block sorts along
        yesterday's order fully sort any ``d``-displaced row
        (:meth:`_windowed_sort_rows`) in O(n log d) instead of
        O(n log n).  Rows whose estimate exceeds the ``2d > n/4`` cutoff
        take the full argsort instead; rows the estimate undershoots are
        caught by the caller's sorted-key verification and re-sorted — so
        the route is exact regardless of estimate quality, and the tie
        repair downstream makes it bit-identical to every other route.

        ``prev_keys`` are the float keys in yesterday's order.  Returns
        ``(perm, verify_rows)`` with ``verify_rows`` the (local) rows
        that took the windowed route.
        """
        L, n = negated.shape
        estimates = self._estimate_displacement(prev_keys)
        full_rows: List[int] = []
        buckets: dict = {}
        for i in range(L):
            d = max(ADAPTIVE_WINDOW_MIN, int(estimates[i]))
            d = 1 << (d - 1).bit_length()  # bucket rows by power-of-two radius
            if 2 * d > n // 4:
                full_rows.append(i)
            else:
                buckets.setdefault(d, []).append(i)
        if len(buckets) == 1 and not full_rows:
            # The fluid steady-state fast path: one shared bound, no
            # per-subset gathers.
            (d, row_list), = buckets.items()
            perm = self._windowed_sort_rows(prev_keys, prev_perm, d)
            ROUTE_STATS.record_windowed(L, L * d, d)
            return perm, np.arange(L, dtype=np.int64)
        perm = np.empty((L, n), dtype=prev_perm.dtype)
        windowed: List[int] = []
        for d, row_list in buckets.items():
            rows = np.asarray(row_list, dtype=np.int64)
            perm[rows] = self._windowed_sort_rows(
                prev_keys[rows], prev_perm[rows], d
            )
            windowed.extend(row_list)
            ROUTE_STATS.record_windowed(rows.size, int(rows.size) * d, d)
        if full_rows:
            rows = np.asarray(full_rows, dtype=np.int64)
            perm[rows] = np.argsort(negated[rows], axis=1)
            ROUTE_STATS.full += rows.size
        verify_rows = (
            np.asarray(sorted(windowed), dtype=np.int64) if windowed else None
        )
        return perm, verify_rows

    def _estimate_displacement(self, prev_keys: np.ndarray) -> np.ndarray:
        """Probe each row's maximum inversion span over a sparse sample.

        Over every ``stride``-th key, an inversion of gap ``g`` samples —
        ``sampled[i] < max(sampled[:i-g+1])`` — means some element must
        cross ``>= g`` whole strides when the row is sorted.  Gaps are
        probed at powers of two with one vectorized comparison per gap:
        a violation at gap ``2g`` implies one at gap ``g`` (the prefix
        max only grows), so the scan stops at the first gap no row
        violates.  The returned per-row bound ``(2*g_max + 1) * stride``
        covers the span such an inversion demands plus a stride of slack
        on each side for structure the sample cannot see; the caller's
        sorted-key verification covers everything else — the estimate
        only ever costs speed, never the result.
        """
        L, n = prev_keys.shape
        stride = max(1, n // ADAPTIVE_WINDOW_PROBES)
        sampled = np.ascontiguousarray(prev_keys[:, ::stride])
        prefix_max = np.maximum.accumulate(sampled, axis=1)
        m = sampled.shape[1]
        g_max = np.zeros(L, dtype=np.int64)
        g = 1
        while g < m:
            viol = (sampled[:, g:] < prefix_max[:, :-g]).any(axis=1)
            if not viol.any():
                break
            g_max[viol] = g
            g *= 2
        return (2 * g_max + 1) * stride

    def _windowed_sort_rows(
        self, prev_keys: np.ndarray, prev_perm: np.ndarray, d: int
    ) -> np.ndarray:
        """Sort ``d``-displaced rows by two offset passes of width-``2d`` blocks.

        Pass one sorts disjoint width-``2d`` blocks along yesterday's
        order; pass two repeats shifted by ``d``, so the two passes'
        blocks overlap by ``d`` — after which every element displaced by
        at most ``d`` has reached its sorted position (an element can
        cross at most one block seam per pass, and the seams of the two
        passes are ``d`` apart).  The float keys are unfolded in place
        into order-preserving int64 (sign-magnitude unfold: ``k1 < k2``
        as floats iff ``ikey1 < ikey2`` as signed ints) with the
        element's page id packed into the low bits, so pass one is a
        plain SIMD ``np.sort``, pass two a stable sort whose timsort
        merge gallops through each block's two already-sorted halves, no
        index gathers anywhere — masking the low bits *is* the
        permutation.  The packing truncates the key's lowest
        ``bit_length(n)`` mantissa bits; any mis-order that truncation
        (or a violated bound) lets through is caught by the caller's
        exact sorted-key verification.  Tail blocks are padded with
        int64-max sentinels, which sort to the very end, past every real
        element (page ids never fill the truncated field).
        """
        L, n = prev_keys.shape
        w = 2 * d
        pos_bits = int(n).bit_length()
        # Scratch reuse: a fresh ~(L, n) buffer every call would fault in
        # new pages each day (the dominant cost at the bench shape).
        scratch = getattr(_WINDOWED_SCRATCH, "slot", None)
        if scratch is None or scratch.shape[0] < L or scratch.shape[1] < n + w:
            scratch = np.empty((L, n + w), dtype=np.int64)
            _WINDOWED_SCRATCH.slot = scratch
        packed = scratch[:L, : n + w]
        packed[:, n:] = np.iinfo(np.int64).max
        fbits = np.ascontiguousarray(prev_keys).view(np.int64)
        pk = packed[:, :n]
        # ikey = fbits ^ ((fbits >> 63) & int64_max), built with in-place
        # passes over the scratch (no fresh (L, n) temporaries to fault).
        np.right_shift(fbits, 63, out=pk)
        pk &= np.int64(np.iinfo(np.int64).max)
        pk ^= fbits
        pk &= np.int64(~((1 << pos_bits) - 1))
        pk |= prev_perm
        row_stride, item_stride = packed.strides
        for offset, kind in ((0, "quicksort"), (d, "stable")):
            # In-place block view: a plain reshape of the offset slice
            # would copy (the rows are strided), and sorting the copy
            # silently discards the pass.
            blocks = np.lib.stride_tricks.as_strided(
                packed[:, offset:],
                shape=(L, (n - offset + w - 1) // w, w),
                strides=(row_stride, w * item_stride, item_stride),
            )
            blocks.sort(axis=2, kind=kind)
        perm = pk & ((1 << pos_bits) - 1)
        return perm.astype(prev_perm.dtype, copy=False)

    def _reinsert_moved(
        self, keys: np.ndarray, prev: np.ndarray, breaks: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Targeted re-insertion of moved pages, batched over ``L`` rows.

        The moved set is the two pages on each side of every run boundary:
        a page whose score crossed its neighbours produces a boundary on
        each side, so the window covers it (plus a few innocent
        neighbours, and re-inserting an innocent page is harmless — it
        merges straight back to its slot).  The remaining pages are the
        *spine*; extraction, spine check and merge scatters all run as
        flat row-major array passes over every row at once, with only the
        tiny per-row moved sort + binary search in a Python loop.

        Returns ``(merged, healed)``: rows whose spine was *not* left
        sorted by the extraction (``healed[i] == False`` — e.g. an entire
        block of pages displaced together) carry garbage in ``merged`` and
        must be re-sorted by the caller instead.
        """
        L, n = keys.shape
        moved_mask = np.zeros((L, n), dtype=bool)
        moved_mask[:, :-1] = breaks
        moved_mask[:, 1:] |= breaks
        if n > 2:
            moved_mask[:, :-2] |= breaks[:, 1:]
            moved_mask[:, 2:] |= breaks[:, :-1]
        keep_mask = ~moved_mask
        keep_keys = keys[keep_mask]  # flat, row-major: per-row segments
        keep_idx = prev[keep_mask]
        flat_moved = np.flatnonzero(moved_mask.ravel())
        moved_keys = keys.ravel()[flat_moved]
        moved_idx = prev.ravel()[flat_moved]
        row_of = flat_moved // n
        d_counts = np.bincount(row_of, minlength=L)
        moved_offsets = np.zeros(L + 1, dtype=np.int64)
        np.cumsum(d_counts, out=moved_offsets[1:])
        keep_offsets = np.zeros(L + 1, dtype=np.int64)
        np.cumsum(n - d_counts, out=keep_offsets[1:])
        # Spine check: nondecreasing inside every row segment.  Offenders
        # are rare, so locate the descents and map them to rows.
        falls = np.flatnonzero(keep_keys[1:] < keep_keys[:-1]) + 1
        falls = falls[~np.isin(falls, keep_offsets[1:-1])]  # row seams
        healed = np.ones(L, dtype=bool)
        if falls.size:
            healed[np.searchsorted(keep_offsets[1:], falls, side="right")] = False
        # Sort every row's moved keys in one padded (L, d) argsort: pads
        # are the key dtype's maximum, so they stay in the trailing
        # columns (the keys are int64-unfolded floats; see
        # :meth:`_rank_adaptive`).
        d_max = int(d_counts.max())
        within = np.arange(flat_moved.size, dtype=np.int64) - moved_offsets[row_of]
        if np.issubdtype(keys.dtype, np.integer):
            pad_value = np.iinfo(keys.dtype).max
        else:
            pad_value = np.inf
        keys_matrix = np.full((L, d_max), pad_value, dtype=keys.dtype)
        keys_matrix[row_of, within] = moved_keys
        idx_matrix = np.zeros((L, d_max), dtype=prev.dtype)
        idx_matrix[row_of, within] = moved_idx
        order = np.argsort(keys_matrix, axis=1)
        keys_matrix = np.take_along_axis(keys_matrix, order, axis=1)
        idx_matrix = np.take_along_axis(idx_matrix, order, axis=1)
        positions = np.zeros((L, d_max), dtype=np.int64)
        for row in range(L):  # np.searchsorted is one-dimensional
            if healed[row]:
                positions[row] = np.searchsorted(
                    keep_keys[keep_offsets[row]:keep_offsets[row + 1]],
                    keys_matrix[row],
                    side="right",
                )
        # The nondecreasing-positions slot algebra of merge_repair, one
        # flat scatter per matrix: slot = position + insertions before it.
        # Pad columns (and unhealed rows, whose positions stay zero) never
        # collide because only the leading d_counts[row] columns scatter.
        real = np.arange(d_max, dtype=np.int64)[None, :] < d_counts[:, None]
        slots = (positions + np.arange(d_max, dtype=np.int64)[None, :])[real]
        merged = np.empty((L, n), dtype=prev.dtype)
        spine_mask = np.ones((L, n), dtype=bool)
        spine_mask[row_of, slots] = False
        merged[row_of, slots] = idx_matrix[real]
        merged[spine_mask] = keep_idx
        return merged, healed

    def _repair_tie_runs(
        self,
        perm: np.ndarray,
        sorted_keys: np.ndarray,
        tie_breaker: str,
        tie_keys: Optional[np.ndarray],
        ages: Optional[np.ndarray],
    ) -> None:
        """Reorder every run of equal primary keys by the exact tie-break rule.

        ``perm`` is modified in place.  Within a run the required order is:
        by tie key ascending (``random``), by age descending (``age``), or
        by page index ascending (``index``); remaining ties fall back to
        page index, matching ``np.lexsort`` stability in the sequential
        path.
        """
        equal_next = sorted_keys[:, 1:] == sorted_keys[:, :-1]
        for row in np.flatnonzero(equal_next.any(axis=1)):
            pairs = np.flatnonzero(equal_next[row])
            # Contiguous stretches of `pairs` are single runs of equal keys.
            breaks = np.flatnonzero(np.diff(pairs) > 1)
            run_starts = np.concatenate(([0], breaks + 1))
            run_ends = np.concatenate((breaks, [pairs.size - 1]))
            for lo, hi in zip(run_starts, run_ends, strict=True):
                a, b = pairs[lo], pairs[hi] + 2  # run spans positions a..b-1
                members = np.sort(perm[row, a:b])
                if tie_breaker == "random":
                    members = members[
                        np.argsort(tie_keys[row, members], kind="stable")
                    ]
                elif tie_breaker == "age":
                    members = members[
                        np.argsort(-ages[row, members], kind="stable")
                    ]
                perm[row, a:b] = members

    # ---------------------------------------------------- promotion_merge

    def promotion_merge(
        self,
        perms: np.ndarray,
        promoted_mask: np.ndarray,
        k: int,
        r: float,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        from repro.core.batch_rank import _flat_take

        R, n = perms.shape
        if k < 1:
            raise ValueError("k must be >= 1, got %d" % k)
        check_probability("r", r)
        # An empty community merges to the empty permutation without
        # touching any generator, matching the sequential early return.
        if n == 0:
            return perms.copy()
        # A protected prefix beyond the community is the whole community
        # (merge_positions clamps identically via min(k - 1, n_det)).
        k = min(int(k), n)
        mask_by_rank = _flat_take(promoted_mask, perms)
        n_promoted = mask_by_rank.sum(axis=1)
        n_deterministic = n - n_promoted

        values = self._partition_by_mask(perms, mask_by_rank, n_promoted)

        # Per-row generator work (the only non-batched part, by parity): the
        # promotion-pool shuffle followed by the merge coin flips, in the
        # same order and with the same sizes as the sequential path.  The
        # uniform draws land in one (R, n) buffer so everything after runs
        # through the backend's merge pass.
        # Undrawn slots keep coin value 1.0, which never passes `< r`
        # (r <= 1), so rows or prefixes without sequential draws contribute
        # no flips.
        draws = np.ones((R, n), dtype=float)
        for row in range(R):
            pool_size = int(n_promoted[row])
            if pool_size == 0:
                continue
            generator = rngs[row]
            pool_view = values[row, n - pool_size:]
            if pool_size > 1:
                generator.shuffle(pool_view)
            taken = min(k - 1, n - pool_size)
            if taken >= n or n - pool_size - taken == 0:
                continue  # sequential path draws no coins in these cases
            generator.random(out=draws[row, taken:])

        return self._merge_by_draws(values, draws, r, n_deterministic, n_promoted)

    def _partition_by_mask(
        self,
        perms: np.ndarray,
        mask_by_rank: np.ndarray,
        n_promoted: np.ndarray,
    ) -> np.ndarray:
        """Partition each row into [deterministic..., promoted...], rank order.

        A stable argsort of the boolean mask is exactly that partition.
        """
        from repro.core.batch_rank import _flat_take

        partition = np.argsort(mask_by_rank, axis=1, kind="stable")
        return _flat_take(perms, partition)

    def _merge_by_draws(
        self,
        values: np.ndarray,
        draws: np.ndarray,
        r: float,
        n_deterministic: np.ndarray,
        n_promoted: np.ndarray,
    ) -> np.ndarray:
        """Drain both lists by the drawn coins (clipped-cumsum slot algebra)."""
        from repro.core.batch_rank import _flat_take, batched_merge_counts

        R, n = values.shape
        flips = draws < r
        counts = batched_merge_counts(flips, n_deterministic, n_promoted)
        position = np.arange(n, dtype=np.int32)[None, :]
        # Slot j takes from the promotion pool iff the clipped count increased.
        take_promoted = np.empty((R, n), dtype=bool)
        take_promoted[:, 0] = counts[:, 0] > 0
        np.greater(counts[:, 1:], counts[:, :-1], out=take_promoted[:, 1:])
        source = np.where(
            take_promoted,
            n_deterministic.astype(np.int32)[:, None] + counts - 1,
            position - counts,
        )
        return _flat_take(values, source)

    # ---------------------------------------------------------- day tail

    def visit_allocate(
        self,
        rankings: np.ndarray,
        shares_by_rank: np.ndarray,
        rate: float,
        mode: str,
        rngs: Sequence[np.random.Generator],
        surfing_fraction: float = 0.0,
        surf_shares: Optional[np.ndarray] = None,
        out_shares: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        rankings = np.asarray(rankings)
        R, n = rankings.shape
        if out_shares is None:
            out_shares = np.empty((R, n), dtype=float)
        # Row-wise 1-D scatters: numpy's fast path for (1-D index, 1-D
        # contiguous values) beats one 2-D advanced-index scatter with a
        # broadcast right-hand side by ~2x at these shapes, and a scatter
        # over duplicate-free indices is order-independent, so the result
        # is bit-identical either way.
        for row in range(R):
            out_shares[row][rankings[row]] = shares_by_rank
        if surfing_fraction:
            if surf_shares is None:
                raise ValueError("surfing blend requires the surf_shares matrix")
            out_shares *= 1.0 - surfing_fraction
            out_shares += surfing_fraction * surf_shares
        monitored = allocate_monitored_visits_batch(out_shares, rate, mode, rngs)
        return out_shares, monitored

    def awareness_update(
        self,
        aware_count: np.ndarray,
        monitored_population: int,
        monitored_visits: np.ndarray,
        mode: str,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        gained = awareness_gain_batch(
            aware_count,
            monitored_population,
            monitored_visits,
            mode=mode,
            rngs=rngs,
        )
        np.minimum(monitored_population, aware_count + gained, out=aware_count)
        return aware_count

    def day_tail(
        self,
        rankings: np.ndarray,
        shares_by_rank: np.ndarray,
        rate: float,
        mode: str,
        rngs: Sequence[np.random.Generator],
        aware_count: np.ndarray,
        monitored_population: int,
        surfing_fraction: float = 0.0,
        surf_shares: Optional[np.ndarray] = None,
        out_shares: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Row-blocked fluid day tail: the unfused chain, L1/L2-resident.

        The default chain's elementwise passes allocate and stream full
        ``(R, n)`` temporaries between every step; here the same passes run
        over :data:`DAY_TAIL_BLOCK_ROWS`-row blocks with two reused block
        buffers, so each intermediate stays cache-resident.  Every step is
        the *same ufunc on the same values* as the reference chain
        (``visit_allocate`` + ``awareness_gain_batch`` + clip), just on row
        slices, so the result is bit-identical per element.  Stochastic
        mode and short batches keep the plain chain (per-row generator
        draws already block naturally, and small ``R`` has nothing to
        gain).
        """
        rankings = np.asarray(rankings)
        R, n = rankings.shape
        if mode != "fluid" or R <= DAY_TAIL_BLOCK_ROWS or n == 0:
            return super().day_tail(
                rankings, shares_by_rank, rate, mode, rngs,
                aware_count, monitored_population,
                surfing_fraction=surfing_fraction,
                surf_shares=surf_shares,
                out_shares=out_shares,
            )
        if out_shares is None:
            out_shares = np.empty((R, n), dtype=float)
        if surfing_fraction and surf_shares is None:
            raise ValueError("surfing blend requires the surf_shares matrix")
        m = monitored_population
        base = 1.0 - 1.0 / m  # hoisted exactly as the pow ufunc hoists it
        block = DAY_TAIL_BLOCK_ROWS
        visits_buf = np.empty((block, n), dtype=float)
        work_buf = np.empty((block, n), dtype=float)
        for lo in range(0, R, block):
            hi = min(lo + block, R)
            shares_block = out_shares[lo:hi]
            for row in range(lo, hi):
                out_shares[row][rankings[row]] = shares_by_rank
            if surfing_fraction:
                shares_block *= 1.0 - surfing_fraction
                shares_block += surfing_fraction * surf_shares[lo:hi]
            rows = hi - lo
            visits = visits_buf[:rows]
            work = work_buf[:rows]
            aware_block = aware_count[lo:hi]
            # allocate_monitored_visits_batch (fluid): shares * rate.
            np.multiply(shares_block, rate, out=visits)
            # awareness_gain_batch (fluid), operation for operation:
            # unaware = m - aware; p_new = base ** visits; 1 - p_new;
            # gained = unaware * p_new; then the chain's clip.
            np.subtract(m, aware_block, out=work)
            np.power(base, visits, out=visits)
            np.subtract(1.0, visits, out=visits)
            np.multiply(work, visits, out=visits)
            np.add(aware_block, visits, out=visits)
            np.minimum(m, visits, out=aware_block)
        return out_shares

    # -------------------------------------------------------- lane_repair

    def lane_repair(
        self,
        orders: Sequence[np.ndarray],
        popularity: Sequence[np.ndarray],
        dirty: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        repaired: List[np.ndarray] = []
        scratch: Optional[np.ndarray] = None  # shared across equal-size lanes
        for lane_order, lane_pop, lane_dirty in zip(orders, popularity, dirty, strict=True):
            merged, scratch = merge_repair(lane_order, lane_pop, lane_dirty, scratch)
            repaired.append(merged)
        return repaired

    # ----------------------------------------------------- feedback_flush

    def feedback_flush(
        self,
        aware: np.ndarray,
        popularity: np.ndarray,
        quality: np.ndarray,
        dirty: np.ndarray,
        touched: np.ndarray,
        summed: np.ndarray,
        monitored_population: int,
    ) -> None:
        m = monitored_population
        values = aware[touched]
        # awareness_gain (fluid): gained = (m - aware) * (1 - (1 - 1/m)**v),
        # elementwise — identical per entry to the per-lane call.
        gained = (m - values) * (1.0 - (1.0 - 1.0 / m) ** summed)
        updated = np.minimum(float(m), values + gained)
        aware[touched] = updated
        popularity[touched] = (updated / m) * quality[touched]
        dirty[touched] = True


#: Module-level singleton the registry hands out.
BACKEND = NumpyKernelBackend()

__all__ = [
    "NumpyKernelBackend",
    "BACKEND",
    "merge_repair",
    "RankRouteStats",
    "ROUTE_STATS",
]
