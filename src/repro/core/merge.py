"""The randomized merge of deterministic and promoted result lists (Section 4).

Given the deterministically ranked list ``L_d`` and the randomly shuffled
promotion list ``L_p``, the merged result list ``L`` is built as follows:

1. the top ``k - 1`` elements of ``L_d`` are copied to the front of ``L``;
2. each remaining position is filled by flipping a biased coin — with
   probability ``r`` the next element of ``L_p`` is taken, otherwise the next
   element of ``L_d``; once either list runs dry the other is drained.

``randomized_merge`` performs the merge on arrays of page indices;
``merge_positions`` exposes only the coin flips (which slots take from the
promotion list), which the analytical model and several tests use directly.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_probability


def merge_positions(
    n_total: int,
    n_promoted: int,
    k: int,
    r: float,
    rng: RandomSource = None,
) -> np.ndarray:
    """Return a boolean array over result slots: ``True`` = slot drawn from ``L_p``.

    Slots are indexed from 0 (rank 1).  The first ``k - 1`` slots are always
    ``False`` (protected deterministic results).  Exactly ``n_promoted``
    slots are ``True`` overall, because the merge drains both lists.
    """
    if n_total < 0 or n_promoted < 0 or n_promoted > n_total:
        raise ValueError("need 0 <= n_promoted <= n_total")
    if k < 1:
        raise ValueError("k must be >= 1, got %d" % k)
    check_probability("r", r)
    generator = as_rng(rng)

    slots = np.zeros(n_total, dtype=bool)
    n_deterministic = n_total - n_promoted
    taken_d = min(k - 1, n_deterministic)
    remaining_d = n_deterministic - taken_d
    remaining_p = n_promoted
    start = taken_d
    if remaining_p == 0 or start >= n_total:
        return slots
    if remaining_d == 0:
        slots[start:start + remaining_p] = True
        return slots

    # Vectorized merge: flip all coins up front, then find the slot at which
    # one of the two lists runs dry; beyond that point the other list drains.
    open_slots = n_total - start
    flips = generator.random(open_slots) < r
    from_promoted = np.cumsum(flips)
    from_deterministic = np.cumsum(~flips)
    promoted_exhausted = np.searchsorted(from_promoted, remaining_p)
    deterministic_exhausted = np.searchsorted(from_deterministic, remaining_d)
    if promoted_exhausted <= deterministic_exhausted:
        # Promotion list drains first; everything after is deterministic.
        cut = promoted_exhausted + 1
        slots[start:start + cut] = flips[:cut]
    else:
        # Deterministic list drains first; everything after is promoted.
        cut = deterministic_exhausted + 1
        slots[start:start + cut] = flips[:cut]
        slots[start + cut:] = True
    return slots


def randomized_merge(
    deterministic: np.ndarray,
    promoted: np.ndarray,
    k: int,
    r: float,
    rng: RandomSource = None,
    shuffle_promoted: bool = True,
) -> np.ndarray:
    """Merge ``L_d`` and ``L_p`` into the final result list ``L``.

    Args:
        deterministic: page indices in deterministic (popularity) order.
        promoted: page indices of the promotion pool; shuffled into ``L_p``
            here unless ``shuffle_promoted`` is False (the live study and
            some tests supply a pre-shuffled order).
        k: starting point; ranks better than ``k`` are never perturbed.
        r: degree of randomization, the bias of the merge coin.
        rng: random source for both the shuffle and the coin flips.

    Returns:
        An array containing each input index exactly once, ordered from rank
        1 to rank ``n``.
    """
    deterministic = np.asarray(deterministic, dtype=int)
    promoted = np.asarray(promoted, dtype=int)
    generator = as_rng(rng)

    overlap = np.intersect1d(deterministic, promoted)
    if overlap.size:
        raise ValueError("deterministic and promoted lists must be disjoint")

    promo = promoted.copy()
    if shuffle_promoted and promo.size > 1:
        generator.shuffle(promo)

    n_total = deterministic.size + promo.size
    slots = merge_positions(n_total, promo.size, k, r, generator)
    merged = np.empty(n_total, dtype=int)
    merged[slots] = promo
    merged[~slots] = deterministic
    return merged


__all__ = ["randomized_merge", "merge_positions"]
