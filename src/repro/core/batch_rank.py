"""Batched ranking kernels: R independent communities ranked in lockstep.

The batch simulation engine advances ``R`` replicate communities as ``(R, n)``
arrays.  The entry points here produce, for every row, *exactly* the
permutation the sequential code path produces — same random draws from the
same per-replicate generator, same result bit for bit — while doing the
heavy lifting (sorting, cumulative merge bookkeeping, gathers) across all
rows at once.

Since the kernel-dispatch refactor the implementations live behind the
:mod:`repro.core.kernels` backend API: :func:`batched_deterministic_order`
and :func:`batched_promotion_merge` are thin dispatchers onto the active
backend's ``rank_day`` / ``promotion_merge`` kernels (the numpy reference
backend carries the original code verbatim; the optional numba backend
fuses the same math into JIT loop nests).  The shared helpers that every
backend builds on — the flat row-wise gather and the clipped-cumsum merge
algebra — stay here.

Exactness argument for the deterministic order (implemented by the
backends): the sequential ``_deterministic_order`` is ``np.lexsort`` over
``(tie_key, -scores)`` (or the age/index variants), i.e. the unique
ordering by the composite key ``(-score, tie, index)``.  Any sorting
algorithm that realises that total order returns the same permutation, so
backends are free to use the fastest route: an unstable batched quicksort
on the primary key alone, followed by an exact repair of every run of
equal primary keys using the secondary/tertiary keys.  Ties are rare in
fluid mode (only freshly replaced pages share popularity zero) but can be
large in stochastic mode, where integer awareness counts collide; the
repair handles both.

The merge kernel mirrors ``repro.core.merge.merge_positions`` through a
closed form: with ``c[j]`` the running count of promotion-list picks after
``j + 1`` slots, draining both lists is equivalent to clipping ``c`` to
``[j + 1 - n_det, n_promoted]`` — the lower bound activates when the
deterministic list runs dry (every later slot takes from the promotion list)
and the upper bound when the promotion list does (every later slot takes from
the deterministic list).  ``tests/test_batch.py`` checks this equivalence
against ``merge_positions`` by brute force.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

import numpy as np

from repro.core.kernels import TIE_BREAKERS, get_backend


#: Single-slot, thread-local scratch for :func:`_flat_take` (row offsets and
#: the flat index buffer for the most recent (R, n) shape).  A simulation run
#: gathers thousands of times at one fixed shape, so one slot captures the
#: win while sweeps over many community sizes retain at most one shape's
#: buffers per thread; thread-locality keeps concurrently stepping engines
#: (e.g. a ThreadPoolExecutor policy sweep) from clobbering each other.
_FLAT_TAKE_SCRATCH = threading.local()


def _flat_take(matrix: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Row-wise gather ``matrix[r, indices[r]]`` via one flat ``take``."""
    R, n = matrix.shape
    scratch = getattr(_FLAT_TAKE_SCRATCH, "slot", None)
    if scratch is None or scratch[0] != (R, n):
        scratch = (
            (R, n),
            (np.arange(R, dtype=np.int64) * n)[:, None],
            np.empty((R, n), dtype=np.int64),
        )
        _FLAT_TAKE_SCRATCH.slot = scratch
    _, offsets, flat_indices = scratch
    np.add(indices, offsets, out=flat_indices)
    return matrix.ravel().take(flat_indices)


def batched_deterministic_order(
    scores: np.ndarray,
    ages: Optional[np.ndarray],
    tie_breaker: str,
    rngs: Sequence[np.random.Generator],
    out_tie_keys: Optional[np.ndarray] = None,
    prev_perm: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Batched equivalent of ``rankers._deterministic_order`` row by row.

    Dispatches to the active kernel backend's ``rank_day``.

    Args:
        scores: ``(R, n)`` ranking scores (higher is better).
        ages: ``(R, n)`` page ages, required for ``tie_breaker="age"``.
        tie_breaker: one of ``TIE_BREAKERS``.
        rngs: one generator per row; consulted (one ``random(n)`` draw per
            row, same as the sequential path) only for ``"random"``.
        out_tie_keys: optional ``(R, n)`` float buffer; with
            ``tie_breaker="random"`` the per-row tie keys are drawn into it,
            so callers that *maintain* the resulting order (the serving
            sweep) can keep the keys alongside the permutation.
        prev_perm: optional ``(R, n)`` hint — each row's permutation from
            the previous ranking of the same community.  On near-sorted
            days the backend merges the surviving sorted runs instead of
            re-sorting (falling back to the full sort otherwise); the
            result is bit-identical either way.

    Returns:
        ``(R, n)`` permutations, each bit-identical to what
        ``_deterministic_order(scores[r], ages[r], tie_breaker, rngs[r])``
        would return.
    """
    return get_backend().rank_day(
        scores, ages, tie_breaker, rngs,
        out_tie_keys=out_tie_keys, prev_perm=prev_perm,
    )


def batched_merge_counts(
    flips: np.ndarray, n_deterministic: np.ndarray, n_promoted: np.ndarray
) -> np.ndarray:
    """Running promotion-pick counts per slot with both lists draining.

    ``flips`` is the ``(R, n)`` coin matrix (``True`` = try the promotion
    list), already ``False`` in each row's protected prefix and in rows that
    drew no coins.  Returns the clipped cumulative count ``c`` described in
    the module docstring; slot ``j`` takes from the promotion list exactly
    when ``c[j] > c[j - 1]``.
    """
    R, n = flips.shape
    counts = np.cumsum(flips, axis=1, dtype=np.int32)
    position = np.arange(1, n + 1, dtype=np.int32)
    lower = position[None, :] - n_deterministic.astype(np.int32)[:, None]
    np.maximum(counts, lower, out=counts)
    np.minimum(counts, n_promoted.astype(np.int32)[:, None], out=counts)
    return counts


def batched_prefix_promotion_slots(
    flips: np.ndarray, n_deterministic: np.ndarray, n_promoted: np.ndarray
) -> np.ndarray:
    """Promotion-slot masks for the first ``k`` slots of many merges at once.

    The serving engine's prefix-only randomized promotion
    (:meth:`ServingEngine._merge_prefix <repro.serving.engine.ServingEngine>`)
    decides, for the ``k`` visible slots alone, which slots take from the
    promotion pool: the merge coins are flipped for the unprotected visible
    slots, promotions are truncated when the pool drains, and trailing slots
    are forced onto the pool when the deterministic list drains inside the
    page.  All three behaviours are the clipped-cumsum slot algebra of
    :func:`batched_merge_counts` restricted to the page prefix — the running
    count only ever depends on earlier slots — so one batched call covers
    every merge in the batch.

    Args:
        flips: ``(L, k_max)`` coin matrix, ``True`` where a slot's coin asks
            for the promotion list.  Rows serving fewer than ``k_max`` slots
            (and protected prefixes) must be ``False``-padded; padding never
            flips because undrawn coins never pass the bias test.
        n_deterministic: ``(L,)`` size of each row's unpromoted list.
        n_promoted: ``(L,)`` size of each row's promotion pool.

    Returns:
        ``(L, k_max)`` boolean matrix; row ``i`` sliced to its page length
        ``k_i`` equals the ``slots`` vector the sequential ``_merge_prefix``
        builds, provided ``k_i <= n_deterministic[i] + n_promoted[i]`` (which
        ``top_k``'s ``k = min(k, n)`` clamp guarantees).  The number of
        promoted slots in the page is the row's clipped count at ``k_i - 1``,
        i.e. ``slots[i, :k_i].sum()``.
    """
    counts = batched_merge_counts(flips, n_deterministic, n_promoted)
    slots = np.empty(flips.shape, dtype=bool)
    slots[:, 0] = counts[:, 0] > 0
    np.greater(counts[:, 1:], counts[:, :-1], out=slots[:, 1:])
    return slots


def batched_promotion_merge(
    perms: np.ndarray,
    promoted_mask: np.ndarray,
    k: int,
    r: float,
    rngs: Sequence[np.random.Generator],
) -> np.ndarray:
    """Batched equivalent of the sequential randomized merge, row by row.

    Dispatches to the active kernel backend's ``promotion_merge``.  For
    each row this reproduces ``randomized_merge(deterministic, promoted,
    k, r, rng)`` exactly: the promotion pool is the masked subsequence of
    the deterministic order, shuffled with the row's generator, and merged
    via the same coin flips.  Rows with an empty pool return their
    deterministic order untouched and consult their generator not at all,
    matching the sequential early return.

    Args:
        perms: ``(R, n)`` deterministic orders (modified only by copy).
        promoted_mask: ``(R, n)`` boolean pool membership per page index.
        k: protected prefix length (ranks better than ``k`` never move).
        r: merge coin bias.
        rngs: one generator per row.
    """
    return get_backend().promotion_merge(perms, promoted_mask, k, r, rngs)


__all__ = [
    "batched_deterministic_order",
    "batched_promotion_merge",
    "batched_merge_counts",
    "batched_prefix_promotion_slots",
    "TIE_BREAKERS",
]
