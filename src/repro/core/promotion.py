"""Promotion pool selection rules.

A promotion rule decides which pages are candidates for exploration, i.e.
which pages are placed in the promotion pool ``P_p`` of the randomized merge.
The paper studies the two extremes of the spectrum:

* :class:`UniformPromotionRule` — every page enters the pool independently
  with probability ``r``;
* :class:`SelectivePromotionRule` — exactly the pages whose awareness among
  monitored users is zero enter the pool.

Additional rules (:class:`AgeThresholdPromotionRule`,
:class:`PopularityThresholdPromotionRule`) are provided as natural points in
between, used by the ablation benchmarks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.rankers_context import BatchRankingContext, RankingContext
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive, check_probability


class PromotionRule(abc.ABC):
    """Selects the promotion pool from the current community state."""

    @abc.abstractmethod
    def select(self, context: RankingContext, rng: RandomSource = None) -> np.ndarray:
        """Return a boolean mask over pages: ``True`` marks promoted pages."""

    def select_batch(
        self,
        context: BatchRankingContext,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Select pools for ``R`` replicates at once; returns an ``(R, n)`` mask.

        Row ``r`` must equal ``self.select(context.row(r), rngs[r])``,
        consuming ``rngs[r]`` exactly as the sequential call would.  The
        default loops over rows so custom rules stay compatible; the built-in
        rules override it with vectorized (or draw-preserving) versions.
        """
        return np.asarray(
            [
                self.select(context.row(row), rngs[row])
                for row in range(context.replicates)
            ],
            dtype=bool,
        )

    def describe(self) -> str:
        """Short description used in experiment reports."""
        return type(self).__name__


@dataclass(frozen=True)
class NoPromotionRule(PromotionRule):
    """Empty promotion pool; combined with any merge this is deterministic ranking."""

    def select(self, context: RankingContext, rng: RandomSource = None) -> np.ndarray:
        return np.zeros(context.n, dtype=bool)

    def select_batch(
        self,
        context: BatchRankingContext,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        return np.zeros((context.replicates, context.n), dtype=bool)


@dataclass(frozen=True)
class UniformPromotionRule(PromotionRule):
    """Every page is promoted independently with probability ``probability``.

    The paper ties this probability to the degree of randomization ``r`` of
    the merge, so the expected pool is an ``r`` fraction of the community.
    """

    probability: float = 0.1

    def __post_init__(self) -> None:
        check_probability("probability", self.probability)

    def select(self, context: RankingContext, rng: RandomSource = None) -> np.ndarray:
        generator = as_rng(rng)
        return generator.random(context.n) < self.probability

    def select_batch(
        self,
        context: BatchRankingContext,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        draws = np.empty((context.replicates, context.n), dtype=float)
        for row in range(context.replicates):
            as_rng(rngs[row]).random(out=draws[row])
        return draws < self.probability

    def describe(self) -> str:
        return "Uniform(p=%.3f)" % self.probability


@dataclass(frozen=True)
class SelectivePromotionRule(PromotionRule):
    """Promote exactly the pages with zero awareness among monitored users.

    This is the rule the paper recommends: with a small randomization budget,
    focusing it entirely on pages that no monitored user has discovered yet
    is the most effective use of exploration.

    "Zero awareness" means fewer than one aware monitored user.  Under the
    simulator's stochastic mode awareness counts are integers, so this is the
    literal zero-awareness set; under the fluid (expected-value) mode it is
    the natural analogue — pages whose expected number of aware users is
    still below one.
    """

    def select(self, context: RankingContext, rng: RandomSource = None) -> np.ndarray:
        awareness = np.asarray(context.awareness)
        if context.monitored_population:
            return awareness * context.monitored_population < 1.0 - 1e-9
        return awareness <= 0.0

    def select_batch(
        self,
        context: BatchRankingContext,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        awareness = context.awareness
        if context.monitored_population:
            return awareness * context.monitored_population < 1.0 - 1e-9
        return awareness <= 0.0

    def describe(self) -> str:
        return "Selective(zero-awareness)"


@dataclass(frozen=True)
class AgeThresholdPromotionRule(PromotionRule):
    """Promote pages younger than ``max_age_days``.

    An extension rule in the spirit of the age-weighted PageRank baselines
    discussed in the paper's related work: exploration is aimed at recency
    rather than at observed awareness.
    """

    max_age_days: float = 30.0

    def __post_init__(self) -> None:
        check_positive("max_age_days", self.max_age_days)

    def select(self, context: RankingContext, rng: RandomSource = None) -> np.ndarray:
        if context.ages is None:
            raise ValueError("AgeThresholdPromotionRule requires page ages in the context")
        return np.asarray(context.ages) < self.max_age_days

    def select_batch(
        self,
        context: BatchRankingContext,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        if context.ages is None:
            raise ValueError("AgeThresholdPromotionRule requires page ages in the context")
        return context.ages < self.max_age_days

    def describe(self) -> str:
        return "AgeThreshold(<%.0f days)" % self.max_age_days


@dataclass(frozen=True)
class PopularityThresholdPromotionRule(PromotionRule):
    """Promote pages whose popularity is below ``threshold``.

    Generalizes the selective rule (which is the special case
    ``threshold -> 0+`` measured on awareness): any page the popularity
    signal considers negligible is given a chance to prove itself.
    """

    threshold: float = 0.01

    def __post_init__(self) -> None:
        check_probability("threshold", self.threshold)

    def select(self, context: RankingContext, rng: RandomSource = None) -> np.ndarray:
        return np.asarray(context.popularity) < self.threshold

    def select_batch(
        self,
        context: BatchRankingContext,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        return context.popularity < self.threshold

    def describe(self) -> str:
        return "PopularityThreshold(<%.3f)" % self.threshold


__all__ = [
    "PromotionRule",
    "NoPromotionRule",
    "UniformPromotionRule",
    "SelectivePromotionRule",
    "AgeThresholdPromotionRule",
    "PopularityThresholdPromotionRule",
]
