"""Core contribution: randomized rank promotion for search result ranking.

This package implements the scheme of Section 4 of the paper:

1. a *promotion rule* selects the promotion pool ``P_p`` (uniform at random
   with probability ``r``, or selectively the zero-awareness pages);
2. the promotion pool is shuffled into a randomized list ``L_p`` while the
   remaining pages are ranked deterministically by popularity into ``L_d``;
3. the two lists are merged: the top ``k - 1`` deterministic results are
   protected, and every later slot is filled from ``L_p`` with probability
   ``r`` and from ``L_d`` otherwise.

The :class:`~repro.core.rankers.Ranker` hierarchy exposes this scheme next to
the baselines it is evaluated against (pure popularity ranking, a fully
random ranking, and the quality-ordered oracle used to normalize QPC), and
:class:`~repro.core.policy.RankPromotionPolicy` captures the paper's
recommended recipe (selective promotion, ``r = 0.1``, ``k`` in ``{1, 2}``).
"""

from repro.core.promotion import (
    AgeThresholdPromotionRule,
    NoPromotionRule,
    PopularityThresholdPromotionRule,
    PromotionRule,
    SelectivePromotionRule,
    UniformPromotionRule,
)
from repro.core.batch_rank import (
    batched_deterministic_order,
    batched_promotion_merge,
)
from repro.core.merge import randomized_merge, merge_positions
from repro.core.rankers import (
    PopularityRanker,
    QualityOracleRanker,
    RandomRanker,
    RandomizedPromotionRanker,
    Ranker,
    RankingContext,
)
from repro.core.rankers_context import BatchRankingContext
from repro.core.policy import RankPromotionPolicy, RECOMMENDED_POLICY

__all__ = [
    "PromotionRule",
    "UniformPromotionRule",
    "SelectivePromotionRule",
    "NoPromotionRule",
    "AgeThresholdPromotionRule",
    "PopularityThresholdPromotionRule",
    "randomized_merge",
    "merge_positions",
    "Ranker",
    "RankingContext",
    "BatchRankingContext",
    "batched_deterministic_order",
    "batched_promotion_merge",
    "PopularityRanker",
    "RandomizedPromotionRanker",
    "QualityOracleRanker",
    "RandomRanker",
    "RankPromotionPolicy",
    "RECOMMENDED_POLICY",
]
