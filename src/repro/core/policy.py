"""Rank promotion policy objects and the paper's recommended recipe.

A :class:`RankPromotionPolicy` is a declarative description of a randomized
rank promotion configuration (promotion rule kind, ``k``, ``r``).  It can be
turned into a concrete :class:`~repro.core.rankers.Ranker` for the simulator
or into a :class:`~repro.analysis.spec.RankingSpec` for the analytical model,
so both evaluation paths are guaranteed to study the same configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.promotion import (
    NoPromotionRule,
    SelectivePromotionRule,
    UniformPromotionRule,
)
from repro.core.rankers import PopularityRanker, RandomizedPromotionRanker, Ranker
from repro.utils.validation import check_probability

VALID_RULES = ("none", "uniform", "selective")


@dataclass(frozen=True)
class RankPromotionPolicy:
    """Declarative configuration of a randomized rank promotion scheme.

    Attributes:
        rule: ``"none"``, ``"uniform"`` or ``"selective"``.
        k: starting point; ranks better than ``k`` are never displaced.
        r: degree of randomization.
    """

    rule: str = "selective"
    k: int = 1
    r: float = 0.1

    def __post_init__(self) -> None:
        if self.rule not in VALID_RULES:
            raise ValueError("rule must be one of %s, got %r" % (VALID_RULES, self.rule))
        if self.k < 1:
            raise ValueError("k must be >= 1, got %d" % self.k)
        check_probability("r", self.r)

    @property
    def is_deterministic(self) -> bool:
        """True when the policy reduces to pure popularity ranking."""
        return self.rule == "none" or self.r == 0.0

    def build_ranker(self) -> Ranker:
        """Instantiate the concrete ranker implementing this policy."""
        if self.is_deterministic:
            return PopularityRanker()
        if self.rule == "uniform":
            return RandomizedPromotionRanker(UniformPromotionRule(self.r), k=self.k, r=self.r)
        return RandomizedPromotionRanker(SelectivePromotionRule(), k=self.k, r=self.r)

    def describe(self) -> str:
        """Short description used in experiment reports."""
        if self.is_deterministic:
            return "No randomization"
        return "%s promotion (k=%d, r=%.2f)" % (self.rule.capitalize(), self.k, self.r)


#: The paper's recommendation: selective promotion, 10% randomization, k = 1.
RECOMMENDED_POLICY = RankPromotionPolicy(rule="selective", k=1, r=0.1)

#: Variant preserving the "feeling lucky" top result.
RECOMMENDED_POLICY_SAFE_TOP = RankPromotionPolicy(rule="selective", k=2, r=0.1)

#: Pure popularity ranking, for baselines.
DETERMINISTIC_POLICY = RankPromotionPolicy(rule="none", k=1, r=0.0)

__all__ = [
    "RankPromotionPolicy",
    "RECOMMENDED_POLICY",
    "RECOMMENDED_POLICY_SAFE_TOP",
    "DETERMINISTIC_POLICY",
    "VALID_RULES",
]
