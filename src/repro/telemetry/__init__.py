"""Zero-overhead-when-disabled observability for the serving stack.

Public surface:

* :class:`TelemetryRecorder` / :data:`NULL_RECORDER` — the shared
  per-run recorder and its disabled null twin (`recorder`).
* :class:`Counter` / :class:`Gauge` / :class:`P2Quantile` /
  :class:`QuantileBank` — core instruments (`instruments`).
* :class:`SlidingWindowCounters` — the O(1) windowed aggregator
  (`window`).
* :class:`SpanTable` / :class:`TimedKernelBackend` — timing spans and
  the kernel-registry proxy (`spans`).

Everything defaults off: components hold :data:`NULL_RECORDER` until a
run hands them a live recorder, and the kernel registry dispatches the
raw backends until :meth:`TelemetryRecorder.install_kernel_spans` hooks
the proxy in.
"""

from repro.telemetry.instruments import Counter, Gauge, P2Quantile, QuantileBank
from repro.telemetry.recorder import (
    BASE_FIELDS,
    DEFAULT_BUCKETS,
    DEFAULT_QUANTILE_SAMPLE,
    DEFAULT_QUANTILES,
    DEFAULT_WINDOW,
    NULL_RECORDER,
    NullRecorder,
    TelemetryRecorder,
)
from repro.telemetry.spans import Span, SpanTable, TimedKernelBackend
from repro.telemetry.window import SlidingWindowCounters, ratio

__all__ = [
    "BASE_FIELDS",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILE_SAMPLE",
    "DEFAULT_QUANTILES",
    "DEFAULT_WINDOW",
    "Gauge",
    "NULL_RECORDER",
    "NullRecorder",
    "P2Quantile",
    "QuantileBank",
    "SlidingWindowCounters",
    "Span",
    "SpanTable",
    "TelemetryRecorder",
    "TimedKernelBackend",
    "ratio",
]
