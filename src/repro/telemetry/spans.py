"""Timing spans for the kernel dispatch layer (and anything else).

A :class:`SpanTable` is a name -> (count, total seconds) accumulator; a
:class:`TimedKernelBackend` is a :class:`~repro.core.kernels.api.KernelBackend`
proxy that times every kernel call into such a table while delegating the
actual work (and the parity contract) to the wrapped backend.  The proxy
is installed through the kernel registry's instrumentation hook
(:func:`repro.core.kernels.set_kernel_instrumentation`), so every
``get_backend()`` dispatch site — the batch simulator's day step, the
sweep's grouped repairs and feedback flushes, the serving state's flush
path — reports per-kernel wall time without any of those call sites
changing.  When no recorder is installed the hook is a single ``is None``
check and the proxy never exists: zero overhead for the default path.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.kernels.api import KernelBackend


class Span:
    """One named timing context (used via :meth:`SpanTable.span`)."""

    __slots__ = ("table", "name", "_started")

    def __init__(self, table: "SpanTable", name: str) -> None:
        self.table = table
        self.name = name
        self._started = 0.0

    def __enter__(self) -> "Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.table.observe(self.name, time.perf_counter() - self._started)


class SpanTable:
    """Accumulates call count and total wall time per span name."""

    __slots__ = ("_spans",)

    def __init__(self) -> None:
        self._spans: Dict[str, List[float]] = {}

    def observe(self, name: str, seconds: float) -> None:
        """Fold one completed span into the table."""
        entry = self._spans.get(name)
        if entry is None:
            self._spans[name] = [1.0, seconds]
        else:
            entry[0] += 1.0
            entry[1] += seconds

    def span(self, name: str) -> Span:
        """A ``with``-statement timing context recording into ``name``."""
        return Span(self, name)

    def __len__(self) -> int:
        return len(self._spans)

    def as_dict(self) -> Dict[str, float]:
        """Flat ``{span_<name>_calls, span_<name>_seconds}`` report."""
        report: Dict[str, float] = {}
        for name in sorted(self._spans):
            count, seconds = self._spans[name]
            report["span_%s_calls" % name] = count
            report["span_%s_seconds" % name] = seconds
        return report


class TimedKernelBackend(KernelBackend):
    """Kernel backend proxy: same results, plus a span per kernel call.

    Spans are named ``<kernel>@<backend>`` (``rank_day@numpy``), so a run
    that mixes backends (or falls back) keeps the attribution honest.
    ``day_tail`` is timed as the composite the caller sees; the wrapped
    backend's internal ``visit_allocate``/``awareness_update`` chaining is
    *not* separately timed (the inner backend calls its own methods, not
    the proxy's), which keeps span totals additive.
    """

    def __init__(self, inner: KernelBackend, spans: SpanTable) -> None:
        self._inner = inner
        self._spans = spans
        self.name = inner.name

    def _record(self, kernel: str, started: float) -> None:
        self._spans.observe(
            "%s@%s" % (kernel, self._inner.name), time.perf_counter() - started
        )

    # ------------------------------------------------------------- kernels

    def rank_day(
        self,
        scores: np.ndarray,
        ages: Optional[np.ndarray],
        tie_breaker: str,
        rngs: Sequence[np.random.Generator],
        out_tie_keys: Optional[np.ndarray] = None,
        prev_perm: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        started = time.perf_counter()
        try:
            return self._inner.rank_day(
                scores, ages, tie_breaker, rngs,
                out_tie_keys=out_tie_keys, prev_perm=prev_perm,
            )
        finally:
            self._record("rank_day", started)

    def awareness_update(
        self,
        aware_count: np.ndarray,
        monitored_population: int,
        monitored_visits: np.ndarray,
        mode: str,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        started = time.perf_counter()
        try:
            return self._inner.awareness_update(
                aware_count, monitored_population, monitored_visits, mode, rngs
            )
        finally:
            self._record("awareness_update", started)

    def visit_allocate(
        self,
        rankings: np.ndarray,
        shares_by_rank: np.ndarray,
        rate: float,
        mode: str,
        rngs: Sequence[np.random.Generator],
        surfing_fraction: float = 0.0,
        surf_shares: Optional[np.ndarray] = None,
        out_shares: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        started = time.perf_counter()
        try:
            return self._inner.visit_allocate(
                rankings, shares_by_rank, rate, mode, rngs,
                surfing_fraction=surfing_fraction,
                surf_shares=surf_shares,
                out_shares=out_shares,
            )
        finally:
            self._record("visit_allocate", started)

    def promotion_merge(
        self,
        perms: np.ndarray,
        promoted_mask: np.ndarray,
        k: int,
        r: float,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        started = time.perf_counter()
        try:
            return self._inner.promotion_merge(perms, promoted_mask, k, r, rngs)
        finally:
            self._record("promotion_merge", started)

    def lane_repair(
        self,
        orders: Sequence[np.ndarray],
        popularity: Sequence[np.ndarray],
        dirty: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        started = time.perf_counter()
        try:
            return self._inner.lane_repair(orders, popularity, dirty)
        finally:
            self._record("lane_repair", started)

    def feedback_flush(
        self,
        aware: np.ndarray,
        popularity: np.ndarray,
        quality: np.ndarray,
        dirty: np.ndarray,
        touched: np.ndarray,
        summed: np.ndarray,
        monitored_population: int,
    ) -> None:
        started = time.perf_counter()
        try:
            return self._inner.feedback_flush(
                aware, popularity, quality, dirty, touched, summed,
                monitored_population,
            )
        finally:
            self._record("feedback_flush", started)

    # ----------------------------------------------------------- composite

    def day_tail(
        self,
        rankings: np.ndarray,
        shares_by_rank: np.ndarray,
        rate: float,
        mode: str,
        rngs: Sequence[np.random.Generator],
        aware_count: np.ndarray,
        monitored_population: int,
        surfing_fraction: float = 0.0,
        surf_shares: Optional[np.ndarray] = None,
        out_shares: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        started = time.perf_counter()
        try:
            return self._inner.day_tail(
                rankings, shares_by_rank, rate, mode, rngs,
                aware_count, monitored_population,
                surfing_fraction=surfing_fraction,
                surf_shares=surf_shares,
                out_shares=out_shares,
            )
        finally:
            self._record("day_tail", started)

    # ------------------------------------------------------------- utility

    def warmup(self) -> None:
        self._inner.warmup()

    def describe(self) -> str:
        return "%s+spans" % self._inner.describe()


__all__ = ["Span", "SpanTable", "TimedKernelBackend"]
