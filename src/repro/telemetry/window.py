"""O(1)-per-event sliding-window aggregation over a counter vector.

The naive way to report "cache hit rate over the last W queries" is to
keep the last W per-query rows and re-aggregate them on demand — O(W)
memory and O(W) work per report, per metric.  This module replaces that
per-row recomputation with incremental window state (the window-function
optimization idea: evaluate the frame from running state instead of
re-scanning it):

* every metric is a **cumulative** counter, bumped in O(1) as events
  stream in;
* a ring of **sub-window snapshots** records the cumulative vector at
  every bucket boundary (``window / buckets`` events apart);
* the trailing-window aggregate is then ``cumulative_now - snapshot at
  the window's start`` — two vector reads, no rescan, for any number of
  metrics.

Because a window aggregate is a *difference of cumulative sums* rather
than a sum of evicted-and-re-added buckets, no floating-point drift
accumulates over the stream; in particular, while the stream is shorter
than the window the baseline snapshot is the all-zeros origin and every
windowed value equals the cumulative (end-of-run) value **bit for bit**
— the exactness property ``tests/test_telemetry.py`` pins down.

The window advances in *events* (served queries), not wall time: the
serving stack is replay-driven and deterministic per event index, so
event-indexed windows make telemetry reproducible run to run.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple


class SlidingWindowCounters:
    """Cumulative counters with a snapshot ring for trailing-window deltas.

    Args:
        fields: ordered metric names; callers address them by index (the
            recorder resolves indices once at construction, keeping the
            per-event path free of dict lookups).
        window: number of events one full window spans.
        buckets: sub-windows per window; the snapshot/emission granularity
            (window deltas are exact at every boundary, the ring just
            bounds how often boundaries occur and how much history is
            kept — ``buckets`` snapshots, independent of the stream
            length).
    """

    def __init__(self, fields: Sequence[str], window: int, buckets: int = 8) -> None:
        if window < 1:
            raise ValueError("window must be >= 1, got %d" % window)
        if buckets < 1:
            raise ValueError("buckets must be >= 1, got %d" % buckets)
        self.fields = [str(name) for name in fields]
        if len(set(self.fields)) != len(self.fields):
            raise ValueError("field names must be unique")
        self.window = int(window)
        self.bucket_size = max(1, -(-self.window // int(buckets)))  # ceil
        self.capacity = -(-self.window // self.bucket_size)
        self.events = 0
        self.cumulative: List[float] = [0.0] * len(self.fields)
        # Ring of (event index, wall time, cumulative snapshot).  Seeded
        # with the zero origin so partial windows at the head of the stream
        # aggregate from event 0; maxlen keeps exactly one snapshot at
        # events - window once the stream saturates the ring.
        self._ring: Deque[Tuple[int, float, List[float]]] = deque(
            [(0, time.perf_counter(), [0.0] * len(self.fields))],
            maxlen=self.capacity,
        )

    def index_of(self, field: str) -> int:
        """Resolve a field name to its counter index (construction time)."""
        return self.fields.index(field)

    def add(self, index: int, amount: float = 1.0) -> None:
        """Bump one counter; O(1), no window bookkeeping."""
        self.cumulative[index] += amount

    def tick(self) -> bool:
        """Advance the event stream by one; True at a bucket boundary.

        The caller emits a row when ``tick`` returns True (and typically a
        final partial row at stream end via :meth:`delta`), then calls
        :meth:`rotate` to push the boundary snapshot.
        """
        self.events += 1
        return self.events % self.bucket_size == 0

    def rotate(self) -> None:
        """Push the current cumulative vector as a bucket-boundary snapshot."""
        self._ring.append(
            (self.events, time.perf_counter(), list(self.cumulative))
        )

    def pending(self) -> bool:
        """True when counters moved since the last snapshot.

        Catches both a partial bucket and trailing non-query events (e.g.
        the feedback of the final query, an end-of-stream flush) that
        arrived after the last boundary row — exactly the cases a final
        :meth:`~repro.telemetry.recorder.TelemetryRecorder.flush_window`
        row must still cover for windowed rows to add up to the end-of-run
        totals.
        """
        return self.cumulative != self._ring[-1][2]

    def delta(self) -> Tuple[int, int, float, List[float]]:
        """Trailing-window aggregate as of now.

        Returns ``(start_event, end_event, elapsed_seconds, values)``
        where ``values[i]`` is the in-window total of ``fields[i]`` over
        events ``(start_event, end_event]`` and ``elapsed_seconds`` the
        wall time since the baseline snapshot.
        """
        start_event, started, base = self._ring[0]
        now = time.perf_counter()
        values = [
            current - origin for current, origin in zip(self.cumulative, base, strict=True)
        ]
        return start_event, self.events, now - started, values

    def row(self) -> Dict[str, float]:
        """The trailing-window aggregate as a flat named dictionary."""
        start_event, end_event, elapsed, values = self.delta()
        row: Dict[str, float] = {
            "event_start": float(start_event),
            "event_end": float(end_event),
            "window_events": float(end_event - start_event),
            "window_seconds": elapsed,
        }
        for name, value in zip(self.fields, values, strict=True):
            row[name] = value
        return row


def ratio(numerator: float, denominator: float) -> Optional[float]:
    """Safe ratio for derived window metrics (None when undefined)."""
    if denominator == 0:
        return None
    return numerator / denominator


__all__ = ["SlidingWindowCounters", "ratio"]
