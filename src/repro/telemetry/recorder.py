"""The telemetry recorder: windowed serving metrics, spans, JSONL output.

One :class:`TelemetryRecorder` is shared by every instrumented component
of a run (router, engines, result caches, batch simulator, kernel proxy).
Hot paths call its ``record_*`` methods, which are plain counter bumps
into a :class:`~repro.telemetry.window.SlidingWindowCounters`; at every
sub-window boundary the recorder derives a windowed metrics row (hit
rate, staleness, QPC, per-shard QPS over the trailing window) and emits
it as one JSON line.  :meth:`snapshot` folds the end-of-run totals,
stream quantiles and kernel spans into a flat dictionary for benchmark
``extra_info``.

The **disabled** path is :data:`NULL_RECORDER` — a stateless singleton
whose ``enabled`` attribute is False and whose methods do nothing.
Instrumented hot paths hold a recorder reference and guard with
``if telemetry.enabled:``, so a run without telemetry pays one attribute
load and a predictable branch per event, nothing else.
"""

from __future__ import annotations

import json
from typing import Dict, IO, List, Optional, Sequence, Union

from repro.telemetry.instruments import QuantileBank
from repro.telemetry.spans import SpanTable, TimedKernelBackend
from repro.telemetry.window import SlidingWindowCounters, ratio

#: Counter layout of the sliding window (order is the wire format of the
#: JSONL rows; per-shard query counters are appended after these).
BASE_FIELDS = (
    "queries",
    "cache_hits",
    "cache_misses",
    "occ_rejections",
    "staleness_sum",
    "feedback_events",
    "clicked_quality_sum",
    "flushes",
    "flush_size_sum",
    "repairs",
    "full_sorts",
    # OCC write path + degradation (PR 7); appended so the hot-path
    # cumulative indices of the earlier fields stay frozen.
    "occ_conflicts",
    "occ_retries",
    "occ_dead_letters",
    "degraded_serves",
    "load_sheds",
    # Adaptive rank_day route mix (PR 9); appended so earlier cumulative
    # indices stay frozen.
    "rank_route_full",
    "rank_route_run_merge",
    "rank_route_windowed",
    "rank_route_copy",
    "rank_displacement_sum",
)

DEFAULT_WINDOW = 1024
DEFAULT_BUCKETS = 8
DEFAULT_QUANTILES = (0.5, 0.9)

#: Default sample stride for the stream quantile sketches: every Nth
#: staleness observation is folded into the P² bank (statsd-style sample
#: rate).  Counters stay exact — sampling only thins the quantile feed,
#: whose P50/P90 estimates are statistical to begin with — and it keeps
#: the per-event cost of an *enabled* recorder inside the overhead budget
#: ``benchmarks/test_bench_telemetry.py`` gates.  Pass ``1`` to observe
#: every event.
DEFAULT_QUANTILE_SAMPLE = 8


class NullRecorder:
    """The do-nothing recorder installed on every hot path by default."""

    enabled = False

    def record_query(self, shard: int) -> None:
        pass

    def record_hit(self, staleness: int) -> None:
        pass

    def record_miss(self) -> None:
        pass

    def record_occ_rejection(self, staleness: int) -> None:
        pass

    def record_feedback(self, quality: float) -> None:
        pass

    def record_flush(self, size: int) -> None:
        pass

    def record_repair(self) -> None:
        pass

    def record_full_sort(self) -> None:
        pass

    def record_commit_conflict(self) -> None:
        pass

    def record_commit_retry(self) -> None:
        pass

    def record_dead_letter(self, events: int) -> None:
        pass

    def record_degraded_serve(self, staleness: int) -> None:
        pass

    def record_load_shed(self) -> None:
        pass

    def record_rank_routes(
        self,
        full: int,
        run_merge: int,
        windowed: int,
        copy: int,
        displacement_sum: int,
    ) -> None:
        pass

    def record_recovery(self, shard: int, seconds: float) -> None:
        pass

    def record_day_step(self, day: int, seconds: float) -> None:
        pass

    def emit_row(self, row: Dict[str, float]) -> None:
        pass

    def snapshot(self) -> Dict[str, float]:
        return {}

    def close(self) -> None:
        pass


#: Shared disabled recorder; components default their ``telemetry``
#: attribute to this singleton.
NULL_RECORDER = NullRecorder()


class TelemetryRecorder:
    """Streaming windowed telemetry for one serving/simulation run.

    Args:
        window: events (served queries) per sliding window.
        buckets: sub-windows per window; rows are emitted once per
            sub-window boundary.
        out: JSONL destination — a path, an open text handle, or ``None``
            to keep rows in memory only (``rows`` retains every emitted
            row either way, which is what the figure drivers consume).
        n_shards: number of per-shard query counters to allocate.
        quantiles: staleness quantiles tracked by the P² bank.  Estimates
            are over the whole stream (P² sketches are not windowable);
            rows tag them ``stream_`` to keep that explicit.
        quantile_sample: sample stride for the quantile feed — every Nth
            staleness observation reaches the P² bank
            (:data:`DEFAULT_QUANTILE_SAMPLE`); ``1`` observes everything.
        label: stream tag stamped on every emitted row.
    """

    enabled = True

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        buckets: int = DEFAULT_BUCKETS,
        out: Union[None, str, IO[str]] = None,
        n_shards: int = 1,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        quantile_sample: int = DEFAULT_QUANTILE_SAMPLE,
        label: str = "serve",
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1, got %d" % n_shards)
        if quantile_sample < 1:
            raise ValueError(
                "quantile_sample must be >= 1, got %d" % quantile_sample
            )
        self.label = str(label)
        self.n_shards = int(n_shards)
        self.quantile_sample = int(quantile_sample)
        fields = list(BASE_FIELDS) + [
            "shard%d_queries" % shard for shard in range(self.n_shards)
        ]
        self.window = SlidingWindowCounters(fields, window, buckets)
        self.staleness_quantiles = QuantileBank(quantiles)
        self.spans = SpanTable()
        self.rows: List[Dict[str, float]] = []
        # Hot-path aliases: the record_* methods below are called per
        # served query, so the window clock and bucket test are inlined
        # here instead of going through SlidingWindowCounters.tick().
        self._cum = self.window.cumulative
        self._shard_base = len(BASE_FIELDS)
        self._bucket_size = self.window.bucket_size
        self._staleness_seen = 0
        self._out_path: Optional[str] = None
        self._out: Optional[IO[str]] = None
        self._owns_out = False
        if isinstance(out, str):
            self._out_path = out
        elif out is not None:
            self._out = out
        self._kernel_spans_installed = False
        self._closed = False

    # ------------------------------------------------------------ hot path

    def record_query(self, shard: int) -> None:
        """One served query routed to ``shard``; drives the window clock."""
        cum = self._cum
        cum[0] += 1.0
        cum[self._shard_base + shard] += 1.0
        window = self.window
        window.events = events = window.events + 1
        if not events % self._bucket_size:
            self._emit_window_row()
            window.rotate()

    def record_hit(self, staleness: int) -> None:
        """A cache hit served at ``staleness`` versions of lag."""
        cum = self._cum
        cum[1] += 1.0
        cum[4] += staleness
        self._staleness_seen = seen = self._staleness_seen + 1
        if not seen % self.quantile_sample:
            self.staleness_quantiles.observe(staleness)

    def record_miss(self) -> None:
        """A cache miss (no entry for the key)."""
        self._cum[2] += 1.0

    def record_occ_rejection(self, staleness: int) -> None:
        """A validate-on-read failure: entry too stale, recompute forced.

        Counts as a miss as well, mirroring
        :class:`~repro.serving.cache.CacheStats` exactly.
        """
        cum = self._cum
        cum[2] += 1.0
        cum[3] += 1.0
        self._staleness_seen = seen = self._staleness_seen + 1
        if not seen % self.quantile_sample:
            self.staleness_quantiles.observe(staleness)

    def record_feedback(self, quality: float) -> None:
        """One click fed back; ``quality`` is the clicked page's quality."""
        cum = self._cum
        cum[5] += 1.0
        cum[6] += quality

    def record_flush(self, size: int) -> None:
        """One feedback flush applying ``size`` buffered events."""
        cum = self._cum
        cum[7] += 1.0
        cum[8] += size

    def record_repair(self) -> None:
        """One incremental order repair on a serving engine."""
        self._cum[9] += 1.0

    def record_full_sort(self) -> None:
        """One full re-sort of a serving engine's maintained order."""
        self._cum[10] += 1.0

    def record_commit_conflict(self) -> None:
        """One OCC feedback commit rejected by the version check."""
        self._cum[11] += 1.0

    def record_commit_retry(self) -> None:
        """One backed-off retry of a conflicted feedback commit."""
        self._cum[12] += 1.0

    def record_dead_letter(self, events: int) -> None:
        """One batch of ``events`` feedback events dead-lettered."""
        self._cum[13] += events

    def record_degraded_serve(self, staleness: int) -> None:
        """One stale last-known-good page served while a shard was down."""
        self._cum[14] += 1.0
        self._staleness_seen = seen = self._staleness_seen + 1
        if not seen % self.quantile_sample:
            self.staleness_quantiles.observe(staleness)

    def record_load_shed(self) -> None:
        """One query shed: shard down and staleness budget exhausted."""
        self._cum[15] += 1.0

    def record_rank_routes(
        self,
        full: int,
        run_merge: int,
        windowed: int,
        copy: int,
        displacement_sum: int,
    ) -> None:
        """Per-row route counts one adaptive ``rank_day`` region took.

        Callers difference the shared kernel-layer
        :data:`~repro.core.kernels.api.ROUTE_STATS` counters
        around a region (a simulated day, a sweep resort window) and feed
        the deltas here; ``displacement_sum`` totals the windowed rows'
        estimated (numpy) or realized (numba) displacement bounds.
        """
        cum = self._cum
        cum[16] += full
        cum[17] += run_merge
        cum[18] += windowed
        cum[19] += copy
        cum[20] += displacement_sum

    def record_recovery(self, shard: int, seconds: float) -> None:
        """One crashed shard rebuilt from checkpoint + journal replay."""
        self.spans.observe("shard_recovery", seconds)
        self.emit_row(
            {"kind": "recovery", "shard": float(shard), "seconds": seconds}
        )

    # ------------------------------------------------- simulation / spans

    def record_day_step(self, day: int, seconds: float) -> None:
        """One batch-simulation day step; emits a per-day timing row."""
        self.spans.observe("day_step", seconds)
        self.emit_row({"kind": "day", "day": float(day), "seconds": seconds})

    def install_kernel_spans(self) -> None:
        """Time every kernel dispatch into this recorder's span table.

        Installs a proxy factory on the kernel registry; undone by
        :meth:`close` (or an explicit
        :func:`repro.core.kernels.set_kernel_instrumentation` call).
        """
        from repro.core.kernels import set_kernel_instrumentation

        proxies: Dict[int, TimedKernelBackend] = {}

        def wrap(backend):
            if isinstance(backend, TimedKernelBackend):
                return backend
            proxy = proxies.get(id(backend))
            if proxy is None:
                proxy = TimedKernelBackend(backend, self.spans)
                proxies[id(backend)] = proxy
            return proxy

        set_kernel_instrumentation(wrap)
        self._kernel_spans_installed = True

    # ------------------------------------------------------------- output

    def _emit_window_row(self) -> None:
        row = self.window.row()
        self._derive(row)
        row["kind"] = "window"
        self.emit_row(row)

    def flush_window(self) -> Optional[Dict[str, float]]:
        """Emit a final (possibly partial) window row at stream end.

        Emitted whenever any counter moved since the last boundary row —
        a partial bucket, or trailing non-query events (the final query's
        feedback, an end-of-stream flush) that landed after the last
        boundary tick.  Skipped when the last boundary row already covers
        everything, so windowed rows always add up to the end-of-run
        totals exactly.  Returns the emitted row, if any.
        """
        window = self.window
        if window.events == 0 or not window.pending():
            return None
        self._emit_window_row()
        window.rotate()
        return self.rows[-1]

    def _derive(self, row: Dict[str, float]) -> None:
        """Attach the derived trailing-window metrics to a counter row."""
        lookups = row["cache_hits"] + row["cache_misses"]
        row["cache_hit_rate"] = (
            row["cache_hits"] / lookups if lookups else 0.0
        )
        hit_rate_denominator = row["cache_hits"]
        mean_staleness = ratio(row["staleness_sum"], hit_rate_denominator)
        if mean_staleness is not None:
            row["staleness_mean"] = mean_staleness
        qpc = ratio(row["clicked_quality_sum"], row["feedback_events"])
        if qpc is not None:
            row["qpc"] = qpc
        if row["window_seconds"] > 0:
            row["qps"] = row["window_events"] / row["window_seconds"]
            for shard in range(self.n_shards):
                row["shard%d_qps" % shard] = (
                    row["shard%d_queries" % shard] / row["window_seconds"]
                )
        for name, value in self.staleness_quantiles.values(
            prefix="stream_staleness_p"
        ).items():
            if value == value:  # skip NaN before any observation
                row[name] = value

    def emit_row(self, row: Dict[str, float]) -> None:
        """Record one row (and append it to the JSONL stream, if any)."""
        row.setdefault("kind", "window")
        row.setdefault("stream", self.label)
        self.rows.append(row)
        handle = self._handle()
        if handle is not None:
            handle.write(json.dumps(row, sort_keys=True) + "\n")

    def _handle(self) -> Optional[IO[str]]:
        if self._out is None and self._out_path is not None:
            self._out = open(self._out_path, "w")
            self._owns_out = True
        return self._out

    # ------------------------------------------------------------ results

    def snapshot(self) -> Dict[str, float]:
        """End-of-run totals, quantiles and spans as one flat dictionary.

        Keys are ``telemetry_``-prefixed so they can be folded into a
        benchmark report (and its ``extra_info``) without collisions.
        """
        report: Dict[str, float] = {}
        for name, value in zip(self.window.fields, self.window.cumulative, strict=True):
            report["telemetry_%s" % name] = value
        report["telemetry_events"] = float(self.window.events)
        lookups = report["telemetry_cache_hits"] + report["telemetry_cache_misses"]
        report["telemetry_cache_hit_rate"] = (
            report["telemetry_cache_hits"] / lookups if lookups else 0.0
        )
        qpc = ratio(
            report["telemetry_clicked_quality_sum"],
            report["telemetry_feedback_events"],
        )
        if qpc is not None:
            report["telemetry_qpc"] = qpc
        staleness_mean = ratio(
            report["telemetry_staleness_sum"], report["telemetry_cache_hits"]
        )
        if staleness_mean is not None:
            report["telemetry_staleness_mean"] = staleness_mean
        for name, value in self.staleness_quantiles.values(
            prefix="staleness_p"
        ).items():
            if value == value:
                report["telemetry_%s" % name] = value
        for name, value in self.spans.as_dict().items():
            report["telemetry_%s" % name] = value
        report["telemetry_rows_emitted"] = float(len(self.rows))
        return report

    def close(self) -> None:
        """Emit the final partial window, close the JSONL file, unhook spans.

        Idempotent, and the exit arm of the context-manager protocol — a
        run that dies mid-stream (a load-shed escaping a chaos replay, a
        crashed bench) still flushes its pending window row and leaves a
        complete JSONL trace behind.  Caller-owned handles are flushed but
        not closed.
        """
        if self._closed:
            return
        self._closed = True
        self.flush_window()
        if self._kernel_spans_installed:
            from repro.core.kernels import set_kernel_instrumentation

            set_kernel_instrumentation(None)
            self._kernel_spans_installed = False
        if self._out is not None:
            if self._owns_out:
                self._out.close()
                self._out = None
            else:
                self._out.flush()

    def __enter__(self) -> "TelemetryRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


__all__ = [
    "BASE_FIELDS",
    "DEFAULT_WINDOW",
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
    "DEFAULT_QUANTILE_SAMPLE",
    "NullRecorder",
    "NULL_RECORDER",
    "TelemetryRecorder",
]
