"""Core telemetry instruments: counters, gauges and a streaming quantile.

The instruments here are deliberately boring — plain Python attribute
arithmetic — because they run on serving hot paths.  The one non-trivial
member is :class:`P2Quantile`, the Jain & Chlamtac P² estimator: a
streaming quantile that keeps five markers instead of the observations,
so a staleness or latency percentile over millions of events costs O(1)
memory and ~a dozen float operations per observation.

Accuracy contract (tested in ``tests/test_telemetry.py``):

* with five or fewer observations the estimate is **exact** — it is
  computed by ``numpy.percentile`` over the stored values, bit for bit;
* once the marker phase starts, the estimate is always bracketed by the
  observed minimum and maximum, and for continuous i.i.d. streams the
  estimate of quantile ``q`` lies between the empirical ``q - 0.15`` and
  ``q + 0.15`` quantiles (hypothesis-fuzzed against ``numpy.percentile``
  at n >= 100).  Heavily discrete or adversarial streams can exceed that
  band — the P² parabolic interpolation assumes a locally smooth
  distribution — which is the documented trade-off for O(1) memory.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np


class Counter:
    """A monotone event counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default one event)."""
        self.value += amount


class Gauge:
    """A last-value-wins instrument (queue depths, current window size)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = float(value)

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)


class P2Quantile:
    """Streaming quantile estimate via the P² algorithm (Jain & Chlamtac).

    Tracks one quantile ``q`` with five markers whose heights converge on
    the ``(0, q/2, q, (1+q)/2, 1)`` empirical quantiles.  See the module
    docstring for the accuracy contract.
    """

    __slots__ = ("q", "count", "_initial", "_heights", "_positions", "_desired",
                 "_increments")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError("q must lie strictly between 0 and 1, got %r" % q)
        self.q = float(q)
        self.count = 0
        self._initial: List[float] = []
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def observe(self, x: float) -> None:
        """Fold one observation into the estimate.

        The marker-update bookkeeping is hand-unrolled (no inner loops):
        this runs on serving hot paths where every bytecode shows up in
        the telemetry overhead ratio the benchmarks gate.
        """
        self.count += 1
        if self.count <= 5:
            self._initial.append(float(x))
            if self.count == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                q = self.q
                self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q,
                                 3.0 + 2.0 * q, 5.0]
            return
        heights = self._heights
        positions = self._positions
        # Locate the marker cell containing x, extending the extremes, and
        # shift every marker position above the cell by one.
        if x < heights[0]:
            heights[0] = x
            positions[1] += 1.0
            positions[2] += 1.0
            positions[3] += 1.0
            positions[4] += 1.0
        elif x < heights[1]:
            positions[1] += 1.0
            positions[2] += 1.0
            positions[3] += 1.0
            positions[4] += 1.0
        elif x < heights[2]:
            positions[2] += 1.0
            positions[3] += 1.0
            positions[4] += 1.0
        elif x < heights[3]:
            positions[3] += 1.0
            positions[4] += 1.0
        else:
            if x >= heights[4]:
                heights[4] = x
            positions[4] += 1.0
        # Desired positions drift deterministically; markers 0 and 4 are
        # pinned (increment 0 and 1 respectively) and never consulted by
        # the adjustment step, so only the interior three are maintained.
        desired = self._desired
        increments = self._increments
        desired[1] += increments[1]
        desired[2] += increments[2]
        desired[3] += increments[3]
        # Adjust the three interior markers toward their desired positions.
        for index in (1, 2, 3):
            delta = desired[index] - positions[index]
            if (delta >= 1.0 and positions[index + 1] - positions[index] > 1.0) or (
                delta <= -1.0 and positions[index - 1] - positions[index] < -1.0
            ):
                step = 1.0 if delta > 0 else -1.0
                candidate = self._parabolic(index, step)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, step)
                positions[index] += step

    def _parabolic(self, index: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        below = positions[index] - positions[index - 1]
        above = positions[index + 1] - positions[index]
        span = positions[index + 1] - positions[index - 1]
        return heights[index] + step / span * (
            (below + step) * (heights[index + 1] - heights[index]) / above
            + (above - step) * (heights[index] - heights[index - 1]) / below
        )

    def _linear(self, index: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        neighbor = index + int(step)
        return heights[index] + step * (heights[neighbor] - heights[index]) / (
            positions[neighbor] - positions[index]
        )

    @property
    def value(self) -> float:
        """Current quantile estimate (NaN before the first observation).

        In the storage phase (five or fewer observations) the estimate is
        ``numpy.percentile`` over the stored values — exact by definition;
        afterwards it is the middle marker's height.
        """
        if self.count == 0:
            return float("nan")
        if self.count <= 5:
            return float(np.percentile(self._initial, self.q * 100.0))
        return self._heights[2]


class QuantileBank:
    """A small family of P² estimators fed by one observation stream."""

    __slots__ = ("sketches", "_sketch_tuple")

    def __init__(self, quantiles=(0.5, 0.9)) -> None:
        self.sketches: Dict[float, P2Quantile] = {
            float(q): P2Quantile(q) for q in quantiles
        }
        self._sketch_tuple = tuple(self.sketches.values())

    def observe(self, x: float) -> None:
        """Fold one observation into every tracked quantile."""
        for sketch in self._sketch_tuple:
            sketch.observe(x)

    @property
    def count(self) -> int:
        """Observations folded in so far."""
        for sketch in self.sketches.values():
            return sketch.count
        return 0

    def values(self, prefix: str = "p") -> Dict[str, float]:
        """Flat ``{"p50": ..., "p90": ...}`` estimate dictionary."""
        report: Dict[str, float] = {}
        for q, sketch in sorted(self.sketches.items()):
            label = ("%g" % (q * 100.0)).replace(".", "_")
            report["%s%s" % (prefix, label)] = sketch.value
        return report


__all__ = ["Counter", "Gauge", "P2Quantile", "QuantileBank"]
