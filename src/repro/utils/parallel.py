"""Worker-count resolution for process-pool sharding.

``run_batch`` (replicate sharding) and ``run_sweep`` (variant sharding) both
split independent units of work across a ``ProcessPoolExecutor``.  The
resolution rule lives here so every entry point agrees on it:

* an explicit request is honoured (clamped to the task count);
* ``None`` auto-sizes from :func:`os.cpu_count` — capped by the
  ``REPRO_MAX_WORKERS`` environment variable when set, because container
  CPU quotas make ``os.cpu_count()`` lie (it reports the host's cores, not
  the cgroup's share, so an unquota-aware pool oversubscribes a throttled
  container) — but only engages extra workers when every worker would
  receive at least ``min_tasks_per_worker`` tasks — process start-up plus
  result pickling costs real time, and sharding four replicates four ways
  is slower than not sharding at all;
* the answer is never below one, so callers can compare ``workers <= 1``
  to pick the in-process path.

Results never depend on the worker count: each task keeps its own random
stream wherever it executes, so sharding is a pure throughput decision.
"""

from __future__ import annotations

import os
from typing import Optional

#: Auto-sharding engages only when each worker would get at least this many
#: independent tasks (replicates or sweep variants).
MIN_TASKS_PER_WORKER = 8

#: Environment variable capping the auto-sized worker count (CPU quotas).
MAX_WORKERS_ENV_VAR = "REPRO_MAX_WORKERS"


def _max_workers_override() -> Optional[int]:
    """Parse ``REPRO_MAX_WORKERS``; invalid or non-positive values are ignored."""
    raw = os.environ.get(MAX_WORKERS_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def default_workers(
    tasks: int,
    requested: Optional[int] = None,
    min_tasks_per_worker: int = MIN_TASKS_PER_WORKER,
) -> int:
    """Resolve the number of pool workers for ``tasks`` independent tasks.

    Args:
        tasks: number of independent work units to shard.
        requested: an explicit worker count, or ``None`` to auto-size from
            ``os.cpu_count()`` (capped by ``REPRO_MAX_WORKERS`` when set —
            an explicit request is a deliberate caller choice and is *not*
            capped).
        min_tasks_per_worker: auto-sizing floor — with fewer tasks per
            worker than this, the pool overhead outweighs the parallelism
            and the in-process path wins.

    Returns:
        A worker count in ``[1, tasks]`` (always 1 for empty task lists).
    """
    if min_tasks_per_worker < 1:
        raise ValueError(
            "min_tasks_per_worker must be >= 1, got %d" % min_tasks_per_worker
        )
    if tasks <= 1:
        return 1
    if requested is not None:
        return max(1, min(int(requested), tasks))
    cores = os.cpu_count() or 1
    override = _max_workers_override()
    if override is not None:
        cores = min(cores, override)
    return max(1, min(cores, tasks // min_tasks_per_worker))


__all__ = ["default_workers", "MIN_TASKS_PER_WORKER", "MAX_WORKERS_ENV_VAR"]
