"""Numeric helpers shared by the analytical model and the simulators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

_LOG_FLOOR = 1e-300


def safe_log(x, floor: float = _LOG_FLOOR) -> np.ndarray:
    """Natural log with values clipped away from zero.

    The fixed-point solver repeatedly fits curves to visit rates that can be
    extremely small for unpopular pages; clipping avoids ``-inf`` while
    preserving ordering.
    """
    arr = np.asarray(x, dtype=float)
    return np.log(np.clip(arr, floor, None))


def zipf_normalization(n: int, exponent: float) -> float:
    """Return ``sum_{i=1}^{n} i**(-exponent)`` (the generalized harmonic number).

    This is the normalization constant ``theta`` denominator of the paper's
    rank-to-visit law (Equation 4) when ``exponent = 1.5``.
    """
    if n <= 0:
        raise ValueError("n must be positive, got %d" % n)
    ranks = np.arange(1, n + 1, dtype=float)
    return float(np.sum(ranks ** (-exponent)))


def power_law_weights(n: int, exponent: float) -> np.ndarray:
    """Return normalized weights ``i**(-exponent) / sum_j j**(-exponent)``.

    ``weights[0]`` corresponds to rank 1.  The weights sum to one.
    """
    if n <= 0:
        raise ValueError("n must be positive, got %d" % n)
    ranks = np.arange(1, n + 1, dtype=float)
    raw = ranks ** (-exponent)
    return raw / raw.sum()


def normalized(values: Sequence[float]) -> np.ndarray:
    """Return ``values`` scaled to sum to one.

    A vector of zeros is returned unchanged (rather than raising), because
    transient simulation states can legitimately have no visits at all.
    """
    arr = np.asarray(values, dtype=float)
    total = arr.sum()
    if total <= 0:
        return np.zeros_like(arr)
    return arr / total


@dataclass(frozen=True)
class LogQuadraticCurve:
    """A quadratic curve in log-log space: ``log F = a*(log x)^2 + b*log x + c``.

    The paper reports that the popularity-to-visit-rate function ``F(x)`` is
    fit well by this family across all parameter settings tested, and the
    fixed-point solver uses it as the parametric form between iterations.
    The value at ``x = 0`` cannot be represented in log space, so it is
    carried explicitly in ``value_at_zero``.
    """

    a: float
    b: float
    c: float
    value_at_zero: float = 0.0

    def __call__(self, x) -> np.ndarray:
        arr = np.asarray(x, dtype=float)
        scalar = arr.ndim == 0
        arr = np.atleast_1d(arr).astype(float)
        out = np.empty_like(arr)
        zero_mask = arr <= 0
        out[zero_mask] = self.value_at_zero
        logs = np.log(arr[~zero_mask]) if np.any(~zero_mask) else np.empty(0)
        out[~zero_mask] = np.exp(self.a * logs**2 + self.b * logs + self.c)
        return float(out[0]) if scalar else out

    def coefficients(self) -> np.ndarray:
        """Return ``(a, b, c)`` as an array, used for convergence checks."""
        return np.array([self.a, self.b, self.c], dtype=float)


def fit_log_quadratic(
    x: Sequence[float],
    y: Sequence[float],
    value_at_zero: float = 0.0,
    anchor_weight: float = 10.0,
) -> LogQuadraticCurve:
    """Fit ``log y`` as a quadratic polynomial of ``log x``.

    Points with non-positive ``x`` or ``y`` are dropped (the ``x = 0`` point is
    carried separately via ``value_at_zero``).  Following the paper's note that
    the extreme points must be matched carefully, the smallest and largest
    retained ``x`` receive ``anchor_weight`` times the weight of interior
    points in the least-squares fit.
    """
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.shape != ys.shape:
        raise ValueError("x and y must have the same shape")
    keep = (xs > 0) & (ys > 0)
    xs, ys = xs[keep], ys[keep]
    if xs.size < 3:
        raise ValueError("need at least three positive points to fit a log-quadratic curve")
    lx, ly = np.log(xs), np.log(ys)
    weights = np.ones_like(lx)
    weights[np.argmin(lx)] = anchor_weight
    weights[np.argmax(lx)] = anchor_weight
    coeffs = np.polyfit(lx, ly, deg=2, w=weights)
    return LogQuadraticCurve(a=float(coeffs[0]), b=float(coeffs[1]), c=float(coeffs[2]),
                             value_at_zero=value_at_zero)


__all__ = [
    "safe_log",
    "zipf_normalization",
    "power_law_weights",
    "normalized",
    "LogQuadraticCurve",
    "fit_log_quadratic",
]
