"""Parameter validation helpers used by configuration dataclasses."""

from __future__ import annotations


def check_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError("%s must be positive, got %r" % (name, value))
    return float(value)


def check_positive_int(name: str, value: int) -> int:
    """Raise ``ValueError`` unless ``value`` is a positive integer."""
    if int(value) != value or value <= 0:
        raise ValueError("%s must be a positive integer, got %r" % (name, value))
    return int(value)


def check_probability(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError("%s must be in [0, 1], got %r" % (name, value))
    return float(value)


def check_fraction(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``0 < value <= 1``."""
    if not 0.0 < value <= 1.0:
        raise ValueError("%s must be in (0, 1], got %r" % (name, value))
    return float(value)


__all__ = [
    "check_positive",
    "check_positive_int",
    "check_probability",
    "check_fraction",
]
