"""Shared utilities: seeded RNG handling, numeric helpers, table formatting.

These helpers are deliberately free of any domain knowledge so that every
other subpackage can depend on them without creating import cycles.
"""

from repro.utils.rng import RandomSource, as_rng, spawn_rngs
from repro.utils.mathutils import (
    LogQuadraticCurve,
    fit_log_quadratic,
    normalized,
    power_law_weights,
    safe_log,
    zipf_normalization,
)
from repro.utils.tables import Table, format_series
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "RandomSource",
    "as_rng",
    "spawn_rngs",
    "LogQuadraticCurve",
    "fit_log_quadratic",
    "normalized",
    "power_law_weights",
    "safe_log",
    "zipf_normalization",
    "Table",
    "format_series",
    "check_fraction",
    "check_positive",
    "check_positive_int",
    "check_probability",
]
