"""Lightweight ASCII table and series formatting for experiment output.

The benchmark harness and the CLI print the same rows/series the paper's
figures report; these helpers keep that output readable without pulling in a
plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


class Table:
    """A simple column-aligned ASCII table builder."""

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values) -> None:
        """Append a row; values are stringified with sensible float formatting."""
        if len(values) != len(self.columns):
            raise ValueError(
                "expected %d values, got %d" % (len(self.columns), len(values))
            )
        self.rows.append([_format_cell(v) for v in values])

    def render(self) -> str:
        """Render the table as a string with a header rule."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        lines.extend(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            for row in self.rows
        )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.render()


def format_series(name: str, xs: Iterable, ys: Iterable) -> str:
    """Format a named (x, y) series as one line per point."""
    lines = [name]
    lines.extend(
        "  %s -> %s" % (_format_cell(x), _format_cell(y))
        for x, y in zip(xs, ys, strict=True)
    )
    return "\n".join(lines)


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return "%.3e" % value
        return "%.4f" % value
    return str(value)


__all__ = ["Table", "format_series"]
