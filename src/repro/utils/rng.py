"""Random number generation helpers.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh entropy).  Funnelling the
conversion through :func:`as_rng` keeps experiments reproducible: the
experiment drivers pass a single seed and spawn independent child generators
for each repetition with :func:`spawn_rngs`.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

RandomSource = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(source: RandomSource = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``source``.

    ``None`` produces a generator seeded from OS entropy, an ``int`` or a
    :class:`~numpy.random.SeedSequence` produces a deterministic generator,
    and an existing generator is returned unchanged.
    """
    if isinstance(source, np.random.Generator):
        return source
    if isinstance(source, np.random.SeedSequence):
        return np.random.default_rng(source)
    return np.random.default_rng(source)


def spawn_rngs(source: RandomSource, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` statistically independent generators from ``source``.

    The children are derived through :class:`numpy.random.SeedSequence`
    spawning, so repeated calls with the same integer seed give the same
    family of streams regardless of how many draws each child performs.
    """
    if count < 0:
        raise ValueError("count must be non-negative, got %d" % count)
    if isinstance(source, np.random.SeedSequence):
        seq = source
    elif isinstance(source, np.random.Generator):
        # Derive children from the generator itself; reproducible as long as
        # the generator state is reproducible at the call site.
        return [np.random.default_rng(source.integers(0, 2**63 - 1)) for _ in range(count)]
    else:
        seq = np.random.SeedSequence(source)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_seed(source: RandomSource, label: str) -> int:
    """Derive a deterministic integer seed from ``source`` and a text label.

    Used when a sub-experiment needs a stable seed that does not collide with
    sibling sub-experiments sharing the same root seed.
    """
    base = 0 if source is None else (source if isinstance(source, int) else 0)
    digest = np.uint64(base & 0xFFFFFFFFFFFFFFFF)
    for ch in label:
        digest = np.uint64((int(digest) * 1099511628211 + ord(ch)) & 0xFFFFFFFFFFFFFFFF)
    return int(digest & 0x7FFFFFFF)


__all__ = ["RandomSource", "as_rng", "spawn_rngs", "derive_seed"]
