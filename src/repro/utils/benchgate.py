"""Benchmark regression gate: compare benchmark JSON against committed floors.

CI runs the smoke benchmarks with ``pytest-benchmark --benchmark-json`` and
then gates the build on the metrics each benchmark exports through
``extra_info``.  The gated metrics are deliberately *relative* (speedup of
the batch engine over the looped simulator, of the serving path over a full
re-rank, of the lockstep sweep over independent replays): absolute
throughput on shared CI runners swings by integer factors with the host,
but a ratio measured inside one process is machine-independent — and a
``>tolerance`` drop in the optimized path's throughput (with its in-run
baseline unchanged) lowers the ratio by exactly the same fraction, so the
gate catches real regressions without flaking on slow runners.

The baseline file (``benchmarks/baselines/*.json``) maps benchmark names to
``{metric: reference}``; a measured value below ``reference * (1 -
tolerance)`` fails the gate, as does a gated benchmark or metric that is
missing from the measurement (so silently dropping a bench cannot pass).
``benchmarks/check_regression.py`` is the CLI wrapper; its ``--self-test``
mode re-runs the comparison with every measured value halved — an
artificial 2x slowdown — and requires that the gate rejects it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

DEFAULT_TOLERANCE = 0.25


@dataclass(frozen=True)
class GateFinding:
    """One gated (benchmark, metric) comparison."""

    benchmark: str
    metric: str
    reference: float
    floor: float
    measured: float  # NaN when the benchmark/metric is missing
    ok: bool

    def describe(self) -> str:
        """One report line."""
        status = "ok  " if self.ok else "FAIL"
        if self.measured != self.measured:  # NaN: missing measurement
            return "%s %s :: %s — MISSING (floor %.4g)" % (
                status, self.benchmark, self.metric, self.floor,
            )
        return "%s %s :: %s = %.4g (floor %.4g, reference %.4g)" % (
            status, self.benchmark, self.metric,
            self.measured, self.floor, self.reference,
        )


def load_baselines(path) -> Tuple[Dict[str, Dict[str, float]], float]:
    """Load a baseline file; returns (benchmarks mapping, tolerance)."""
    with open(path) as handle:
        data = json.load(handle)
    tolerance = float(data.get("tolerance", DEFAULT_TOLERANCE))
    if not 0.0 < tolerance < 1.0:
        raise ValueError("tolerance must lie in (0, 1), got %r" % tolerance)
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, dict) or not benchmarks:
        raise ValueError("baseline file %s has no 'benchmarks' mapping" % path)
    return (
        {
            str(name): {str(metric): float(value) for metric, value in refs.items()}
            for name, refs in benchmarks.items()
        },
        tolerance,
    )


def collect_measurements(json_paths: Iterable) -> Dict[str, Dict[str, float]]:
    """Merge the ``extra_info`` metrics of several pytest-benchmark JSONs.

    Returns ``{benchmark name: {metric: value}}``.  Non-numeric extra-info
    entries (scale tags etc.) are skipped.
    """
    measurements: Dict[str, Dict[str, float]] = {}
    for path in json_paths:
        with open(path) as handle:
            data = json.load(handle)
        for entry in data.get("benchmarks", []):
            metrics = measurements.setdefault(str(entry.get("name")), {})
            for metric, value in (entry.get("extra_info") or {}).items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                metrics[str(metric)] = float(value)
    return measurements


def check_measurements(
    measurements: Dict[str, Dict[str, float]],
    baselines: Dict[str, Dict[str, float]],
    tolerance: float = DEFAULT_TOLERANCE,
    scale: float = 1.0,
) -> List[GateFinding]:
    """Compare measurements against baseline floors.

    ``scale`` multiplies every measured value before the comparison; the
    self-test passes ``0.5`` to simulate a uniform 2x throughput loss and
    assert the gate would catch it.
    """
    findings: List[GateFinding] = []
    nan = float("nan")
    for benchmark, references in sorted(baselines.items()):
        present = measurements.get(benchmark)
        for metric, reference in sorted(references.items()):
            floor = reference * (1.0 - tolerance)
            if present is None or metric not in present:
                findings.append(
                    GateFinding(benchmark, metric, reference, floor, nan, False)
                )
                continue
            measured = present[metric] * scale
            findings.append(
                GateFinding(
                    benchmark, metric, reference, floor, measured,
                    measured >= floor,
                )
            )
    return findings


def run_gate(
    json_paths: Iterable,
    baseline_path,
    scale: float = 1.0,
) -> Tuple[List[GateFinding], float]:
    """Load everything and compare; returns (findings, tolerance)."""
    baselines, tolerance = load_baselines(baseline_path)
    measurements = collect_measurements([Path(p) for p in json_paths])
    return check_measurements(measurements, baselines, tolerance, scale), tolerance


__all__ = [
    "GateFinding",
    "load_baselines",
    "collect_measurements",
    "check_measurements",
    "run_gate",
    "DEFAULT_TOLERANCE",
]
