"""Quality-per-click (QPC).

QPC is the paper's primary objective: the average intrinsic quality of the
pages users visit, amortized over time,

``QPC = lim_{t->inf} sum_t sum_p V_u(p, t) Q(p) / sum_t sum_p V_u(p, t)``.

Except where noted, the paper reports QPC *normalized* so that 1.0 is the
QPC of the quality-ordered oracle ranking under the same attention law.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Optional

import numpy as np

from repro.visits.attention import AttentionModel, PowerLawAttention


def qpc_from_visits(visits: np.ndarray, quality: np.ndarray) -> float:
    """QPC of a single visit allocation: quality-weighted mean over visits.

    The visits are normalized to weights before the dot product: dividing
    the weighted sum afterwards can leave the subnormal range mid-compute
    (e.g. a single denormal visit count) and round the mean outside the
    quality range.
    """
    visits = np.asarray(visits, dtype=float)
    quality = np.asarray(quality, dtype=float)
    if visits.shape != quality.shape:
        raise ValueError("visits and quality must have the same shape")
    total = visits.sum()
    if total <= 0:
        return 0.0
    return float(np.dot(visits / total, quality))


def ideal_qpc(quality: np.ndarray, attention: Optional[AttentionModel] = None) -> float:
    """QPC achieved by ranking pages in descending order of quality.

    This is the normalization constant for the paper's "normalized QPC": the
    best any ranking can do when visits follow the attention law and page
    awareness plays no role.
    """
    quality = np.sort(np.asarray(quality, dtype=float))[::-1]
    attention = attention or PowerLawAttention()
    shares = attention.visit_shares(quality.size)
    return float(np.dot(shares, quality))


def normalized_qpc(
    absolute_qpc: float, quality: np.ndarray, attention: Optional[AttentionModel] = None
) -> float:
    """Normalize an absolute QPC value by the quality-ordered ideal."""
    ideal = ideal_qpc(quality, attention)
    if ideal <= 0:
        return 0.0
    return absolute_qpc / ideal


@dataclass
class QPCAccumulator:
    """Accumulates quality-weighted visits across simulation steps.

    The simulator feeds one visit allocation per measured day; the
    accumulator maintains the running numerator and denominator of the QPC
    ratio so memory stays constant regardless of horizon.
    """

    weighted_quality: float = 0.0
    total_visits: float = 0.0
    steps: int = field(default=0)

    def update(self, visits: np.ndarray, quality: np.ndarray) -> None:
        """Add one step's visit allocation."""
        visits = np.asarray(visits, dtype=float)
        quality = np.asarray(quality, dtype=float)
        self.weighted_quality += float(np.dot(visits, quality))
        self.total_visits += float(visits.sum())
        self.steps += 1

    @property
    def value(self) -> float:
        """The amortized QPC over everything accumulated so far."""
        if self.total_visits <= 0:
            return 0.0
        return self.weighted_quality / self.total_visits

    def merge(self, other: "QPCAccumulator") -> "QPCAccumulator":
        """Return a new accumulator combining two disjoint measurement windows."""
        return QPCAccumulator(
            weighted_quality=self.weighted_quality + other.weighted_quality,
            total_visits=self.total_visits + other.total_visits,
            steps=self.steps + other.steps,
        )


__all__ = ["qpc_from_visits", "ideal_qpc", "normalized_qpc", "QPCAccumulator"]
