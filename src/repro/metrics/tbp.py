"""Time to become popular (TBP).

TBP is the time it takes a (high-quality) page to attain popularity exceeding
99% of its quality level, i.e. the time for its awareness among monitored
users to reach 99% (since ``P = A * Q``).  The paper reports TBP both from
the analytical awareness trajectory and from simulation; this module works on
any sampled popularity trajectory.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

DEFAULT_THRESHOLD = 0.99


def time_to_become_popular(
    times: Sequence[float],
    popularity: Sequence[float],
    quality: float,
    threshold: float = DEFAULT_THRESHOLD,
) -> Optional[float]:
    """Return the first time at which popularity exceeds ``threshold * quality``.

    Linear interpolation is applied between the two samples straddling the
    crossing.  Returns ``None`` if the trajectory never crosses the
    threshold (the page never became popular within the observed horizon).
    """
    times = np.asarray(times, dtype=float)
    popularity = np.asarray(popularity, dtype=float)
    if times.shape != popularity.shape:
        raise ValueError("times and popularity must have the same shape")
    if times.size == 0:
        return None
    if quality <= 0:
        raise ValueError("quality must be positive to define TBP")
    target = threshold * quality
    above = popularity >= target
    if not above.any():
        return None
    first = int(np.argmax(above))
    if first == 0:
        return float(times[0])
    t0, t1 = times[first - 1], times[first]
    p0, p1 = popularity[first - 1], popularity[first]
    if p1 == p0:
        return float(t1)
    fraction = (target - p0) / (p1 - p0)
    return float(t0 + fraction * (t1 - t0))


def tbp_from_trajectory(
    trajectory: np.ndarray,
    quality: float,
    dt: float = 1.0,
    threshold: float = DEFAULT_THRESHOLD,
) -> Optional[float]:
    """TBP from a popularity trajectory sampled every ``dt`` days starting at t=0."""
    trajectory = np.asarray(trajectory, dtype=float)
    times = np.arange(trajectory.size, dtype=float) * dt
    return time_to_become_popular(times, trajectory, quality, threshold)


__all__ = ["time_to_become_popular", "tbp_from_trajectory", "DEFAULT_THRESHOLD"]
