"""Evaluation metrics: quality-per-click (QPC), time-to-become-popular (TBP),
and awareness summary statistics."""

from repro.metrics.qpc import (
    QPCAccumulator,
    ideal_qpc,
    normalized_qpc,
    qpc_from_visits,
)
from repro.metrics.tbp import time_to_become_popular, tbp_from_trajectory
from repro.metrics.awareness_stats import awareness_histogram, awareness_summary

__all__ = [
    "QPCAccumulator",
    "qpc_from_visits",
    "ideal_qpc",
    "normalized_qpc",
    "time_to_become_popular",
    "tbp_from_trajectory",
    "awareness_histogram",
    "awareness_summary",
]
