"""Awareness distribution summaries (Figure 3 of the paper)."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np


def awareness_histogram(
    awareness: np.ndarray, bins: int = 10, weights: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of awareness values over ``[0, 1]``.

    Returns ``(bin_edges, probabilities)`` where probabilities sum to one.
    ``weights`` may carry page multiplicities (e.g. quality-group sizes).
    """
    awareness = np.asarray(awareness, dtype=float)
    if awareness.size == 0:
        raise ValueError("awareness must be non-empty")
    if np.any((awareness < 0) | (awareness > 1 + 1e-12)):
        raise ValueError("awareness values must lie in [0, 1]")
    counts, edges = np.histogram(
        np.clip(awareness, 0.0, 1.0), bins=bins, range=(0.0, 1.0), weights=weights
    )
    total = counts.sum()
    probabilities = counts / total if total > 0 else np.zeros_like(counts, dtype=float)
    return edges, probabilities


def awareness_summary(awareness: np.ndarray) -> Dict[str, float]:
    """Mean / median / tail-shares of an awareness vector.

    ``share_near_zero`` and ``share_near_full`` correspond to the two modes
    visible in the paper's Figure 3: under non-randomized ranking high-quality
    pages sit near zero awareness, under selective promotion near full.
    """
    awareness = np.asarray(awareness, dtype=float)
    if awareness.size == 0:
        raise ValueError("awareness must be non-empty")
    return {
        "mean": float(np.mean(awareness)),
        "median": float(np.median(awareness)),
        "share_near_zero": float(np.mean(awareness <= 0.1)),
        "share_near_full": float(np.mean(awareness >= 0.9)),
    }


__all__ = ["awareness_histogram", "awareness_summary"]
