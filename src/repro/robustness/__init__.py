"""Fault injection, OCC write path, and crash-consistent recovery.

The serving tier's robustness layer:

* :mod:`repro.robustness.faults` — deterministic scripted fault plans and
  the injector the router/engines consult behind a one-branch guard;
* :mod:`repro.robustness.occ` — retry policy with jittered bounded
  backoff, structured flush reports, and the dead-letter queue for the
  OCC feedback write path;
* :mod:`repro.robustness.journal` — shard checkpoints, the append-only
  feedback journal, and bit-identical replay;
* :mod:`repro.robustness.supervisor` — per-shard degradation (escalating
  staleness budgets, load shedding) and crash/recover orchestration;
* :mod:`repro.robustness.chaos` — the ``chaos-bench`` driver replaying a
  recorded trace under a fault plan against a fault-free reference.

Only the leaf modules (``faults``, ``occ`` — no serving dependencies) are
imported eagerly: the serving engine/router import those from their own
module bodies, so anything here that reached back into
:mod:`repro.serving` at import time would be a cycle.  The rest of the
public API resolves lazily on first attribute access (PEP 562).
"""

from repro.robustness.faults import (
    FAULT_KINDS,
    NULL_INJECTOR,
    POISON_VERSION,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    LoadShedError,
    NullInjector,
)
from repro.robustness.occ import (
    DeadLetter,
    DeadLetterQueue,
    FlushReport,
    RetryPolicy,
)

#: Lazily-resolved exports and the submodules providing them.
_LAZY = {
    "FeedbackJournal": "repro.robustness.journal",
    "JournalEntry": "repro.robustness.journal",
    "ShardCheckpoint": "repro.robustness.journal",
    "state_digest": "repro.robustness.journal",
    "DegradationPolicy": "repro.robustness.supervisor",
    "ShardSupervisor": "repro.robustness.supervisor",
    "pinned_fault_plan": "repro.robustness.chaos",
    "replay_chaos_trace": "repro.robustness.chaos",
    "run_chaos_benchmark": "repro.robustness.chaos",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name)
        )
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "FAULT_KINDS",
    "NULL_INJECTOR",
    "POISON_VERSION",
    "DeadLetter",
    "DeadLetterQueue",
    "DegradationPolicy",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FeedbackJournal",
    "FlushReport",
    "JournalEntry",
    "LoadShedError",
    "NullInjector",
    "RetryPolicy",
    "ShardCheckpoint",
    "ShardSupervisor",
    "pinned_fault_plan",
    "replay_chaos_trace",
    "run_chaos_benchmark",
    "state_digest",
]
