"""Chaos benchmark: replay a recorded trace under a scripted fault plan.

``python -m repro chaos-bench`` (and ``benchmarks/test_bench_chaos.py``)
drive :func:`run_chaos_benchmark`: one recorded query trace is replayed
twice against identically-seeded routers — once fault-free to establish
the reference popularity digests, once under the fault plan with the
robustness layer armed — and the run reports what the faults cost and
what recovery restored:

* ``recovery_bit_identical`` — every crashed shard's checkpoint + journal
  replay reproduced the exact pre-crash state digest;
* ``clean_parity`` — the first crash's recovered state also matches the
  fault-free run's digest at the same commit point (the stronger,
  external parity check);
* ``degraded_serve_recovery_ratio`` — of the queries that hit a downed
  shard, the fraction answered with a within-budget stale page instead of
  being shed (the CI-gated availability floor);
* dead-letter, conflict/retry, downtime and recovery-time counters.

Determinism: the trace pins the stream randomness, the fault plan pins
the fault schedule in query indices, and the backoff jitter draws from a
seeded generator — two runs with equal arguments produce equal reports
(timings aside).
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from repro.community.config import DEFAULT_COMMUNITY
from repro.core.kernels import get_backend, use_backend
from repro.core.policy import RECOMMENDED_POLICY, RankPromotionPolicy
from repro.robustness.faults import FaultEvent, FaultPlan, LoadShedError
from repro.robustness.journal import state_digest
from repro.robustness.occ import FlushReport, RetryPolicy
from repro.serving.bench import seed_steady_state_awareness
from repro.serving.router import ShardedRouter
from repro.serving.workload import RecordedTrace, StreamingWorkload, WorkloadConfig, record_trace
from repro.utils.rng import derive_seed
from repro.visits.attention import AttentionModel, PowerLawAttention


def pinned_fault_plan(
    n_queries: int, n_shards: int, flush_every: int = 64
) -> FaultPlan:
    """The repository's reference chaos schedule for an ``n_queries`` run.

    One mid-run crash (the first fault, so the recovered state can be
    checked against the fault-free reference), then an OCC conflict burst,
    a short stall, and a late cache poisoning.  Requires two shards so the
    crash hits a shard other than the conflict target.
    """
    if n_queries < 8 * flush_every:
        raise ValueError(
            "pinned plan needs n_queries >= %d (8 flush windows), got %d"
            % (8 * flush_every, n_queries)
        )
    if n_shards < 2:
        raise ValueError("pinned plan needs >= 2 shards, got %d" % n_shards)
    crash_at = (3 * n_queries // 8 // flush_every) * flush_every + flush_every // 2
    return FaultPlan(
        events=(
            FaultEvent(
                kind="crash", at_query=crash_at, shard=1, duration=2 * flush_every
            ),
            FaultEvent(kind="conflict", at_query=5 * n_queries // 8, shard=0, count=2),
            FaultEvent(
                kind="stall",
                at_query=6 * n_queries // 8,
                shard=0,
                duration=flush_every // 2,
            ),
            FaultEvent(kind="poison", at_query=7 * n_queries // 8, shard=0),
        )
    )


def replay_chaos_trace(
    router: ShardedRouter,
    trace: RecordedTrace,
    k: int,
    limit: Optional[int] = None,
    attention: Optional[AttentionModel] = None,
    final_flush: bool = True,
) -> Dict[str, float]:
    """Replay (a prefix of) a recorded trace, surviving load sheds.

    The replay half of :func:`~repro.simulation.replay.replay_trace`, with
    two chaos-specific differences: a
    :class:`~repro.robustness.faults.LoadShedError` from a downed shard is
    counted and the stream continues (a shed query still advances the
    flush/day cadence — its trace slot is consumed), and ``final_flush``
    can be disabled so a reference prefix stops at the last boundary
    commit, the state a crash recovery restores to.
    """
    attention = attention or PowerLawAttention()
    click_cdf = np.cumsum(attention.visit_shares(k))
    total = trace.n_queries if limit is None else min(int(limit), trace.n_queries)
    query_ids = np.asarray(trace.query_ids)
    coin_u = np.asarray(trace.coin_u)
    position_u = np.asarray(trace.position_u)
    report = FlushReport()
    sheds = 0
    started = time.perf_counter()
    for i in range(total):
        query_id = int(query_ids[i])
        try:
            page = router.serve(query_id, k)
        except LoadShedError:
            sheds += 1
            page = None
        if page is not None and coin_u[i] < trace.feedback_rate:
            position = int(np.searchsorted(click_cdf, position_u[i], side="right"))
            position = min(position, page.size - 1)
            router.submit_feedback(query_id, int(page[position]))
        served = i + 1
        if served % trace.flush_every == 0:
            report.merge(router.flush_feedback())
        if trace.day_every is not None and served % trace.day_every == 0:
            router.advance_day()
    if final_flush:
        report.merge(router.flush_feedback())
        if router.faults.enabled:
            # One more flush drains a batch the reorder fault deferred at
            # the final boundary (otherwise it would be silently lost).
            report.merge(router.flush_feedback())
    elapsed = time.perf_counter() - started
    metrics = report.as_dict()
    metrics["replayed_queries"] = float(total)
    metrics["shed_queries"] = float(sheds)
    metrics["elapsed_seconds"] = elapsed
    metrics["qps"] = total / elapsed if elapsed > 0 else 0.0
    return metrics


def run_chaos_benchmark(
    n_pages: int = 20_000,
    n_queries: int = 2_000,
    k: int = 20,
    n_shards: int = 4,
    cache_capacity: Optional[int] = 64,
    staleness_budget: int = 4,
    feedback_rate: float = 0.2,
    zipf_exponent: float = 1.1,
    flush_every: int = 64,
    day_every: Optional[int] = -1,
    mode: str = "fluid",
    policy: RankPromotionPolicy = RECOMMENDED_POLICY,
    plan: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
    degradation=None,
    seed: int = 0,
    backend: Optional[str] = None,
    telemetry_window: Optional[int] = None,
    telemetry_out: Optional[str] = None,
) -> Dict[str, float]:
    """One chaos run: trace under faults vs the fault-free reference.

    ``plan=None`` uses :func:`pinned_fault_plan`; ``day_every=-1`` picks
    one lifecycle day per quarter of the stream (``None`` disables days).
    Retry backoff is *scheduled but not slept* — the report's
    ``flush_backoff_seconds`` is the waiting a real deployment would have
    done, without the bench paying it in wall-clock.

    Returns a flat metrics dictionary (see the module docstring for the
    headline keys); ``telemetry_window``/``telemetry_out`` additionally
    fold a windowed telemetry snapshot in under ``telemetry_*`` keys.
    """
    if backend is not None:
        with use_backend(backend):
            return run_chaos_benchmark(
                n_pages=n_pages, n_queries=n_queries, k=k, n_shards=n_shards,
                cache_capacity=cache_capacity, staleness_budget=staleness_budget,
                feedback_rate=feedback_rate, zipf_exponent=zipf_exponent,
                flush_every=flush_every, day_every=day_every, mode=mode,
                policy=policy, plan=plan, retry=retry, degradation=degradation,
                seed=seed, telemetry_window=telemetry_window,
                telemetry_out=telemetry_out,
            )
    kernels = get_backend()
    kernels.warmup()
    if day_every == -1:
        day_every = max(flush_every, n_queries // 4)
    if plan is None:
        plan = pinned_fault_plan(n_queries, n_shards, flush_every)
    community = DEFAULT_COMMUNITY.scaled(n_pages)

    def build_router() -> ShardedRouter:
        router = ShardedRouter.from_community(
            community,
            policy,
            n_shards=n_shards,
            mode=mode,
            cache_capacity=cache_capacity,
            staleness_budget=staleness_budget,
            seed=seed,
        )
        seed_steady_state_awareness(router, rng=derive_seed(seed, "serving-warm"))
        return router

    workload = StreamingWorkload(
        WorkloadConfig(
            n_distinct_queries=max(64, n_queries // 4),
            zipf_exponent=zipf_exponent,
            k=k,
            feedback_rate=feedback_rate,
            flush_every=flush_every,
        ),
        seed=derive_seed(seed, "serving-stream"),
    )
    trace = record_trace(workload, n_queries, day_every=day_every)

    # Fault-free reference digests at the first crash's recovery point: the
    # last commit boundary strictly before the crash query.  Up to that
    # point the faulted run is byte-for-byte the clean run (the pinned plan
    # schedules the crash as its first fault), so the recovered state must
    # match these digests exactly.
    crashes = sorted(
        (event for event in plan.events if event.kind == "crash"),
        key=lambda event: event.at_query,
    )
    clean_digests: Dict[int, int] = {}
    if crashes:
        first_crash = crashes[0]
        before = first_crash.at_query - 1
        prefix = (before // flush_every) * flush_every
        if day_every is not None:
            # A lifecycle day is a journaled mutation too; recovery restores
            # through the last day boundary as well as the last flush.
            prefix = max(prefix, (before // day_every) * day_every)
        reference = build_router()
        replay_chaos_trace(reference, trace, k, limit=prefix, final_flush=False)
        clean_digests[first_crash.shard] = state_digest(
            reference.engines[first_crash.shard].state,
            reference.engines[first_crash.shard].day,
        )

    router = build_router()
    recorder = None
    if telemetry_window is not None or telemetry_out is not None:
        from repro.telemetry import DEFAULT_WINDOW, NULL_RECORDER, TelemetryRecorder

        recorder = TelemetryRecorder(
            window=telemetry_window or DEFAULT_WINDOW,
            out=telemetry_out,
            n_shards=n_shards,
            label="chaos",
        )
        router.attach_telemetry(recorder)
    router.enable_robustness(
        plan,
        retry=retry,
        degradation=degradation,
        seed=derive_seed(seed, "chaos-backoff"),
        sleep=lambda _seconds: None,
    )
    try:
        with_recorder = recorder if recorder is not None else _NullContext()
        with with_recorder:
            replay = replay_chaos_trace(router, trace, k)
    finally:
        if recorder is not None:
            from repro.telemetry import NULL_RECORDER

            router.attach_telemetry(NULL_RECORDER)

    report: Dict[str, float] = {
        "kernel_backend": kernels.name,
        "mode": mode,
        "n_pages": float(n_pages),
        "n_queries": float(n_queries),
        "n_shards": float(n_shards),
        "k": float(k),
        "fault_events": float(len(plan)),
    }
    report.update(replay)
    stats = router.stats()
    for key in (
        "occ_conflicts",
        "occ_retries",
        "occ_backoff_seconds",
        "dead_letter_batches",
        "dead_letter_events",
        "degraded_serves",
        "load_sheds",
        "recoveries",
        "recovery_seconds",
        "replayed_entries",
        "recovered_bit_identical",
    ):
        report[key] = stats[key]
    for key, value in stats.items():
        if key.startswith("fault_"):
            report[key] = value
    report["recovery_bit_identical"] = stats["recovered_bit_identical"]
    degraded = report["degraded_serves"]
    shed = report["load_sheds"]
    report["degraded_serve_fraction"] = degraded / n_queries if n_queries else 0.0
    report["degraded_serve_recovery_ratio"] = (
        degraded / (degraded + shed) if (degraded + shed) > 0 else 1.0
    )
    parity = 1.0
    for shard, expected in clean_digests.items():
        recovered = router.supervisors[shard].last_recovery_digest
        if recovered is None or recovered != expected:
            parity = 0.0
    report["clean_parity"] = parity
    if recorder is not None:
        report.update(recorder.snapshot())
    return report


class _NullContext:
    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


__all__ = ["pinned_fault_plan", "replay_chaos_trace", "run_chaos_benchmark"]
