"""Per-shard supervision: degradation policy, crash teardown, recovery.

One :class:`ShardSupervisor` watches one serving engine.  During normal
operation it maintains the shard's crash-consistency artifacts (a
:class:`~repro.robustness.journal.ShardCheckpoint` plus the
:class:`~repro.robustness.journal.FeedbackJournal` of mutations since) and
a last-known-good copy of every page length it has served.  When the fault
injector takes the shard down the supervisor serves those stale pages
within an *escalating* staleness budget — each consecutive degraded serve
loosens the budget a step, up to a cap, after which queries are load-shed
— and when a crashed shard's downtime elapses it rebuilds the popularity
state from checkpoint + journal replay and verifies the restored state is
bit-identical to the pre-crash digest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.robustness.faults import LoadShedError
from repro.robustness.journal import FeedbackJournal, ShardCheckpoint, state_digest


@dataclass(frozen=True)
class DegradationPolicy:
    """Escalating staleness budget for serving a downed shard.

    The ``i``-th consecutive degraded serve is allowed staleness up to
    ``min(max_staleness_budget, base + step * (i - 1))``: early in an
    outage only nearly-fresh pages are served, a long outage gradually
    accepts staler ones, and beyond the cap the query is shed.  Staleness
    is measured in popularity mutations the stale page has missed —
    version lag at the fault plus feedback events buffered since.
    """

    base_staleness_budget: int = 16
    escalation_step: int = 8
    max_staleness_budget: int = 512

    def __post_init__(self) -> None:
        if self.base_staleness_budget < 0:
            raise ValueError(
                "base_staleness_budget must be non-negative, got %d"
                % self.base_staleness_budget
            )
        if self.escalation_step < 0:
            raise ValueError(
                "escalation_step must be non-negative, got %d" % self.escalation_step
            )
        if self.max_staleness_budget < self.base_staleness_budget:
            raise ValueError(
                "max_staleness_budget (%d) must be >= base_staleness_budget (%d)"
                % (self.max_staleness_budget, self.base_staleness_budget)
            )

    def budget(self, consecutive_degraded: int) -> int:
        """Allowed staleness for the n-th consecutive degraded serve."""
        if consecutive_degraded < 1:
            raise ValueError(
                "consecutive_degraded must be >= 1, got %d" % consecutive_degraded
            )
        return min(
            self.max_staleness_budget,
            self.base_staleness_budget
            + self.escalation_step * (consecutive_degraded - 1),
        )


class ShardSupervisor:
    """Crash-consistency and degradation state for one shard engine."""

    def __init__(self, shard: int, engine, degradation: DegradationPolicy) -> None:
        self.shard = shard
        self.engine = engine
        self.degradation = degradation
        self.journal = FeedbackJournal()
        self.checkpoint = ShardCheckpoint.capture(engine.state, engine.day)
        # Last-known-good page per requested k, with the version it was
        # fresh at — what degraded serves hand out while the shard is down.
        self._last_good: Dict[int, Tuple[np.ndarray, int]] = {}
        self._consecutive_degraded = 0
        self._pre_crash_digest: Optional[int] = None
        self._pre_crash_version = 0
        self.crashed = False
        # Counters (reported through the chaos bench and router stats).
        self.degraded_serves = 0
        self.load_sheds = 0
        self.recoveries = 0
        self.recovery_seconds = 0.0
        self.replayed_entries = 0
        self.recovered_bit_identical = True
        self.last_recovery_digest: Optional[int] = None

    # ------------------------------------------------------------ journaling

    def take_checkpoint(self) -> None:
        """Snapshot the live state and truncate the journal."""
        self.checkpoint = ShardCheckpoint.capture(self.engine.state, self.engine.day)
        self.journal.clear()

    def capture_rng_state(self) -> Optional[dict]:
        """Engine generator state, captured *before* a stochastic commit.

        Fluid commits are deterministic — nothing to capture.  Stochastic
        commits draw binomials from the engine's generator, so the caller
        snapshots the bit-generator state first and journals it alongside
        the committed batch; replay rebuilds a generator from it and
        re-draws identically.
        """
        if self.engine.state.mode == "fluid":
            return None
        return self.engine.rng.bit_generator.state

    def journal_commit(
        self,
        indices: np.ndarray,
        visits: np.ndarray,
        rng_state: Optional[dict] = None,
    ) -> None:
        """Journal one *successfully committed* feedback batch."""
        self.journal.append_commit(indices, visits, rng_state=rng_state)

    def journal_bump(self) -> None:
        self.journal.append_bump()

    def journal_day(self, replaced: np.ndarray, now: float) -> None:
        self.journal.append_day(replaced, now)

    # ----------------------------------------------------------- degradation

    def note_served(self, k: int, page: np.ndarray) -> None:
        """Record a successful fresh serve as the last-known-good page."""
        self._last_good[int(k)] = (page.copy(), self.engine.state.version)
        self._consecutive_degraded = 0

    def serve_degraded(self, k: int, pending_events: int) -> Tuple[np.ndarray, int]:
        """Serve the last-known-good page for ``k`` while the shard is down.

        Returns ``(page, staleness)`` or raises
        :class:`~repro.robustness.faults.LoadShedError` when the page's
        staleness exceeds the escalating budget (or no page is known).
        """
        self._consecutive_degraded += 1
        budget = self.degradation.budget(self._consecutive_degraded)
        entry = self._last_good.get(int(k))
        if entry is None:
            self.load_sheds += 1
            raise LoadShedError(
                "shard %d is down and has no last-known-good page for k=%d"
                % (self.shard, k)
            )
        page, version = entry
        if self.engine.state is not None:
            current_version = self.engine.state.version
        else:
            current_version = self._pre_crash_version
        staleness = (current_version - version) + int(pending_events)
        if staleness > budget:
            self.load_sheds += 1
            raise LoadShedError(
                "shard %d degraded serve staleness %d exceeds budget %d"
                % (self.shard, staleness, budget)
            )
        self.degraded_serves += 1
        return page, staleness

    # ------------------------------------------------------- crash / recover

    def crash(self, at_query: int) -> None:
        """Simulate process loss: drop the shard's in-memory serving state.

        The checkpoint and journal survive (they model durable storage);
        everything the engine holds in memory — popularity state, the
        maintained order, tie keys, cached pages — is gone.  The pre-crash
        digest is taken first so recovery can prove bit-identity.
        """
        engine = self.engine
        if engine.state is None:
            return  # already crashed; nothing further to lose
        self._pre_crash_digest = state_digest(engine.state, engine.day)
        self._pre_crash_version = engine.state.version
        self.crashed = True
        engine.state = None
        engine._order = None
        engine._tie_key = None
        engine._order_version = -1
        engine._dirty_scratch = None
        engine._promoted_mask = None
        if engine.cache is not None:
            engine.cache.invalidate()

    def recover(self) -> float:
        """Rebuild the shard from checkpoint + journal replay.

        Restores the popularity state bit-identically to the pre-crash
        digest (verified; tracked in ``recovered_bit_identical``), resets
        the engine's day clock, takes a fresh checkpoint, and returns the
        recovery wall-clock seconds.
        """
        start = time.perf_counter()
        engine = self.engine
        state = self.checkpoint.restore_state()
        self.replayed_entries += len(self.journal)
        days = self.journal.replay(state)
        engine.state = state
        engine.day = self.checkpoint.day + days
        engine._order = None
        engine._tie_key = None
        engine._order_version = -1
        engine._dirty_scratch = None
        engine._promoted_mask = None
        recovered = state_digest(state, engine.day)
        self.last_recovery_digest = recovered
        if self._pre_crash_digest is not None and recovered != self._pre_crash_digest:
            self.recovered_bit_identical = False
        self.crashed = False
        self._pre_crash_digest = None
        self.take_checkpoint()
        elapsed = time.perf_counter() - start
        self.recoveries += 1
        self.recovery_seconds += elapsed
        return elapsed

    # ------------------------------------------------------------- reporting

    def counters(self) -> Dict[str, float]:
        return {
            "degraded_serves": float(self.degraded_serves),
            "load_sheds": float(self.load_sheds),
            "recoveries": float(self.recoveries),
            "recovery_seconds": float(self.recovery_seconds),
            "replayed_entries": float(self.replayed_entries),
            "recovered_bit_identical": float(self.recovered_bit_identical),
        }


__all__ = ["DegradationPolicy", "ShardSupervisor"]
