"""Crash-consistent shard state: checkpoints, feedback journal, replay.

Recovery contract: *checkpoint + journal replay restores a shard's
popularity state bit-identically to the moment of its last committed
mutation*.  This works because serving queries never mutate popularity —
only feedback commits, injected version bumps and lifecycle days do — and
every one of those mutations is journaled:

* ``commit`` entries record the batch arrays; in stochastic mode they also
  capture the committing generator's bit-generator state, so the binomial
  awareness draws replay exactly even though the generator is shared with
  the serving path between commits;
* ``bump`` entries record concurrent-writer version advances (the OCC
  conflict injection), keeping the replayed version counter exact;
* ``day`` entries record the lifecycle's *effect* (which slots were
  replaced, at what time) rather than its random draws, so replay never
  re-samples the Poisson process.

The journal is truncated at every checkpoint, so replay cost is bounded by
the work since the last checkpoint, not the run length.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.community.page import PagePool
from repro.serving.state import PopularityState


def state_digest(state: PopularityState, day: int) -> int:
    """CRC32 fingerprint of a shard's popularity state (plus its day clock).

    Covers everything the recovery contract promises to restore: awareness
    counts, page identities and creation times, the version counter and the
    lifecycle day.  Two states with equal digests are bit-identical in all
    of those.
    """
    pool = state.pool
    crc = zlib.crc32(np.ascontiguousarray(pool.aware_count).tobytes())
    crc = zlib.crc32(np.ascontiguousarray(pool.quality).tobytes(), crc)
    crc = zlib.crc32(np.ascontiguousarray(pool.created_at).tobytes(), crc)
    crc = zlib.crc32(np.ascontiguousarray(pool.page_ids).tobytes(), crc)
    crc = zlib.crc32(
        np.asarray(
            [state.version, int(day), pool._next_page_id], dtype=np.int64
        ).tobytes(),
        crc,
    )
    return crc


@dataclass
class ShardCheckpoint:
    """A crash-consistent snapshot of one shard's popularity state.

    All arrays are copies — the checkpoint stays valid after the live state
    is mutated or destroyed.  ``restore_state`` rebuilds a fresh
    :class:`~repro.serving.state.PopularityState` carrying exactly the
    captured values.
    """

    aware_count: np.ndarray
    quality: np.ndarray
    created_at: np.ndarray
    page_ids: np.ndarray
    next_page_id: int
    monitored_population: int
    mode: str
    version: int
    day: int

    @classmethod
    def capture(cls, state: PopularityState, day: int) -> "ShardCheckpoint":
        pool = state.pool
        return cls(
            aware_count=pool.aware_count.copy(),
            quality=pool.quality.copy(),
            created_at=pool.created_at.copy(),
            page_ids=pool.page_ids.copy(),
            next_page_id=int(pool._next_page_id),
            monitored_population=int(pool.monitored_population),
            mode=state.mode,
            version=int(state.version),
            day=int(day),
        )

    def restore_state(self) -> PopularityState:
        """Rebuild a fresh popularity state equal to the captured one."""
        pool = PagePool(self.quality, self.monitored_population)
        pool.aware_count[:] = self.aware_count
        pool.created_at[:] = self.created_at
        pool.page_ids[:] = self.page_ids
        pool._next_page_id = int(self.next_page_id)
        state = PopularityState(pool, mode=self.mode)
        state.version = int(self.version)
        return state

    def digest(self) -> int:
        """Digest of the captured state (without materializing it)."""
        return state_digest(self.restore_state(), self.day)

    def save(self, path: str) -> None:
        """Persist the checkpoint as one ``.npz`` file."""
        np.savez_compressed(
            path,
            aware_count=self.aware_count,
            quality=self.quality,
            created_at=self.created_at,
            page_ids=self.page_ids,
            scalars=np.asarray(
                [self.next_page_id, self.monitored_population, self.version, self.day],
                dtype=np.int64,
            ),
            mode=np.asarray(self.mode),
        )

    @classmethod
    def load(cls, path: str) -> "ShardCheckpoint":
        with np.load(path, allow_pickle=False) as data:
            scalars = data["scalars"]
            return cls(
                aware_count=data["aware_count"],
                quality=data["quality"],
                created_at=data["created_at"],
                page_ids=data["page_ids"],
                next_page_id=int(scalars[0]),
                monitored_population=int(scalars[1]),
                mode=str(data["mode"]),
                version=int(scalars[2]),
                day=int(scalars[3]),
            )


@dataclass
class JournalEntry:
    """One journaled mutation (``commit``, ``bump`` or ``day``)."""

    kind: str
    indices: Optional[np.ndarray] = None
    visits: Optional[np.ndarray] = None
    rng_state: Optional[Dict] = None
    now: float = 0.0

    def to_dict(self) -> Dict:
        payload: Dict = {"kind": self.kind}
        if self.indices is not None:
            payload["indices"] = np.asarray(self.indices).tolist()
        if self.visits is not None:
            payload["visits"] = np.asarray(self.visits).tolist()
        if self.rng_state is not None:
            payload["rng_state"] = self.rng_state
        if self.kind == "day":
            payload["now"] = float(self.now)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "JournalEntry":
        indices = payload.get("indices")
        visits = payload.get("visits")
        return cls(
            kind=payload["kind"],
            indices=None if indices is None else np.asarray(indices, dtype=int),
            visits=None if visits is None else np.asarray(visits, dtype=float),
            rng_state=payload.get("rng_state"),
            now=float(payload.get("now", 0.0)),
        )


@dataclass
class FeedbackJournal:
    """Append-only log of popularity mutations since the last checkpoint."""

    entries: List[JournalEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def day_count(self) -> int:
        """Lifecycle days journaled since the last checkpoint."""
        return sum(1 for entry in self.entries if entry.kind == "day")

    def append_commit(
        self,
        indices: np.ndarray,
        visits: np.ndarray,
        rng_state: Optional[Dict] = None,
    ) -> None:
        """Record one committed feedback batch (arrays are copied)."""
        self.entries.append(
            JournalEntry(
                kind="commit",
                indices=np.asarray(indices, dtype=int).copy(),
                visits=np.asarray(visits, dtype=float).copy(),
                rng_state=rng_state,
            )
        )

    def append_bump(self) -> None:
        """Record a concurrent writer's version advance."""
        self.entries.append(JournalEntry(kind="bump"))

    def append_day(self, replaced: np.ndarray, now: float) -> None:
        """Record one lifecycle day's replacement effect."""
        self.entries.append(
            JournalEntry(
                kind="day",
                indices=np.asarray(replaced, dtype=int).copy(),
                now=float(now),
            )
        )

    def clear(self) -> None:
        self.entries = []

    def replay(self, state: PopularityState) -> int:
        """Apply every journaled mutation to ``state`` in commit order.

        Returns the number of lifecycle days replayed (the caller advances
        its day clock by that much).  Stochastic commit entries rebuild a
        generator from the captured bit-generator state, so the binomial
        draws match the original commit exactly.
        """
        days = 0
        for entry in self.entries:
            if entry.kind == "commit":
                rng = None
                if entry.rng_state is not None:
                    # contracts: ignore[no-unseeded-rng] -- the bit-generator state is overwritten from the journal entry on the next line; no entropy is ever drawn
                    rng = np.random.default_rng()
                    rng.bit_generator.state = entry.rng_state
                state.apply_visits_at(entry.indices, entry.visits, rng=rng)
            elif entry.kind == "bump":
                state.bump_version()
            elif entry.kind == "day":
                replaced = state.pool.replace_pages(entry.indices, entry.now)
                state.note_replaced(replaced)
                days += 1
            else:  # pragma: no cover - schema guard
                raise ValueError("unknown journal entry kind %r" % entry.kind)
        return days

    # ------------------------------------------------------- serialization

    def to_jsonl(self, path: str) -> None:
        """Persist the journal as JSON lines (one entry per line)."""
        with open(path, "w") as handle:
            for entry in self.entries:
                handle.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")

    @classmethod
    def from_jsonl(cls, path: str) -> "FeedbackJournal":
        entries = []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    entries.append(JournalEntry.from_dict(json.loads(line)))
        return cls(entries=entries)


__all__ = [
    "FeedbackJournal",
    "JournalEntry",
    "ShardCheckpoint",
    "state_digest",
]
