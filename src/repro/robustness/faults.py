"""Deterministic, scripted fault injection for the serving tier.

A :class:`FaultPlan` is a declarative schedule of fault events pinned to
*query indices* of a serving stream: shard stalls and crashes, feedback
batch faults (drop/duplicate/reorder), OCC write conflicts, and result
cache version poisoning.  Because every event fires at a scripted query
count — never from wall-clock time or unseeded randomness — a chaos run is
exactly reproducible: the same plan, trace and seeds produce the same
degraded serves, the same retry sequences and the same recovery points.

The runtime half is the :class:`FaultInjector`, which the router and every
engine consult from their hot paths behind the same ``enabled`` guard the
telemetry recorder uses: a run without faults holds :data:`NULL_INJECTOR`
(``enabled = False``) and pays one attribute load and a predictable branch
per query, nothing else.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Recognized fault kinds (the wire schema of a fault-plan JSON file).
FAULT_KINDS = (
    "stall",      # shard unavailable for `duration` queries (state intact)
    "crash",      # shard loses in-memory state; recovery after `duration`
    "conflict",   # next `count` commit attempts see a concurrent writer
    "drop",       # next feedback batch of the shard is lost
    "duplicate",  # next feedback batch commits twice
    "reorder",    # next feedback batch commits after the following one
    "poison",     # cache entry versions corrupted before the next serve
)

#: Version stamp written into poisoned cache entries: so far in the past
#: that validate-on-read must reject the entry whatever the budget.
POISON_VERSION = -(2**40)


class LoadShedError(RuntimeError):
    """A query to an unavailable shard exceeded the staleness budget."""


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        at_query: 1-based query count at which the fault arms (the event
            fires before that query is served).
        shard: target shard index.
        duration: downtime in queries for ``stall``/``crash`` (0 means the
            shard recovers at its next touch).
        count: number of injected conflicts for ``conflict`` events.
    """

    kind: str
    at_query: int
    shard: int = 0
    duration: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                "kind must be one of %s, got %r" % (", ".join(FAULT_KINDS), self.kind)
            )
        if self.at_query < 1:
            raise ValueError("at_query must be >= 1, got %d" % self.at_query)
        if self.shard < 0:
            raise ValueError("shard must be non-negative, got %d" % self.shard)
        if self.duration < 0:
            raise ValueError("duration must be non-negative, got %d" % self.duration)
        if self.count < 1:
            raise ValueError("count must be >= 1, got %d" % self.count)

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "at_query": int(self.at_query),
            "shard": int(self.shard),
            "duration": int(self.duration),
            "count": int(self.count),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultEvent":
        return cls(
            kind=payload["kind"],
            at_query=int(payload["at_query"]),
            shard=int(payload.get("shard", 0)),
            duration=int(payload.get("duration", 0)),
            count=int(payload.get("count", 1)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, serializable schedule of :class:`FaultEvent` entries.

    Plans are plain data — JSON round-trippable so a CI leg can pin one in
    the repository and a failing chaos run can be replayed byte for byte.
    """

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __len__(self) -> int:
        return len(self.events)

    def max_shard(self) -> int:
        """Highest shard index any event targets (-1 for an empty plan)."""
        return max((event.shard for event in self.events), default=-1)

    def sorted_events(self) -> List[FaultEvent]:
        """Events in firing order (stable for equal query indices)."""
        return sorted(self.events, key=lambda event: event.at_query)

    def to_dict(self) -> Dict:
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultPlan":
        return cls(
            events=tuple(
                FaultEvent.from_dict(entry) for entry in payload.get("events", ())
            )
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as handle:
            return cls.from_json(handle.read())


class NullInjector:
    """The do-nothing injector installed on every hot path by default."""

    enabled = False

    def on_query(self, query_index: int) -> None:
        pass

    def before_engine_serve(self, engine) -> None:
        pass


#: Shared disabled injector; router and engines default to this singleton.
NULL_INJECTOR = NullInjector()


class FaultInjector:
    """Runtime fault scheduler for one router under one :class:`FaultPlan`.

    The injector owns the per-shard availability windows (stall/crash
    downtime), the pending conflict and batch-fault queues, and the crash
    teardown trigger.  It is wired to a router by
    :meth:`~repro.serving.router.ShardedRouter.enable_robustness`, which
    also points every engine's ``faults`` attribute here so cache-poison
    events fire from inside the engine serve path.
    """

    enabled = True

    def __init__(self, plan: FaultPlan, router) -> None:
        n_shards = router.n_shards
        if plan.max_shard() >= n_shards:
            raise ValueError(
                "fault plan targets shard %d but the router has %d shards"
                % (plan.max_shard(), n_shards)
            )
        self.plan = plan
        self._router = router
        self._events = deque(plan.sorted_events())
        self._down_until = [0] * n_shards
        self._down_since = [0] * n_shards
        self._needs_recovery = [False] * n_shards
        self._conflicts = [0] * n_shards
        self._batch_faults: List[deque] = [deque() for _ in range(n_shards)]
        self._deferred: List[Optional[Tuple[np.ndarray, np.ndarray]]] = [
            None
        ] * n_shards
        self._poison_pending = [False] * n_shards
        self._engine_shards: Dict[int, int] = {
            id(engine): shard for shard, engine in enumerate(router.engines)
        }
        # Event counters (reported by the chaos bench).
        self.crashes = 0
        self.stalls = 0
        self.conflicts_injected = 0
        self.batches_dropped = 0
        self.batches_duplicated = 0
        self.batches_reordered = 0
        self.poisons_applied = 0
        self.downtime_queries = 0

    # ------------------------------------------------------------ schedule

    def on_query(self, query_index: int) -> None:
        """Fire every scripted event due at or before ``query_index``."""
        events = self._events
        while events and events[0].at_query <= query_index:
            self._fire(events.popleft(), query_index)

    def _fire(self, event: FaultEvent, query_index: int) -> None:
        shard = event.shard
        if event.kind == "stall":
            self.stalls += 1
            self._begin_downtime(shard, event, query_index)
        elif event.kind == "crash":
            self.crashes += 1
            self._begin_downtime(shard, event, query_index)
            self._needs_recovery[shard] = True
            supervisors = self._router.supervisors
            if supervisors is not None:
                supervisors[shard].crash(at_query=query_index)
        elif event.kind == "conflict":
            self._conflicts[shard] += event.count
        elif event.kind == "poison":
            self._poison_pending[shard] = True
        else:  # drop / duplicate / reorder
            self._batch_faults[shard].append(event.kind)

    def _begin_downtime(
        self, shard: int, event: FaultEvent, query_index: int
    ) -> None:
        until = event.at_query + event.duration
        self._down_since[shard] = query_index
        self._down_until[shard] = max(self._down_until[shard], until)

    # ----------------------------------------------------------- liveness

    def poll(self, shard: int, query_index: int) -> str:
        """Shard availability at ``query_index``: ``up``/``down``/``recover``.

        ``recover`` means a crashed shard's downtime has elapsed and the
        caller must run recovery (checkpoint + journal replay) before using
        the engine; the caller acknowledges with :meth:`mark_recovered`.
        """
        if self._down_until[shard] > query_index:
            self.downtime_queries += 1
            return "down"
        if self._needs_recovery[shard]:
            return "recover"
        return "up"

    def is_down(self, shard: int, query_index: int) -> bool:
        """Whether the shard is inside a downtime window (no counting)."""
        return self._down_until[shard] > query_index

    def needs_recovery(self, shard: int) -> bool:
        """Whether a crashed shard still awaits checkpoint+journal recovery."""
        return self._needs_recovery[shard]

    def mark_recovered(self, shard: int) -> None:
        """Acknowledge that a crashed shard finished recovery."""
        self._needs_recovery[shard] = False

    def downtime_span(self, shard: int) -> Tuple[int, int]:
        """Most recent downtime window of the shard, in query indices."""
        return self._down_since[shard], self._down_until[shard]

    # -------------------------------------------------------- write faults

    def take_conflict(self, shard: int) -> bool:
        """Consume one pending injected conflict for a commit attempt."""
        if self._conflicts[shard] > 0:
            self._conflicts[shard] -= 1
            self.conflicts_injected += 1
            return True
        return False

    def take_batch_fault(self, shard: int) -> Optional[str]:
        """Consume the next scripted batch fault for a flushed batch."""
        faults = self._batch_faults[shard]
        if not faults:
            return None
        kind = faults.popleft()
        if kind == "drop":
            self.batches_dropped += 1
        elif kind == "duplicate":
            self.batches_duplicated += 1
        else:
            self.batches_reordered += 1
        return kind

    def defer_batch(
        self, shard: int, indices: np.ndarray, visits: np.ndarray
    ) -> None:
        """Hold a reordered batch until the shard's next flush."""
        held = self._deferred[shard]
        if held is not None:
            # Two reorders back to back: merge so nothing is silently lost.
            indices = np.concatenate([held[0], indices])
            visits = np.concatenate([held[1], visits])
        self._deferred[shard] = (indices, visits)

    def take_deferred(
        self, shard: int
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Pop a previously deferred batch, if any."""
        held = self._deferred[shard]
        self._deferred[shard] = None
        return held

    # -------------------------------------------------------- engine hook

    def before_engine_serve(self, engine) -> None:
        """Engine-side hook: apply pending cache poison for the shard."""
        shard = self._engine_shards.get(id(engine))
        if shard is None or not self._poison_pending[shard]:
            return
        self._poison_pending[shard] = False
        if engine.cache is not None:
            engine.cache.poison_versions(POISON_VERSION)
            self.poisons_applied += 1

    # ----------------------------------------------------------- reporting

    def counters(self) -> Dict[str, float]:
        """Injected-fault counters as one flat dictionary."""
        return {
            "fault_crashes": float(self.crashes),
            "fault_stalls": float(self.stalls),
            "fault_conflicts_injected": float(self.conflicts_injected),
            "fault_batches_dropped": float(self.batches_dropped),
            "fault_batches_duplicated": float(self.batches_duplicated),
            "fault_batches_reordered": float(self.batches_reordered),
            "fault_poisons_applied": float(self.poisons_applied),
            "fault_downtime_queries": float(self.downtime_queries),
        }


__all__ = [
    "FAULT_KINDS",
    "POISON_VERSION",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "LoadShedError",
    "NullInjector",
    "NULL_INJECTOR",
]
