"""OCC write-path machinery: retry policy, flush reports, dead letters.

The result cache already validates on read (Laux & Laiho's versioned-row
read pattern); this module supplies the *write* half of the same access
pattern: a feedback commit carries the popularity-store version the writer
read, a conflicting commit is rejected without touching state, and the
writer retries with bounded, jittered exponential backoff.  A batch that
exhausts its attempts is dead-lettered — parked, counted, and available
for explicit redelivery — rather than silently dropped.

Everything here is deterministic under a seed: backoff jitter draws come
from the caller's seeded generator, so a chaos run's retry schedule is as
reproducible as its fault plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for conflicting feedback commits.

    Attributes:
        max_attempts: total commit attempts per batch (>= 1); the batch is
            dead-lettered after the last conflicting attempt.
        base_backoff_seconds: backoff before the first retry.
        backoff_multiplier: per-retry growth factor (>= 1).
        max_backoff_seconds: cap on a single backoff interval.
        jitter: fraction of each interval randomized away (0 = none,
            1 = full jitter down to zero); draws come from the seeded
            retry generator so schedules replay exactly.
    """

    max_attempts: int = 4
    base_backoff_seconds: float = 1e-4
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 0.05
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if int(self.max_attempts) != self.max_attempts or self.max_attempts < 1:
            raise ValueError(
                "max_attempts must be a positive integer, got %r" % (self.max_attempts,)
            )
        if self.base_backoff_seconds < 0:
            raise ValueError("base_backoff_seconds must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.max_backoff_seconds < 0:
            raise ValueError("max_backoff_seconds must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1], got %r" % (self.jitter,))

    def backoff_seconds(self, conflict_count: int, rng: np.random.Generator) -> float:
        """Backoff before the retry following the ``conflict_count``-th conflict.

        The deterministic schedule is ``min(cap, base * multiplier**(c-1))``;
        with jitter ``j`` the interval is scaled into
        ``[(1 - j) * delay, delay]`` by one uniform draw from ``rng``.
        """
        if conflict_count < 1:
            raise ValueError("conflict_count must be >= 1, got %d" % conflict_count)
        delay = min(
            self.max_backoff_seconds,
            self.base_backoff_seconds * self.backoff_multiplier ** (conflict_count - 1),
        )
        if self.jitter > 0.0 and delay > 0.0:
            delay *= 1.0 - self.jitter * float(rng.random())
        return delay


@dataclass
class FlushReport:
    """Structured outcome of one ``flush_feedback`` call.

    Replaces the historical bare applied-event integer so callers (and the
    bench ``extra_info``) can see the OCC write path's behaviour: how many
    events committed, how many commit attempts conflicted and were retried,
    and what was lost to scripted faults or dead-lettering.
    """

    batches: int = 0
    committed: int = 0
    conflicts: int = 0
    retries: int = 0
    dead_letter_batches: int = 0
    dead_letter_events: int = 0
    dropped_events: int = 0
    backoff_seconds: float = 0.0

    def __bool__(self) -> bool:
        return self.committed > 0

    def merge(self, other: "FlushReport") -> "FlushReport":
        """Fold another report into this one (returns ``self``)."""
        self.batches += other.batches
        self.committed += other.committed
        self.conflicts += other.conflicts
        self.retries += other.retries
        self.dead_letter_batches += other.dead_letter_batches
        self.dead_letter_events += other.dead_letter_events
        self.dropped_events += other.dropped_events
        self.backoff_seconds += other.backoff_seconds
        return self

    def as_dict(self, prefix: str = "flush_") -> Dict[str, float]:
        return {
            prefix + "batches": float(self.batches),
            prefix + "committed": float(self.committed),
            prefix + "conflicts": float(self.conflicts),
            prefix + "retries": float(self.retries),
            prefix + "dead_letter_batches": float(self.dead_letter_batches),
            prefix + "dead_letter_events": float(self.dead_letter_events),
            prefix + "dropped_events": float(self.dropped_events),
            prefix + "backoff_seconds": float(self.backoff_seconds),
        }


@dataclass
class DeadLetter:
    """One feedback batch that exhausted its OCC commit attempts."""

    shard: int
    indices: np.ndarray
    visits: np.ndarray
    attempts: int

    @property
    def events(self) -> int:
        return int(self.indices.size)


@dataclass
class DeadLetterQueue:
    """Parked batches awaiting redelivery, with running totals."""

    letters: List[DeadLetter] = field(default_factory=list)
    total_batches: int = 0
    total_events: int = 0

    def __len__(self) -> int:
        return len(self.letters)

    def park(self, letter: DeadLetter) -> None:
        self.letters.append(letter)
        self.total_batches += 1
        self.total_events += letter.events

    def drain(self) -> List[DeadLetter]:
        """Remove and return every parked batch (totals are preserved)."""
        letters, self.letters = self.letters, []
        return letters


__all__ = [
    "RetryPolicy",
    "FlushReport",
    "DeadLetter",
    "DeadLetterQueue",
]
