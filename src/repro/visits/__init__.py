"""User visit models: rank-biased attention, visit allocation, mixed surfing.

The paper assumes that the expected number of visits a page receives depends
on the rank position at which the search engine lists it, following the
power law fitted on AltaVista logs, ``F2(rank) = theta * rank**(-3/2)``
(Equation 4).  This package provides that law (and alternatives), utilities
to allocate a community's daily visit budget over a ranked list, and the
mixed surf-and-search visit model of Section 8.
"""

from repro.visits.attention import (
    AttentionModel,
    CascadeAttention,
    GeometricAttention,
    PowerLawAttention,
    UniformAttention,
)
from repro.visits.allocation import VisitAllocator, allocate_visits, expected_visits_by_rank
from repro.visits.surfing import MixedSurfingModel

__all__ = [
    "AttentionModel",
    "PowerLawAttention",
    "UniformAttention",
    "GeometricAttention",
    "CascadeAttention",
    "VisitAllocator",
    "allocate_visits",
    "expected_visits_by_rank",
    "MixedSurfingModel",
]
