"""Mixed surfing and searching visit model (Section 8 of the paper).

When users do not exclusively rely on the search engine, a fraction ``x`` of
page visits comes from *random surfing*: following links with probability
``1 - c`` and teleporting to a uniformly random page with probability ``c``
(the PageRank teleportation constant, 0.15 by default).  The paper models the
link-following component as proportional to current popularity, giving

``V(p, t) = (1 - x) * F(P(p, t)) + x * ((1 - c) * P(p, t) / sum_P + c / n) * v``

This module implements that combination for both the simulator (which knows
each page's search-driven visit rate directly) and the analytical model
(which works with the solved function ``F``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_probability


@dataclass(frozen=True)
class MixedSurfingModel:
    """Combines search-engine-driven visits with popularity-proportional surfing.

    Attributes:
        surfing_fraction: the paper's ``x`` — fraction of visits that come
            from random surfing rather than querying the search engine.
        teleportation: the paper's ``c`` — probability a surfer jumps to a
            uniformly random page instead of following a link.
    """

    surfing_fraction: float = 0.0
    teleportation: float = 0.15

    def __post_init__(self) -> None:
        check_probability("surfing_fraction", self.surfing_fraction)
        check_probability("teleportation", self.teleportation)

    @property
    def is_pure_search(self) -> bool:
        """True when every visit goes through the search engine (``x = 0``)."""
        return self.surfing_fraction == 0.0

    def surfing_shares(self, popularity: np.ndarray) -> np.ndarray:
        """Per-page share of *surfing* visits given current popularity values.

        The share is ``(1 - c) * P(p) / sum(P) + c / n``; when total
        popularity is zero all surfing mass goes through teleportation.
        """
        popularity = np.asarray(popularity, dtype=float)
        n = popularity.size
        if n == 0:
            raise ValueError("popularity vector must be non-empty")
        total = popularity.sum()
        teleport = np.full(n, 1.0 / n)
        if total <= 0:
            return teleport
        link_follow = popularity / total
        return (1.0 - self.teleportation) * link_follow + self.teleportation * teleport

    def surfing_shares_batch(self, popularity: np.ndarray) -> np.ndarray:
        """Batched :meth:`surfing_shares` over an ``(R, n)`` popularity matrix.

        Row ``r`` equals ``surfing_shares(popularity[r])`` bit for bit: the
        same blend expression elementwise, with each row's popularity total
        taken over that row alone, and rows with zero total popularity
        collapsing to the pure teleport distribution.
        """
        popularity = np.asarray(popularity, dtype=float)
        if popularity.ndim != 2 or popularity.shape[1] == 0:
            raise ValueError("popularity must be a non-empty (R, n) matrix")
        n = popularity.shape[1]
        totals = popularity.sum(axis=1, keepdims=True)
        teleport = 1.0 / n
        link_follow = np.divide(
            popularity, totals, out=np.zeros_like(popularity), where=totals > 0
        )
        shares = (
            (1.0 - self.teleportation) * link_follow
            + self.teleportation * teleport
        )
        return np.where(totals > 0, shares, teleport)

    def combine(
        self,
        search_visits: np.ndarray,
        popularity: np.ndarray,
        total_visits: float,
    ) -> np.ndarray:
        """Blend search-driven visit rates with surfing-driven visit rates.

        ``search_visits`` must already sum (approximately) to
        ``total_visits``; the result preserves the total while moving a
        fraction ``x`` of it onto the surfing distribution.
        """
        search_visits = np.asarray(search_visits, dtype=float)
        x = self.surfing_fraction
        if x == 0.0:
            return search_visits.copy()
        surf = self.surfing_shares(popularity) * total_visits
        return (1.0 - x) * search_visits + x * surf

    def describe(self) -> str:
        """Short description used in experiment reports."""
        return "MixedSurfing(x=%.2f, c=%.2f)" % (self.surfing_fraction, self.teleportation)


__all__ = ["MixedSurfingModel"]
