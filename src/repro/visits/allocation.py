"""Allocation of a community's visit budget over a ranked result list."""

from __future__ import annotations

from dataclasses import dataclass

from typing import Optional, Sequence

import numpy as np

from repro.visits.attention import AttentionModel, PowerLawAttention
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive


def expected_visits_by_rank(
    n: int, total_visits: float, attention: Optional[AttentionModel] = None
) -> np.ndarray:
    """Expected visits per rank position (rank 1 first).

    With the default power-law attention model this is the paper's
    ``F2(rank) = theta * rank**(-3/2)`` where ``theta`` normalizes the total
    to ``total_visits``.
    """
    attention = attention or PowerLawAttention()
    return attention.visit_rates(n, total_visits)


def allocate_visits(
    ranking: np.ndarray,
    total_visits: float,
    attention: Optional[AttentionModel] = None,
) -> np.ndarray:
    """Return expected visits per *page index* given a ranking.

    ``ranking`` is a permutation of page indices ordered from rank 1 to rank
    ``n``.  The result is indexed by page, i.e. ``result[p]`` is the expected
    number of visits to page ``p``.
    """
    ranking = np.asarray(ranking, dtype=int)
    n = ranking.size
    by_rank = expected_visits_by_rank(n, total_visits, attention)
    by_page = np.empty(n, dtype=float)
    by_page[ranking] = by_rank
    return by_page


def rank_visit_shares(
    ranking: np.ndarray,
    attention: AttentionModel,
    surfing=None,
    popularity: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-page visit shares for a ranking, with optional surfing blend.

    This is the share computation of one simulated day: attention shares by
    rank scattered to page indices, then mixed with popularity-proportional
    surfing traffic when a :class:`~repro.visits.surfing.MixedSurfingModel`
    with non-zero surfing fraction is given.  Both the day-stepped simulator
    and the serving replay adapter call this single implementation so their
    visit allocations agree bit for bit.
    """
    ranking = np.asarray(ranking, dtype=int)
    n = ranking.size
    shares_by_rank = attention.visit_shares(n)
    shares_by_page = np.empty(n, dtype=float)
    shares_by_page[ranking] = shares_by_rank
    if surfing is not None and not surfing.is_pure_search:
        surf_shares = surfing.surfing_shares(popularity)
        x = surfing.surfing_fraction
        shares_by_page = (1.0 - x) * shares_by_page + x * surf_shares
    return shares_by_page


def rank_visit_shares_batch(
    rankings: np.ndarray,
    attention: AttentionModel,
    surfing=None,
    popularity: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Batched :func:`rank_visit_shares` over ``(R, n)`` rankings.

    Row ``r`` equals ``rank_visit_shares(rankings[r], attention, surfing,
    popularity[r])`` bit for bit: the scatter places the same share values
    and the surfing blend applies the same elementwise expression (with each
    row's popularity total taken over that row alone).
    """
    rankings = np.asarray(rankings)
    R, n = rankings.shape
    shares_by_rank = attention.visit_shares(n)
    if out is None:
        out = np.empty((R, n), dtype=float)
    rows = np.arange(R, dtype=np.intp)[:, None]
    out[rows, rankings] = shares_by_rank[None, :]
    if surfing is not None and not surfing.is_pure_search:
        if popularity is None:
            raise ValueError("surfing blend requires the popularity matrix")
        surf = surfing.surfing_shares_batch(popularity)
        x = surfing.surfing_fraction
        out *= 1.0 - x
        out += x * surf
    return out


def allocate_monitored_visits_batch(
    shares_by_page: np.ndarray,
    rate: float,
    mode: str,
    rngs: Sequence[np.random.Generator] = (),
) -> np.ndarray:
    """Batched :func:`allocate_monitored_visits` over ``(R, n)`` shares.

    Fluid mode is one elementwise product; stochastic mode draws each row's
    multinomial from that row's generator with the same normalized shares
    the sequential path would use.
    """
    if mode == "fluid":
        return shares_by_page * rate
    count = int(round(rate))
    R, n = shares_by_page.shape
    # n == 0: nothing to visit and no generator draws (normalizing the
    # empty share vector would divide by zero); count <= 0 likewise.
    if count <= 0 or n == 0:
        return np.zeros_like(shares_by_page)
    visits = np.empty((R, n), dtype=float)
    for row in range(R):
        row_shares = shares_by_page[row]
        normalized = row_shares / row_shares.sum()
        visits[row] = as_rng(rngs[row]).multinomial(count, normalized)
    return visits


def allocate_monitored_visits(
    shares_by_page: np.ndarray,
    rate: float,
    mode: str,
    rng: RandomSource = None,
) -> np.ndarray:
    """Monitored visits per page for one day: expected or multinomial-sampled.

    Shared by :meth:`Simulator.step` and the replay adapter (same parity
    contract as :func:`rank_visit_shares`).
    """
    if mode == "fluid":
        return shares_by_page * rate
    count = int(round(rate))
    if count <= 0 or np.asarray(shares_by_page).size == 0:
        return np.zeros_like(shares_by_page)
    normalized = shares_by_page / shares_by_page.sum()
    return as_rng(rng).multinomial(count, normalized).astype(float)


@dataclass
class VisitAllocator:
    """Distributes daily visits over a ranking, in expectation or by sampling.

    ``expected`` allocation returns real-valued visit rates; ``sample``
    draws an integer visit count per page from a multinomial over the
    attention shares, which is what the stochastic simulator uses to mimic
    individual user clicks.
    """

    total_visits: float
    attention: Optional[AttentionModel] = None

    def __post_init__(self) -> None:
        check_positive("total_visits", self.total_visits)
        if self.attention is None:
            self.attention = PowerLawAttention()

    def expected(self, ranking: np.ndarray) -> np.ndarray:
        """Expected visits per page index."""
        return allocate_visits(ranking, self.total_visits, self.attention)

    def sample(self, ranking: np.ndarray, rng: RandomSource = None) -> np.ndarray:
        """Sampled integer visits per page index (multinomial over rank shares)."""
        ranking = np.asarray(ranking, dtype=int)
        n = ranking.size
        shares = self.attention.visit_shares(n)
        generator = as_rng(rng)
        count = int(round(self.total_visits))
        draws = generator.multinomial(count, shares)
        by_page = np.zeros(n, dtype=float)
        by_page[ranking] = draws
        return by_page


__all__ = [
    "VisitAllocator",
    "allocate_visits",
    "expected_visits_by_rank",
    "rank_visit_shares",
    "allocate_monitored_visits",
]
