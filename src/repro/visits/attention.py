"""Rank-biased user attention models.

An attention model answers one question: given that a result list has ``n``
entries and the community issues ``v`` visits per unit time, how many of
those visits does the page at rank ``i`` receive in expectation?

The paper's model is :class:`PowerLawAttention` with exponent 3/2, the law
measured from AltaVista usage logs and re-measured in the paper's own live
study (Appendix A.2).  The alternatives are provided for ablations: a uniform
model (no rank bias — equivalent to fully random ranking), a geometric model
(exponential attention decay), and a cascade-style model in which users scan
from the top and stop with constant probability per position.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.utils.validation import check_positive, check_probability


class AttentionModel(abc.ABC):
    """Maps rank positions to expected visit shares."""

    @abc.abstractmethod
    def weights(self, n: int) -> np.ndarray:
        """Return an ``n``-vector of non-negative weights for ranks ``1..n``.

        The weights need not be normalized; callers use
        :meth:`visit_shares` or :meth:`visit_rates` for normalized output.
        """

    def visit_shares(self, n: int) -> np.ndarray:
        """Return the fraction of visits going to each rank (sums to one).

        The normalized share vector for a given ``(model, n)`` pair is
        cached (models are frozen dataclasses, hence hashable), so the
        simulators stop re-summing the weights on every simulated day.  The
        returned array is read-only; copy before mutating.  Unhashable
        custom models fall back to computing the shares each call.
        """
        try:
            return _normalized_shares(self, n)
        except TypeError:  # unhashable custom model
            return _compute_shares(self, n)

    def visit_rates(self, n: int, total_visits: float) -> np.ndarray:
        """Return the expected visits per rank when ``total_visits`` are issued.

        For the paper's power law this is exactly ``F2(rank)`` with
        ``theta = total_visits / sum_i i**(-3/2)``.
        """
        check_positive("total_visits", total_visits)
        return self.visit_shares(n) * total_visits

    def describe(self) -> str:
        """Short description used in experiment reports."""
        return type(self).__name__


@dataclass(frozen=True)
class PowerLawAttention(AttentionModel):
    """``weight(rank) = rank**(-exponent)`` — the paper's Equation 4 with exponent 1.5."""

    exponent: float = 1.5

    def __post_init__(self) -> None:
        check_positive("exponent", self.exponent)

    def weights(self, n: int) -> np.ndarray:
        return _power_law_weights(n, self.exponent).copy()

    def describe(self) -> str:
        return "PowerLawAttention(exponent=%.2f)" % self.exponent


def _compute_shares(model: "AttentionModel", n: int) -> np.ndarray:
    w = np.asarray(model.weights(n), dtype=float)
    total = w.sum()
    if total <= 0:
        raise ValueError("attention weights must have positive total mass")
    return w / total


@lru_cache(maxsize=128)
def _normalized_shares(model: "AttentionModel", n: int) -> np.ndarray:
    shares = _compute_shares(model, n)
    shares.setflags(write=False)
    return shares


@lru_cache(maxsize=64)
def _power_law_weights(n: int, exponent: float) -> np.ndarray:
    if n <= 0:
        raise ValueError("n must be positive, got %d" % n)
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-exponent)
    weights.setflags(write=False)
    return weights


@dataclass(frozen=True)
class UniformAttention(AttentionModel):
    """Every rank receives the same attention — models fully random ranking."""

    def weights(self, n: int) -> np.ndarray:
        if n <= 0:
            raise ValueError("n must be positive, got %d" % n)
        return np.ones(n, dtype=float)


@dataclass(frozen=True)
class GeometricAttention(AttentionModel):
    """``weight(rank) = decay**(rank - 1)`` — sharper-than-power-law falloff."""

    decay: float = 0.8

    def __post_init__(self) -> None:
        check_probability("decay", self.decay)
        if self.decay in (0.0,):
            raise ValueError("decay must be positive")

    def weights(self, n: int) -> np.ndarray:
        if n <= 0:
            raise ValueError("n must be positive, got %d" % n)
        return self.decay ** np.arange(n, dtype=float)


@dataclass(frozen=True)
class CascadeAttention(AttentionModel):
    """Users scan top-down and abandon with probability ``stop_probability`` per result.

    The weight of rank ``i`` is the probability the user is still scanning,
    ``(1 - stop_probability)**(i - 1)``, matching the position-based cascade
    click models used in later IR work; included as a robustness alternative.
    """

    stop_probability: float = 0.3

    def __post_init__(self) -> None:
        check_probability("stop_probability", self.stop_probability)
        if self.stop_probability >= 1.0:
            raise ValueError("stop_probability must be < 1")

    def weights(self, n: int) -> np.ndarray:
        if n <= 0:
            raise ValueError("n must be positive, got %d" % n)
        return (1.0 - self.stop_probability) ** np.arange(n, dtype=float)


__all__ = [
    "AttentionModel",
    "PowerLawAttention",
    "UniformAttention",
    "GeometricAttention",
    "CascadeAttention",
]
