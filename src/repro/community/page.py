"""Page state and the page pool used by the simulators.

A page carries its intrinsic quality ``Q(p)`` and the number of monitored
users currently aware of it.  Awareness ``A(p, t)`` is the fraction of
monitored users who have visited the page at least once, and popularity is
``P(p, t) = A(p, t) * Q(p)`` (Equation 1 of the paper).

The :class:`PagePool` keeps all per-page state in flat numpy arrays so that
ranking and visit allocation over communities of up to ``10^6`` pages stay
vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive_int, check_probability


@dataclass
class Page:
    """A single Web page in a community.

    This object-level view is convenient for examples and the live study; the
    bulk simulator uses :class:`PagePool` arrays instead.
    """

    page_id: int
    quality: float
    created_at: float = 0.0
    aware_monitored_users: int = 0
    monitored_population: int = 100

    def __post_init__(self) -> None:
        check_probability("quality", self.quality)
        check_positive_int("monitored_population", self.monitored_population)
        if not 0 <= self.aware_monitored_users <= self.monitored_population:
            raise ValueError("aware_monitored_users out of range")

    @property
    def awareness(self) -> float:
        """Fraction of monitored users aware of the page (``A(p, t)``)."""
        return self.aware_monitored_users / self.monitored_population

    @property
    def popularity(self) -> float:
        """Popularity ``P(p, t) = A(p, t) * Q(p)``."""
        return self.awareness * self.quality

    def record_monitored_visit(self, user_is_new: bool) -> None:
        """Update awareness after a visit by a monitored user."""
        if user_is_new and self.aware_monitored_users < self.monitored_population:
            self.aware_monitored_users += 1

    def age(self, now: float) -> float:
        """Age of the page at time ``now`` (days)."""
        return max(0.0, now - self.created_at)


class PagePool:
    """Vectorized per-page state for an entire community.

    The pool stores, for every live page slot: quality, the count of aware
    monitored users (or a fractional expected count in fluid mode), the
    creation time, and a monotonically increasing page identifier that
    changes whenever the slot is recycled by the lifecycle process.
    """

    def __init__(
        self,
        qualities: np.ndarray,
        monitored_population: int,
        created_at: float = 0.0,
    ) -> None:
        qualities = np.asarray(qualities, dtype=float)
        if qualities.ndim != 1 or qualities.size == 0:
            raise ValueError("qualities must be a non-empty 1-D array")
        if np.any((qualities < 0) | (qualities > 1)):
            raise ValueError("all quality values must lie in [0, 1]")
        check_positive_int("monitored_population", monitored_population)
        self.monitored_population = int(monitored_population)
        self.quality = qualities.copy()
        self.aware_count = np.zeros_like(self.quality)
        self.created_at = np.full_like(self.quality, float(created_at))
        self.page_ids = np.arange(self.n, dtype=np.int64)
        self._next_page_id = self.n

    # --- Size and views ----------------------------------------------------

    @property
    def n(self) -> int:
        """Number of page slots in the community."""
        return int(self.quality.size)

    @property
    def awareness(self) -> np.ndarray:
        """Awareness vector ``A(p, t)`` in ``[0, 1]``."""
        return self.aware_count / self.monitored_population

    @property
    def popularity(self) -> np.ndarray:
        """Popularity vector ``P(p, t) = A * Q``."""
        return self.awareness * self.quality

    def ages(self, now: float) -> np.ndarray:
        """Ages (days) of all page slots at time ``now``."""
        return np.maximum(0.0, now - self.created_at)

    def zero_awareness_mask(self) -> np.ndarray:
        """Boolean mask of pages no monitored user has ever visited."""
        return self.aware_count <= 0

    # --- Mutation ----------------------------------------------------------

    def add_awareness(self, index: int, new_users: float) -> None:
        """Increase the aware-user count of one page, clipped to ``m``."""
        self.aware_count[index] = min(
            self.monitored_population, self.aware_count[index] + new_users
        )

    def add_awareness_bulk(self, new_users: np.ndarray) -> None:
        """Increase awareness for all pages at once (fluid mode)."""
        np.minimum(
            self.monitored_population,
            self.aware_count + np.asarray(new_users, dtype=float),
            out=self.aware_count,
        )

    def replace_pages(self, indices: np.ndarray, now: float) -> np.ndarray:
        """Retire the pages at ``indices`` and create fresh equal-quality pages.

        Following the paper's stationarity assumption, the replacement page
        has the same quality as the retired one but zero awareness.  Each
        replaced slot receives a brand-new page identifier.  Returns the slot
        indices that were replaced (useful for observers tracking churn).
        """
        indices = np.asarray(indices, dtype=int)
        if indices.size == 0:
            return indices
        self.aware_count[indices] = 0.0
        self.created_at[indices] = float(now)
        fresh = np.arange(
            self._next_page_id, self._next_page_id + indices.size, dtype=np.int64
        )
        self.page_ids[indices] = fresh
        self._next_page_id += indices.size
        return indices

    # --- Conversion --------------------------------------------------------

    def as_pages(self, now: float = 0.0) -> list:
        """Materialize the pool as a list of :class:`Page` objects."""
        return [
            Page(
                page_id=int(self.page_ids[i]),
                quality=float(self.quality[i]),
                created_at=float(self.created_at[i]),
                aware_monitored_users=int(round(self.aware_count[i])),
                monitored_population=self.monitored_population,
            )
            for i in range(self.n)
        ]

    @classmethod
    def from_config(cls, config, rng: RandomSource = None) -> "PagePool":
        """Build a pool from a :class:`~repro.community.CommunityConfig`."""
        qualities = config.sample_qualities(as_rng(rng))
        return cls(qualities, config.n_monitored_users)


class BatchPagePool:
    """Per-page state for ``R`` replicate communities as ``(R, n)`` arrays.

    The batched counterpart of :class:`PagePool`: row ``r`` holds replicate
    ``r``'s quality, aware-user counts, creation times and page identifiers.
    Each row has its own page-id counter so its bookkeeping is bit-identical
    to a standalone :class:`PagePool` evolved with the same random stream.
    """

    def __init__(
        self,
        qualities: np.ndarray,
        monitored_population: int,
        created_at: float = 0.0,
    ) -> None:
        qualities = np.asarray(qualities, dtype=float)
        if qualities.ndim != 2 or qualities.size == 0:
            raise ValueError("qualities must be a non-empty (R, n) matrix")
        if np.any((qualities < 0) | (qualities > 1)):
            raise ValueError("all quality values must lie in [0, 1]")
        check_positive_int("monitored_population", monitored_population)
        self.monitored_population = int(monitored_population)
        self.quality = qualities.copy()
        self.aware_count = np.zeros_like(self.quality)
        self.created_at = np.full_like(self.quality, float(created_at))
        self.page_ids = np.tile(np.arange(self.n, dtype=np.int64), (self.replicates, 1))
        self._next_page_id = np.full(self.replicates, self.n, dtype=np.int64)

    # --- Size and views ----------------------------------------------------

    @property
    def replicates(self) -> int:
        """Number of replicate communities ``R``."""
        return int(self.quality.shape[0])

    @property
    def n(self) -> int:
        """Number of page slots per community."""
        return int(self.quality.shape[1])

    @property
    def awareness(self) -> np.ndarray:
        """Awareness matrix ``A(p, t)`` in ``[0, 1]``."""
        return self.aware_count / self.monitored_population

    @property
    def popularity(self) -> np.ndarray:
        """Popularity matrix ``P(p, t) = A * Q``."""
        return self.awareness * self.quality

    def ages(self, now: float) -> np.ndarray:
        """Ages (days) of all page slots at time ``now``."""
        return np.maximum(0.0, now - self.created_at)

    def row_pool(self, row: int) -> PagePool:
        """A :class:`PagePool` sharing replicate ``row``'s state (views).

        Used by the fallback paths (custom lifecycles) so single-community
        code can mutate one replicate in place.  Page-id allocation through
        the view is written back to the batch counter.
        """
        pool = PagePool.__new__(PagePool)
        pool.monitored_population = self.monitored_population
        pool.quality = self.quality[row]
        pool.aware_count = self.aware_count[row]
        pool.created_at = self.created_at[row]
        pool.page_ids = self.page_ids[row]
        pool._next_page_id = int(self._next_page_id[row])
        return pool

    def sync_row_pool(self, row: int, pool: PagePool) -> None:
        """Write a row view's page-id counter back after mutation."""
        self._next_page_id[row] = pool._next_page_id

    # --- Mutation ----------------------------------------------------------

    def add_awareness_bulk(self, new_users: np.ndarray) -> None:
        """Increase awareness for all replicates at once, clipped to ``m``."""
        np.minimum(
            self.monitored_population,
            self.aware_count + np.asarray(new_users, dtype=float),
            out=self.aware_count,
        )

    def replace_row_pages(self, row: int, indices: np.ndarray, now: float) -> np.ndarray:
        """Retire/replace pages of one replicate, as ``PagePool.replace_pages``."""
        indices = np.asarray(indices, dtype=int)
        if indices.size == 0:
            return indices
        self.aware_count[row, indices] = 0.0
        self.created_at[row, indices] = float(now)
        start = self._next_page_id[row]
        self.page_ids[row, indices] = np.arange(
            start, start + indices.size, dtype=np.int64
        )
        self._next_page_id[row] += indices.size
        return indices

    @classmethod
    def from_config(
        cls, config, rngs: Sequence[np.random.Generator]
    ) -> "BatchPagePool":
        """Build a pool of ``len(rngs)`` replicates from a community config.

        Each replicate's quality vector is drawn from its own generator, in
        the same way :meth:`PagePool.from_config` would with that generator,
        so the replicate-for-replicate parity with sequential runs starts at
        initialization.
        """
        qualities = np.asarray(
            [config.sample_qualities(as_rng(rng)) for rng in rngs], dtype=float
        )
        return cls(qualities, config.n_monitored_users)


def awareness_gain_batch(
    aware_count: np.ndarray,
    monitored_population: int,
    monitored_visits: np.ndarray,
    mode: str = "fluid",
    rngs: Sequence[np.random.Generator] = (),
) -> np.ndarray:
    """Batched :func:`awareness_gain` over ``(R, n)`` matrices.

    Row ``r`` equals ``awareness_gain(aware_count[r], m, visits[r], mode,
    rngs[r])`` bit for bit: the fluid expectation uses the same elementwise
    expression, and the stochastic branch draws each row's binomials from
    that row's generator over the same index set.
    """
    aware_count = np.asarray(aware_count, dtype=float)
    monitored_visits = np.asarray(monitored_visits, dtype=float)
    m = monitored_population
    unaware = m - aware_count
    p_new = (1.0 - 1.0 / m) ** monitored_visits
    np.subtract(1.0, p_new, out=p_new)
    if mode == "fluid":
        np.multiply(unaware, p_new, out=p_new)
        return p_new
    gained = np.zeros_like(aware_count)
    visited = monitored_visits > 0
    candidates = visited & (unaware > 0)
    for row in range(aware_count.shape[0]):
        if not np.any(visited[row]):
            continue
        idx = np.flatnonzero(candidates[row])
        if idx.size:
            gained[row, idx] = as_rng(rngs[row]).binomial(
                unaware[row, idx].astype(int), p_new[row, idx]
            )
    return gained


def awareness_gain(
    aware_count: np.ndarray,
    monitored_population: int,
    monitored_visits: np.ndarray,
    mode: str = "fluid",
    rng: RandomSource = None,
) -> np.ndarray:
    """Newly-aware monitored users per page after one batch of visits.

    A page receiving ``v`` monitored visits converts each of its unaware
    monitored users independently with probability ``1 - (1 - 1/m)**v`` —
    the chance that user appeared among the batch's visitors.  ``fluid``
    returns the expectation, ``stochastic`` a binomial sample.  Both the
    day-stepped :class:`~repro.simulation.engine.Simulator` and the online
    serving state funnel their awareness updates through this function so
    the two paths stay in exact agreement.
    """
    aware_count = np.asarray(aware_count, dtype=float)
    monitored_visits = np.asarray(monitored_visits, dtype=float)
    m = monitored_population
    visited = monitored_visits > 0
    if not np.any(visited):
        return np.zeros_like(aware_count)
    unaware = m - aware_count
    p_new = 1.0 - (1.0 - 1.0 / m) ** monitored_visits
    if mode == "fluid":
        return unaware * p_new
    gained = np.zeros(aware_count.size)
    idx = np.flatnonzero(visited & (unaware > 0))
    if idx.size:
        gained[idx] = as_rng(rng).binomial(unaware[idx].astype(int), p_new[idx])
    return gained


__all__ = [
    "Page",
    "PagePool",
    "BatchPagePool",
    "awareness_gain",
    "awareness_gain_batch",
]
