"""Page birth/death processes.

The paper models page retirement as a Poisson process with rate ``lambda``
per page, so the expected lifetime is ``l = 1 / lambda``; a retired page is
immediately replaced by a fresh page of the same quality with zero awareness,
keeping both the community size and the quality distribution stationary
(Section 5.1).  The live study instead used fixed 30-day lifetimes, so a
fixed-lifetime process is provided as well.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.community.page import BatchPagePool, PagePool
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive


class Lifecycle(abc.ABC):
    """Abstract page replacement process applied once per simulated day."""

    @abc.abstractmethod
    def step(self, pool: PagePool, now: float, rng: RandomSource = None) -> np.ndarray:
        """Retire/replace pages for one time step; return indices replaced."""

    def step_batch(
        self,
        pool: BatchPagePool,
        now: float,
        rngs: Sequence[np.random.Generator],
    ) -> List[np.ndarray]:
        """Apply one step to every replicate of a batch pool.

        Row ``r`` must behave exactly like ``self.step(row_pool, now,
        rngs[r])``, drawing from ``rngs[r]`` identically.  The default
        routes each row through :meth:`step` on a row view so custom
        lifecycles stay compatible; built-in processes vectorize the
        per-page draws/comparisons across rows.
        """
        replaced = []
        for row in range(pool.replicates):
            row_pool = pool.row_pool(row)
            replaced.append(self.step(row_pool, now, rngs[row]))
            pool.sync_row_pool(row, row_pool)
        return replaced

    @abc.abstractmethod
    def expected_lifetime(self) -> float:
        """Expected page lifetime in days."""


@dataclass
class PoissonLifecycle(Lifecycle):
    """Memoryless retirement: each page dies each day with probability ``1 - exp(-lambda)``.

    ``rate_per_day`` is the paper's ``lambda``.  Using the exact exponential
    survival probability (rather than ``lambda`` itself) keeps the process
    well defined even for lifetimes shorter than one day.
    """

    rate_per_day: float

    def __post_init__(self) -> None:
        check_positive("rate_per_day", self.rate_per_day)

    def step(self, pool: PagePool, now: float, rng: RandomSource = None) -> np.ndarray:
        generator = as_rng(rng)
        death_probability = 1.0 - np.exp(-self.rate_per_day)
        dying = np.flatnonzero(generator.random(pool.n) < death_probability)
        return pool.replace_pages(dying, now)

    def step_batch(
        self,
        pool: BatchPagePool,
        now: float,
        rngs: Sequence[np.random.Generator],
    ) -> List[np.ndarray]:
        death_probability = 1.0 - np.exp(-self.rate_per_day)
        draws = np.empty((pool.replicates, pool.n), dtype=float)
        for row in range(pool.replicates):
            as_rng(rngs[row]).random(out=draws[row])
        dying = draws < death_probability
        return [
            pool.replace_row_pages(row, np.flatnonzero(dying[row]), now)
            for row in range(pool.replicates)
        ]

    def expected_lifetime(self) -> float:
        return 1.0 / self.rate_per_day

    @classmethod
    def from_lifetime(cls, expected_lifetime_days: float) -> "PoissonLifecycle":
        """Build the process from the expected lifetime ``l`` (days)."""
        check_positive("expected_lifetime_days", expected_lifetime_days)
        return cls(rate_per_day=1.0 / expected_lifetime_days)


@dataclass
class FixedLifetimeLifecycle(Lifecycle):
    """Deterministic lifetimes, as used for the live-study item rotation.

    Each page lives exactly ``lifetime_days`` days from its creation time and
    is then replaced.  Initial pages can be given staggered ages elsewhere to
    emulate the live study's uniformly random initial lifetimes.
    """

    lifetime_days: float

    def __post_init__(self) -> None:
        check_positive("lifetime_days", self.lifetime_days)

    def step(self, pool: PagePool, now: float, rng: RandomSource = None) -> np.ndarray:
        expired = np.flatnonzero(pool.ages(now) >= self.lifetime_days)
        return pool.replace_pages(expired, now)

    def step_batch(
        self,
        pool: BatchPagePool,
        now: float,
        rngs: Sequence[np.random.Generator],
    ) -> List[np.ndarray]:
        expired = pool.ages(now) >= self.lifetime_days
        return [
            pool.replace_row_pages(row, np.flatnonzero(expired[row]), now)
            for row in range(pool.replicates)
        ]

    def expected_lifetime(self) -> float:
        return self.lifetime_days


__all__ = ["Lifecycle", "PoissonLifecycle", "FixedLifetimeLifecycle"]
