"""Stationary page quality distributions.

The paper has no direct measurement of intrinsic quality and approximates the
quality distribution by the power law reported for PageRank in Cho & Roy
(WWW 2004), with the quality of the best page set to 0.4 (the fraction of
Internet users frequenting the most popular portal).  The default here,
:class:`PowerLawQualityDistribution`, realizes exactly that construction:
quality values are a ranked power law ``q_i = q_max * i**(-exponent)`` over
the ``n`` pages of the community.  Alternative distributions are provided for
sensitivity analysis and for the live-study item pool.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive, check_positive_int, check_probability


class QualityDistribution(abc.ABC):
    """Abstract stationary distribution of page quality values in ``[0, 1]``.

    Implementations must be deterministic given the RNG state so that paired
    experiments (e.g. with and without rank promotion) can be run on exactly
    the same quality pool.
    """

    @abc.abstractmethod
    def sample(self, n: int, rng: RandomSource = None) -> np.ndarray:
        """Return an array of ``n`` quality values in ``[0, 1]``."""

    def max_quality(self) -> float:
        """Upper bound of the support; used for TBP probes and normalization."""
        return 1.0

    def describe(self) -> str:
        """Short human-readable description used in experiment reports."""
        return type(self).__name__


@dataclass(frozen=True)
class PowerLawQualityDistribution(QualityDistribution):
    """Ranked power law: the ``i``-th best of ``n`` pages has ``q_max * i**(-exponent)``.

    This mirrors the paper's use of the observed PageRank power law as the
    best available surrogate for the Web quality distribution, anchored so
    the top page has quality ``q_max`` (0.4 by default).  ``shuffle`` controls
    whether the returned array is permuted (pages are created in arbitrary
    order) or sorted descending.
    """

    q_max: float = 0.4
    exponent: float = 1.0
    q_min: float = 1e-4
    shuffle: bool = True

    def __post_init__(self) -> None:
        check_probability("q_max", self.q_max)
        check_positive("exponent", self.exponent)
        check_probability("q_min", self.q_min)
        if self.q_min > self.q_max:
            raise ValueError("q_min must not exceed q_max")

    def sample(self, n: int, rng: RandomSource = None) -> np.ndarray:
        check_positive_int("n", n)
        generator = as_rng(rng)
        ranks = np.arange(1, n + 1, dtype=float)
        values = self.q_max * ranks ** (-self.exponent)
        values = np.clip(values, self.q_min, self.q_max)
        if self.shuffle:
            generator.shuffle(values)
        return values

    def max_quality(self) -> float:
        return self.q_max

    def describe(self) -> str:
        return "PowerLaw(q_max=%.3f, exponent=%.2f)" % (self.q_max, self.exponent)


@dataclass(frozen=True)
class ParetoQualityDistribution(QualityDistribution):
    """I.i.d. Pareto-tailed samples rescaled into ``[q_min, q_max]``.

    Unlike the ranked power law, the realized maximum fluctuates between
    draws; useful for robustness checks where the exact quality pool should
    not be deterministic.
    """

    q_max: float = 0.4
    alpha: float = 2.1
    q_min: float = 1e-4

    def __post_init__(self) -> None:
        check_probability("q_max", self.q_max)
        check_positive("alpha", self.alpha)

    def sample(self, n: int, rng: RandomSource = None) -> np.ndarray:
        check_positive_int("n", n)
        generator = as_rng(rng)
        raw = generator.pareto(self.alpha, size=n) + 1.0
        scaled = self.q_max * raw / raw.max()
        return np.clip(scaled, self.q_min, self.q_max)

    def max_quality(self) -> float:
        return self.q_max

    def describe(self) -> str:
        return "Pareto(q_max=%.3f, alpha=%.2f)" % (self.q_max, self.alpha)


@dataclass(frozen=True)
class UniformQualityDistribution(QualityDistribution):
    """Uniform quality in ``[low, high]`` — a deliberately non-skewed control."""

    low: float = 0.0
    high: float = 0.4

    def __post_init__(self) -> None:
        check_probability("low", self.low)
        check_probability("high", self.high)
        if self.low > self.high:
            raise ValueError("low must not exceed high")

    def sample(self, n: int, rng: RandomSource = None) -> np.ndarray:
        check_positive_int("n", n)
        return as_rng(rng).uniform(self.low, self.high, size=n)

    def max_quality(self) -> float:
        return self.high

    def describe(self) -> str:
        return "Uniform(%.3f, %.3f)" % (self.low, self.high)


@dataclass(frozen=True)
class LogNormalQualityDistribution(QualityDistribution):
    """Log-normal quality clipped to ``[0, q_max]``.

    Log-normal popularity-like distributions are a common alternative to
    power laws in the web-measurement literature; included for ablations.
    """

    q_max: float = 0.4
    mu: float = -3.0
    sigma: float = 1.0

    def sample(self, n: int, rng: RandomSource = None) -> np.ndarray:
        check_positive_int("n", n)
        raw = as_rng(rng).lognormal(self.mu, self.sigma, size=n)
        return np.clip(raw, 0.0, self.q_max)

    def max_quality(self) -> float:
        return self.q_max

    def describe(self) -> str:
        return "LogNormal(mu=%.2f, sigma=%.2f, q_max=%.3f)" % (self.mu, self.sigma, self.q_max)


@dataclass(frozen=True)
class PointMassQualityDistribution(QualityDistribution):
    """Every page has the same quality; handy for analytic sanity checks."""

    quality: float = 0.4

    def __post_init__(self) -> None:
        check_probability("quality", self.quality)

    def sample(self, n: int, rng: RandomSource = None) -> np.ndarray:
        check_positive_int("n", n)
        return np.full(n, self.quality, dtype=float)

    def max_quality(self) -> float:
        return self.quality

    def describe(self) -> str:
        return "PointMass(%.3f)" % self.quality


def default_web_quality(n: int, rng: RandomSource = None) -> np.ndarray:
    """Sample the paper's default quality pool for an ``n``-page community."""
    return PowerLawQualityDistribution().sample(n, rng)


__all__ = [
    "QualityDistribution",
    "PowerLawQualityDistribution",
    "ParetoQualityDistribution",
    "UniformQualityDistribution",
    "LogNormalQualityDistribution",
    "PointMassQualityDistribution",
    "default_web_quality",
]
