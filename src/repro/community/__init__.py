"""Web community model: pages, users, quality distributions and page lifecycle.

A *community* in the paper is the set of pages :math:`P` and users :math:`U`
interested in a single topic.  The search engine observes popularity only
through a monitored subset :math:`U_m` of the users.  This package provides
the configuration object carrying the community characteristics used
throughout the paper (Table 1), the page state used by the simulator, the
stationary quality distributions, and the Poisson birth/death lifecycle.
"""

from repro.community.config import CommunityConfig, DEFAULT_COMMUNITY
from repro.community.page import BatchPagePool, Page, PagePool
from repro.community.quality import (
    ParetoQualityDistribution,
    PointMassQualityDistribution,
    PowerLawQualityDistribution,
    QualityDistribution,
    UniformQualityDistribution,
    LogNormalQualityDistribution,
    default_web_quality,
)
from repro.community.lifecycle import PoissonLifecycle, FixedLifetimeLifecycle, Lifecycle

__all__ = [
    "CommunityConfig",
    "DEFAULT_COMMUNITY",
    "Page",
    "PagePool",
    "BatchPagePool",
    "QualityDistribution",
    "PowerLawQualityDistribution",
    "ParetoQualityDistribution",
    "UniformQualityDistribution",
    "LogNormalQualityDistribution",
    "PointMassQualityDistribution",
    "default_web_quality",
    "Lifecycle",
    "PoissonLifecycle",
    "FixedLifetimeLifecycle",
]
