"""Community configuration: the high-level characteristics of Table 1.

The default values reproduce the paper's default Web community (Section 6.1):
``n = 10 000`` pages, ``u = 1 000`` users making ``v_u = 1 000`` visits per
day, ``m = 100`` monitored users contributing ``v = 100`` monitored visits
per day, an expected page lifetime of 1.5 years, and a PageRank-shaped
power-law quality distribution whose best page has quality 0.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.community.quality import PowerLawQualityDistribution, QualityDistribution
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
)

DAYS_PER_YEAR = 365.0


@dataclass(frozen=True)
class CommunityConfig:
    """High-level characteristics of a Web community.

    Attributes mirror the paper's notation:

    * ``n_pages`` — ``n``, the number of pages in the community.
    * ``n_users`` — ``u``, the number of users interested in the topic.
    * ``monitored_fraction`` — ``m / u``, the fraction of users whose visits
      the search engine can observe when measuring popularity.
    * ``visits_per_user_per_day`` — ``v_u / u``, each user's daily visit rate.
    * ``expected_lifetime_days`` — ``l``, the expected page lifetime (the
      Poisson retirement rate is ``lambda = 1 / l``).
    * ``quality_distribution`` — the stationary distribution of page quality.
    """

    n_pages: int = 10_000
    n_users: int = 1_000
    monitored_fraction: float = 0.10
    visits_per_user_per_day: float = 1.0
    expected_lifetime_days: float = 1.5 * DAYS_PER_YEAR
    quality_distribution: QualityDistribution = field(
        default_factory=PowerLawQualityDistribution
    )

    def __post_init__(self) -> None:
        check_positive_int("n_pages", self.n_pages)
        check_positive_int("n_users", self.n_users)
        check_fraction("monitored_fraction", self.monitored_fraction)
        check_positive("visits_per_user_per_day", self.visits_per_user_per_day)
        check_positive("expected_lifetime_days", self.expected_lifetime_days)
        if int(round(self.n_users * self.monitored_fraction)) < 1:
            raise ValueError(
                "monitored_fraction too small: no monitored users for u=%d" % self.n_users
            )

    # --- Derived quantities (paper notation in parentheses) ---------------

    @property
    def n_monitored_users(self) -> int:
        """Number of monitored users (``m``), at least one by construction."""
        return int(round(self.n_users * self.monitored_fraction))

    @property
    def total_visit_rate(self) -> float:
        """Total user visits per day (``v_u``)."""
        return self.n_users * self.visits_per_user_per_day

    @property
    def monitored_visit_rate(self) -> float:
        """Visits per day by monitored users (``v = v_u * m / u``)."""
        return self.total_visit_rate * self.n_monitored_users / self.n_users

    @property
    def death_rate(self) -> float:
        """Poisson page retirement rate per day (``lambda = 1 / l``)."""
        return 1.0 / self.expected_lifetime_days

    @property
    def expected_lifetime_years(self) -> float:
        """Expected page lifetime expressed in years."""
        return self.expected_lifetime_days / DAYS_PER_YEAR

    # --- Convenience constructors and transforms --------------------------

    def with_pages(self, n_pages: int) -> "CommunityConfig":
        """Return a copy with a different community size."""
        return replace(self, n_pages=n_pages)

    def with_users(self, n_users: int) -> "CommunityConfig":
        """Return a copy with a different user population size."""
        return replace(self, n_users=n_users)

    def with_lifetime_years(self, years: float) -> "CommunityConfig":
        """Return a copy with a different expected page lifetime."""
        return replace(self, expected_lifetime_days=years * DAYS_PER_YEAR)

    def with_total_visit_rate(self, visits_per_day: float) -> "CommunityConfig":
        """Return a copy in which the whole population makes ``visits_per_day`` visits."""
        return replace(
            self, visits_per_user_per_day=visits_per_day / self.n_users
        )

    def with_quality(self, distribution: QualityDistribution) -> "CommunityConfig":
        """Return a copy with a different quality distribution."""
        return replace(self, quality_distribution=distribution)

    def scaled(self, n_pages: int) -> "CommunityConfig":
        """Return a copy scaled to ``n_pages`` holding the paper's ratios fixed.

        Used by the Figure 7(a) sweep: ``u / n`` and ``m / u`` and per-user
        visit rate stay at their configured values while ``n`` changes.
        """
        ratio_users = self.n_users / self.n_pages
        return replace(
            self,
            n_pages=n_pages,
            n_users=max(1, int(round(n_pages * ratio_users))),
        )

    def sample_qualities(self, rng: RandomSource = None) -> np.ndarray:
        """Draw the stationary quality pool for this community."""
        return self.quality_distribution.sample(self.n_pages, as_rng(rng))

    def describe(self) -> str:
        """One-line summary used by experiment reports."""
        return (
            "Community(n=%d, u=%d, m=%d, v_u=%.0f/day, v=%.0f/day, l=%.2fy, quality=%s)"
            % (
                self.n_pages,
                self.n_users,
                self.n_monitored_users,
                self.total_visit_rate,
                self.monitored_visit_rate,
                self.expected_lifetime_years,
                self.quality_distribution.describe(),
            )
        )


#: The paper's default Web community (Section 6.1).
DEFAULT_COMMUNITY = CommunityConfig()

__all__ = ["CommunityConfig", "DEFAULT_COMMUNITY", "DAYS_PER_YEAR"]
