"""Reproduction of "Shuffling a Stacked Deck: The Case for Partially
Randomized Ranking of Search Engine Results" (Pandey, Roy, Olston, Cho,
Chakrabarti — VLDB 2005).

The package implements the paper's randomized rank promotion scheme, the Web
community popularity-evolution model it is evaluated on, the analytical
steady-state model (Theorem 1 plus the fixed-point visit-rate solver), a
discrete-time simulator, the live-study sandbox of Appendix A, and one
experiment driver per figure of the paper.

Quickstart::

    from repro import (
        CommunityConfig, RankPromotionPolicy, SimulationConfig, measure_qpc,
    )

    community = CommunityConfig(n_pages=2_000, n_users=200)
    policy = RankPromotionPolicy(rule="selective", k=1, r=0.1)
    print(measure_qpc(community, policy, SimulationConfig(warmup_days=200,
                                                          measure_days=200,
                                                          mode="fluid")))

Serving-path quickstart — answer a stream of queries online instead of
re-ranking the whole community per simulated day.  The serving tier is
built from one frozen, JSON-round-trippable :class:`ServingConfig`::

    from repro import (
        ServingConfig, StreamingWorkload, WorkloadConfig,
        build_router, run_stream,
    )

    config = ServingConfig(
        n_pages=20_000, n_shards=4,
        cache_capacity=64, staleness_budget=4, seed=0,
    )
    router = build_router(config)
    workload = StreamingWorkload(WorkloadConfig(k=10, feedback_rate=0.2), seed=1)
    stats = run_stream(router, n_queries=10_000, workload=workload)
    print(stats.queries_per_second, stats.extra["cache_hit_rate"])

(The historical ``ShardedRouter.from_community(...)`` classmethod remains
as a thin shim over the same construction path.)  With
``workers``/``tenants``/``clients`` set, ``build_pool(config)`` hosts many
tenant communities behind a process-per-shard pool whose popularity
arrays live in shared memory, so real concurrent writers race feedback
commits through the OCC path.  Or from the terminal::

    python -m repro serve-bench --pages 200000 --queries 5000 --shards 8
    python -m repro serve-bench --tenants 8 --clients 4 --workers 4
"""

from repro.community import (
    CommunityConfig,
    DEFAULT_COMMUNITY,
    Page,
    PagePool,
    PowerLawQualityDistribution,
    QualityDistribution,
)
from repro.core import (
    PopularityRanker,
    RandomizedPromotionRanker,
    RankingContext,
    RankPromotionPolicy,
    RECOMMENDED_POLICY,
    SelectivePromotionRule,
    UniformPromotionRule,
    randomized_merge,
)
from repro.analysis import RankingSpec, SolvedModel, SteadyStateSolver, solve_model
from repro.metrics import ideal_qpc, normalized_qpc, time_to_become_popular
from repro.simulation import (
    BatchSimulator,
    SimulationConfig,
    SimulationResult,
    Simulator,
    compare_policies,
    measure_qpc,
    measure_tbp,
    popularity_trajectory,
    run_batch,
)
from repro.serving import (
    PopularityState,
    RecordedTrace,
    ResultPageCache,
    ServingConfig,
    ServingEngine,
    ServingPool,
    ServingStats,
    ServingSweep,
    ShardedRouter,
    SharedPopularityState,
    StreamingWorkload,
    SweepResult,
    SweepVariant,
    WorkloadConfig,
    build_pool,
    build_router,
    record_trace,
    run_pool_benchmark,
    run_serving_benchmark,
    run_stream,
    run_sweep,
    run_sweep_benchmark,
    variant_grid,
)
from repro.visits import MixedSurfingModel, PowerLawAttention

__version__ = "1.3.0"

__all__ = [
    "CommunityConfig",
    "DEFAULT_COMMUNITY",
    "Page",
    "PagePool",
    "QualityDistribution",
    "PowerLawQualityDistribution",
    "RankPromotionPolicy",
    "RECOMMENDED_POLICY",
    "PopularityRanker",
    "RandomizedPromotionRanker",
    "SelectivePromotionRule",
    "UniformPromotionRule",
    "RankingContext",
    "randomized_merge",
    "RankingSpec",
    "SteadyStateSolver",
    "SolvedModel",
    "solve_model",
    "ideal_qpc",
    "normalized_qpc",
    "time_to_become_popular",
    "Simulator",
    "BatchSimulator",
    "run_batch",
    "SimulationConfig",
    "SimulationResult",
    "measure_qpc",
    "measure_tbp",
    "popularity_trajectory",
    "compare_policies",
    "PopularityState",
    "SharedPopularityState",
    "ServingEngine",
    "ResultPageCache",
    "ShardedRouter",
    "ServingConfig",
    "build_router",
    "build_pool",
    "ServingPool",
    "StreamingWorkload",
    "WorkloadConfig",
    "ServingStats",
    "run_stream",
    "run_serving_benchmark",
    "run_pool_benchmark",
    "RecordedTrace",
    "record_trace",
    "ServingSweep",
    "SweepResult",
    "SweepVariant",
    "variant_grid",
    "run_sweep",
    "run_sweep_benchmark",
    "MixedSurfingModel",
    "PowerLawAttention",
    "__version__",
]
