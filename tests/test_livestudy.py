"""Tests for the live-study replication (Appendix A / Figure 1)."""

import numpy as np
import pytest

from repro.livestudy.experiment import (
    GroupOutcome,
    LiveStudyConfig,
    LiveStudyExperiment,
    LiveStudyResult,
)
from repro.livestudy.items import ItemPool, funniness_distribution

FAST_CONFIG = LiveStudyConfig(
    n_items=300,
    n_users=300,
    study_days=30,
    measure_last_days=10,
    item_lifetime_days=20.0,
)


class TestFunninessDistribution:
    def test_shape_and_bounds(self):
        values = funniness_distribution(500, rng=0)
        assert values.shape == (500,)
        assert values.min() >= 0.0 and values.max() <= 1.0

    def test_head_is_funny_tail_is_not(self):
        values = np.sort(funniness_distribution(1000, rng=0))[::-1]
        assert values[0] > 0.5
        assert np.median(values) < 0.1


class TestItemPool:
    def test_initial_state(self):
        pool = ItemPool(np.array([0.5, 0.2]))
        assert pool.zero_awareness_mask().all()
        assert pool.total_votes.sum() == 0.0

    def test_record_visit_counts_votes(self):
        pool = ItemPool(np.array([1.0]))
        rng = np.random.default_rng(0)
        assert pool.record_visit(0, 1.0, rng) is True
        assert pool.funny_votes[0] == 1.0
        assert pool.total_votes[0] == 1.0
        assert not pool.zero_awareness_mask()[0]

    def test_unfunny_item_gets_no_funny_votes(self):
        pool = ItemPool(np.array([0.0]))
        rng = np.random.default_rng(0)
        for _ in range(20):
            pool.record_visit(0, 1.0, rng)
        assert pool.funny_votes[0] == 0.0
        assert pool.total_votes[0] == 20.0

    def test_rotation_resets_votes(self):
        pool = ItemPool(np.array([0.5, 0.5]), lifetime_days=10.0)
        rng = np.random.default_rng(0)
        pool.record_visit(0, 1.0, rng)
        expired = pool.rotate(now=10.0)
        assert expired.size == 2
        assert pool.total_votes.sum() == 0.0
        assert pool.zero_awareness_mask().all()

    def test_stagger_initial_ages(self):
        pool = ItemPool(np.full(100, 0.3), lifetime_days=30.0)
        pool.stagger_initial_ages(rng=0)
        assert pool.created_at.min() >= -30.0
        assert pool.created_at.max() <= 0.0
        assert len(np.unique(pool.created_at)) > 10

    def test_popularity_order_puts_most_voted_first(self):
        pool = ItemPool(np.array([0.2, 0.9, 0.5]))
        pool.funny_votes = np.array([1.0, 5.0, 3.0])
        order = pool.popularity_order(np.random.default_rng(0))
        assert order.tolist()[0] == 1

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ItemPool(np.array([]))
        with pytest.raises(ValueError):
            ItemPool(np.array([0.5]), lifetime_days=0.0)


class TestLiveStudyConfig:
    def test_defaults_match_paper(self):
        config = LiveStudyConfig()
        assert config.n_items == 1000
        assert config.n_users == 962
        assert config.study_days == 45
        assert config.measure_last_days == 15
        assert config.promotion_start_rank == 21

    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            LiveStudyConfig(study_days=10, measure_last_days=20)


class TestLiveStudyExperiment:
    def test_result_structure(self):
        result = LiveStudyExperiment(FAST_CONFIG, seed=0).run()
        assert isinstance(result, LiveStudyResult)
        assert result.control.total_votes > 0
        assert result.treatment.total_votes > 0
        assert 0.0 <= result.control.funny_ratio <= 1.0
        assert 0.0 <= result.treatment.funny_ratio <= 1.0

    def test_reproducible(self):
        a = LiveStudyExperiment(FAST_CONFIG, seed=5).run()
        b = LiveStudyExperiment(FAST_CONFIG, seed=5).run()
        assert a.control.funny_ratio == pytest.approx(b.control.funny_ratio)
        assert a.treatment.funny_ratio == pytest.approx(b.treatment.funny_ratio)

    def test_promotion_improves_funny_ratio_on_average(self):
        # Individual runs are noisy; average a few seeds and require the
        # treatment group to come out ahead, as in the paper's Figure 1.
        control, treatment = [], []
        for seed in range(5):
            result = LiveStudyExperiment(FAST_CONFIG, seed=seed).run()
            control.append(result.control.funny_ratio)
            treatment.append(result.treatment.funny_ratio)
        assert np.mean(treatment) > np.mean(control)

    def test_summary_and_improvement(self):
        result = LiveStudyResult(
            control=GroupOutcome(funny_votes=10, total_votes=100),
            treatment=GroupOutcome(funny_votes=16, total_votes=100),
        )
        assert result.improvement == pytest.approx(0.6)
        assert "60" in result.summary()

    def test_zero_control_ratio_improvement(self):
        result = LiveStudyResult(
            control=GroupOutcome(funny_votes=0, total_votes=10),
            treatment=GroupOutcome(funny_votes=5, total_votes=10),
        )
        assert result.improvement == float("inf")
