"""Tests for the backend-dispatched kernel layer (``repro.core.kernels``).

Three concerns live here:

* **dispatch** — registry resolution (explicit name, environment variable,
  process default), the hard error on unknown explicit names, and the
  import-guarded degradation: a requested-but-unavailable backend must fall
  back to numpy *silently* except for exactly one ``RuntimeWarning``;
* **numpy reference semantics** — the carved-out kernels must equal the
  pre-refactor inline passes (the day tail against the hand-chained
  reference ops, the merge repair against an independent ``lexsort``
  oracle, the grouped lane repair against the single-lane core), plus a
  structural guarantee that the sweep's hot path actually routes repairs
  through one grouped ``lane_repair`` call rather than lane by lane;
* **cross-backend bit parity** — when numba is installed, a Hypothesis
  property asserts that the numpy and numba backends produce bit-identical
  ``(R, n)`` day steps (fluid and stochastic) and bit-identical sweep rows
  at equal seeds, and per-kernel equality on random inputs.  Without
  numba these tests skip; CI runs them in the numba matrix leg.
"""

import importlib.util

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.community import CommunityConfig
from repro.core import kernels
from repro.core.kernels import get_backend, set_backend, use_backend
from repro.core.kernels.numpy_backend import BACKEND as NUMPY_BACKEND
from repro.core.kernels.numpy_backend import merge_repair
from repro.core.policy import RankPromotionPolicy
from repro.serving.state import PopularityState
from repro.serving.sweep import ServingSweep, SweepVariant
from repro.simulation import BatchSimulator, SimulationConfig
from repro.simulation.batch import run_batch
from repro.utils.rng import spawn_rngs
from repro.visits.attention import PowerLawAttention
from repro.visits.surfing import MixedSurfingModel

HAVE_NUMBA = importlib.util.find_spec("numba") is not None

needs_numba = pytest.mark.skipif(
    not HAVE_NUMBA, reason="numba not installed (optional backend)"
)


@pytest.fixture(autouse=True)
def clean_dispatch(monkeypatch):
    """Isolate every test from ambient backend selection state."""
    monkeypatch.delenv(kernels.ENV_VAR, raising=False)
    kernels._reset_dispatch_state()
    yield
    kernels._reset_dispatch_state()


def _kernel_community() -> CommunityConfig:
    # A plain helper (not a fixture): the Hypothesis properties below may
    # not mix @given with function-scoped fixtures.
    return CommunityConfig(
        n_pages=120,
        n_users=40,
        monitored_fraction=0.25,
        visits_per_user_per_day=1.0,
        expected_lifetime_days=30.0,
    )


@pytest.fixture
def kernel_community():
    return _kernel_community()


# ---------------------------------------------------------------- dispatch


class TestDispatch:
    def test_default_backend_is_numpy(self):
        assert get_backend().name == "numpy"
        assert get_backend("numpy") is NUMPY_BACKEND

    def test_unknown_explicit_name_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("cupy")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        assert get_backend().name == "numpy"

    def test_env_var_unknown_name_degrades_with_single_warning(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "banana")
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert get_backend().name == "numpy"
        # Second resolution stays silent: the warning fires once per name.
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert get_backend().name == "numpy"

    def test_missing_numba_degrades_silently_with_single_warning(self, monkeypatch):
        """The satellite contract: no numba => numpy, one warning, no crash."""
        monkeypatch.setitem(
            kernels._BACKEND_MODULES, "numba", ".does_not_exist"
        )
        monkeypatch.delitem(kernels._instances, "numba", raising=False)
        with pytest.warns(RuntimeWarning, match="unavailable"):
            backend = get_backend("numba")
        assert backend.name == "numpy"
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert get_backend("numba").name == "numpy"
            # set_backend goes through the same fallback and pins numpy.
            assert set_backend("numba").name == "numpy"
            assert get_backend().name == "numpy"

    def test_set_and_use_backend_restore(self):
        assert set_backend("numpy").name == "numpy"
        with use_backend("numpy") as active:
            assert active is NUMPY_BACKEND
        assert get_backend().name == "numpy"

    def test_available_backends_always_lists_numpy(self):
        names = kernels.available_backends()
        assert names[0] == "numpy"
        assert ("numba" in names) == HAVE_NUMBA


# ------------------------------------------------- numpy reference parity


def _reference_day_tail(rankings, attention, surfing, popularity, rate, mode,
                        rngs, aware, m):
    """The pre-refactor inline day tail, kept verbatim as the test oracle."""
    from repro.community.page import awareness_gain_batch
    from repro.visits.allocation import (
        allocate_monitored_visits_batch,
        rank_visit_shares_batch,
    )

    shares = rank_visit_shares_batch(rankings, attention, surfing, popularity)
    monitored = allocate_monitored_visits_batch(shares, rate, mode, rngs)
    gained = awareness_gain_batch(aware, m, monitored, mode=mode, rngs=rngs)
    np.minimum(m, aware + np.asarray(gained, dtype=float), out=aware)
    return shares


class TestNumpyKernelSemantics:
    @pytest.mark.parametrize("mode", ["fluid", "stochastic"])
    @pytest.mark.parametrize("surf_fraction", [0.0, 0.3])
    def test_day_tail_matches_inline_reference(self, mode, surf_fraction):
        rng = np.random.default_rng(5)
        R, n = 4, 60
        quality = rng.random((R, n))
        aware_a = np.floor(rng.random((R, n)) * 10)
        aware_b = aware_a.copy()
        m = 12
        popularity = aware_a / m * quality
        rankings = np.argsort(-popularity, axis=1)
        attention = PowerLawAttention()
        surfing = MixedSurfingModel(surfing_fraction=surf_fraction)
        rngs_a = spawn_rngs(3, R)
        rngs_b = spawn_rngs(3, R)

        reference = _reference_day_tail(
            rankings, attention, surfing, popularity, 7.0, mode,
            rngs_a, aware_a, m,
        )
        surf_shares = (
            surfing.surfing_shares_batch(popularity)
            if not surfing.is_pure_search
            else None
        )
        shares = NUMPY_BACKEND.day_tail(
            rankings,
            attention.visit_shares(n),
            7.0,
            mode,
            rngs_b,
            aware_b,
            m,
            surfing_fraction=surf_fraction,
            surf_shares=surf_shares,
        )
        np.testing.assert_array_equal(shares, reference)
        np.testing.assert_array_equal(aware_b, aware_a)

    def test_feedback_flush_matches_sequential_state_update(self):
        """apply_visits_at's kernel route equals the pre-refactor arithmetic."""
        from repro.community.page import awareness_gain

        rng = np.random.default_rng(9)
        n, m = 80, 15
        quality = rng.random(n)
        aware0 = np.floor(rng.random(n) * m)

        from repro.community.page import PagePool

        pool = PagePool(quality, m)
        pool.aware_count[:] = aware0
        state = PopularityState(pool, mode="fluid")
        indices = rng.integers(0, n, size=30)
        visits = rng.random(30) * 3
        state.apply_visits_at(indices, visits)

        # Pre-refactor reference on copies.
        aware = aware0.copy()
        touched, inverse = np.unique(indices, return_inverse=True)
        summed = np.zeros(touched.size)
        np.add.at(summed, inverse, visits)
        gained = awareness_gain(aware[touched], m, summed, mode="fluid")
        aware[touched] = np.minimum(m, aware[touched] + gained)

        np.testing.assert_array_equal(state.pool.aware_count, aware)
        np.testing.assert_array_equal(
            state.popularity, aware / m * quality
        )
        assert state.version == 1
        assert set(np.flatnonzero(state._dirty_mask)) == set(touched)

    @given(seed=st.integers(0, 2**32 - 1), d=st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_merge_repair_matches_lexsort_oracle(self, seed, d):
        """Repaired orders equal an independent composite-key sort.

        The merge repair promises: keeps stay in relative order, moved
        pages re-enter *after* keeps of equal popularity, moved ties fall
        back to ascending page index.  That order is exactly a lexsort by
        ``(-popularity, is_moved, old-position-or-index)`` — an oracle
        that shares no code with the implementation.
        """
        rng = np.random.default_rng(seed)
        n = 50
        popularity = np.round(rng.random(n), 1)  # coarse grid forces ties
        tie = rng.random(n)
        order = np.lexsort((tie, -popularity))
        dirty = np.sort(rng.choice(n, size=min(d, n // 2 - 1) or 1, replace=False))
        popularity[dirty] = np.round(rng.random(dirty.size), 1)

        merged, _ = merge_repair(order, popularity, dirty)

        rank_of = np.empty(n, dtype=int)
        rank_of[order] = np.arange(n)
        is_moved = np.zeros(n, dtype=bool)
        is_moved[dirty] = True
        tiebreak = np.where(is_moved, np.arange(n), rank_of)
        oracle = np.lexsort((tiebreak, is_moved, -popularity))
        np.testing.assert_array_equal(merged, oracle)

    def test_lane_repair_matches_single_lane_core(self):
        rng = np.random.default_rng(11)
        n, lanes = 40, 5
        orders, pops, dirties = [], [], []
        for _ in range(lanes):
            pop = np.round(rng.random(n), 1)
            order = np.lexsort((rng.random(n), -pop))
            dirty = np.sort(rng.choice(n, size=6, replace=False))
            pop[dirty] = np.round(rng.random(6), 1)
            orders.append(order)
            pops.append(pop)
            dirties.append(dirty)
        repaired = get_backend().lane_repair(orders, pops, dirties)
        for lane in range(lanes):
            expected, _ = merge_repair(orders[lane], pops[lane], dirties[lane])
            np.testing.assert_array_equal(repaired[lane], expected)

    def test_sweep_routes_repairs_through_grouped_lane_repair(
        self, kernel_community, monkeypatch
    ):
        """The sweep hot path must issue grouped calls, not per-lane loops."""
        from test_sweep import make_trace

        calls = []
        original = type(NUMPY_BACKEND).lane_repair

        def spy(self, orders, popularity, dirty):
            calls.append(len(orders))
            return original(self, orders, popularity, dirty)

        monkeypatch.setattr(type(NUMPY_BACKEND), "lane_repair", spy)
        variants = [
            SweepVariant(k=8, r=0.1, cache_capacity=16, staleness_budget=0),
            SweepVariant(k=8, r=0.2, cache_capacity=16, staleness_budget=0),
            SweepVariant(k=8, r=0.3, cache_capacity=16, staleness_budget=0),
            SweepVariant(k=8, r=0.0, cache_capacity=16, staleness_budget=0),
        ]
        sweep = ServingSweep(kernel_community, variants, seed=3)
        sweep.run(make_trace(n_queries=200, flush_every=8))
        repairs = sum(
            lane.engine.repairs
            for replay in sweep._replays
            for lane in replay.lanes
        )
        assert repairs > 0, "workload produced no repairs to group"
        assert calls, "repairs bypassed the grouped lane_repair kernel"
        assert max(calls) > 1, "lane_repair was never actually grouped"
        assert sum(calls) == repairs, "some repairs ran outside the kernel"


# ------------------------------------------------ numba cross-backend parity


@needs_numba
class TestNumbaBitParity:
    @given(
        seed=st.integers(0, 2**31 - 1),
        mode=st.sampled_from(["fluid", "stochastic"]),
        replicates=st.integers(1, 4),
    )
    @settings(max_examples=10, deadline=None)
    def test_batch_day_steps_bit_identical(self, seed, mode, replicates):
        """(R, n) day steps agree bit for bit between numpy and numba."""
        kernel_community = _kernel_community()
        policy = RankPromotionPolicy("selective", 1, 0.2)
        config = SimulationConfig(
            warmup_days=2, measure_days=4, mode=mode, seed=seed
        )
        results = {}
        for name in ("numpy", "numba"):
            with use_backend(name):
                simulator = BatchSimulator(
                    kernel_community,
                    policy.build_ranker(),
                    config,
                    replicates=replicates,
                )
                shares = [simulator.step() for _ in range(4)]
                results[name] = (
                    np.asarray(shares),
                    simulator.pool.aware_count.copy(),
                    simulator.pool.page_ids.copy(),
                )
        for ours, theirs in zip(results["numpy"], results["numba"]):
            np.testing.assert_array_equal(ours, theirs)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_run_batch_results_bit_identical(self, seed):
        kernel_community = _kernel_community()
        config = SimulationConfig(warmup_days=2, measure_days=3, seed=seed)
        ranker = RankPromotionPolicy("selective", 1, 0.2).build_ranker()
        qpc = {}
        for name in ("numpy", "numba"):
            with use_backend(name):
                results = run_batch(
                    kernel_community, ranker, config, replicates=3, n_workers=1
                )
                qpc[name] = [r.qpc_absolute for r in results]
        assert qpc["numpy"] == qpc["numba"]

    @given(
        seed=st.integers(0, 2**31 - 1),
        mode=st.sampled_from(["fluid", "stochastic"]),
    )
    @settings(max_examples=5, deadline=None)
    def test_sweep_rows_bit_identical(self, seed, mode):
        """Sweep rows agree bit for bit between backends at equal seeds."""
        kernel_community = _kernel_community()
        from test_sweep import make_trace

        variants = [
            SweepVariant(k=8, r=0.1, cache_capacity=16, staleness_budget=1,
                         mode=mode),
            SweepVariant(k=6, r=0.0, cache_capacity=8, staleness_budget=0,
                         n_shards=2, mode=mode),
            SweepVariant(k=8, r=0.2, cache_capacity=16, staleness_budget=2,
                         mode=mode),
        ]
        trace = make_trace(n_queries=120, flush_every=8, day_every=40)
        rows = {}
        for name in ("numpy", "numba"):
            with use_backend(name):
                sweep = ServingSweep(kernel_community, variants, seed=seed % 97)
                rows[name] = sweep.run(trace)
        for ours, theirs in zip(rows["numpy"], rows["numba"]):
            assert ours.matches(theirs)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_kernel_level_equality(self, seed):
        """rank_day / promotion_merge / lane_repair / feedback_flush agree."""
        rng = np.random.default_rng(seed)
        R, n = 3, 40
        numba_backend = get_backend("numba")
        scores = np.round(rng.random((R, n)), 1)
        ages = np.floor(rng.random((R, n)) * 5)
        for tie_breaker in ("random", "age", "index"):
            a = NUMPY_BACKEND.rank_day(
                scores, ages, tie_breaker, spawn_rngs(seed, R)
            )
            b = numba_backend.rank_day(
                scores, ages, tie_breaker, spawn_rngs(seed, R)
            )
            np.testing.assert_array_equal(a, b)

        perms = NUMPY_BACKEND.rank_day(scores, None, "index", spawn_rngs(seed, R))
        mask = rng.random((R, n)) < 0.3
        a = NUMPY_BACKEND.promotion_merge(perms, mask, 2, 0.4, spawn_rngs(seed, R))
        b = numba_backend.promotion_merge(perms, mask, 2, 0.4, spawn_rngs(seed, R))
        np.testing.assert_array_equal(a, b)

        pop = np.round(rng.random((2, n)), 1)
        orders = [np.lexsort((rng.random(n), -pop[i])) for i in range(2)]
        dirty = [np.sort(rng.choice(n, size=5, replace=False)) for _ in range(2)]
        for i, d in enumerate(dirty):
            pop[i, d] = np.round(rng.random(5), 1)
        a = NUMPY_BACKEND.lane_repair(orders, list(pop), dirty)
        b = numba_backend.lane_repair(orders, list(pop), dirty)
        for ours, theirs in zip(a, b):
            np.testing.assert_array_equal(ours, theirs)

        aware_a = np.floor(rng.random(n) * 9)
        aware_b = aware_a.copy()
        state = {
            "pop": np.zeros(n), "quality": rng.random(n),
            "dirty": np.zeros(n, dtype=bool),
        }
        touched = np.unique(rng.integers(0, n, size=10))
        summed = rng.random(touched.size) * 4
        pop_a, dirty_a = state["pop"].copy(), state["dirty"].copy()
        pop_b, dirty_b = state["pop"].copy(), state["dirty"].copy()
        NUMPY_BACKEND.feedback_flush(
            aware_a, pop_a, state["quality"], dirty_a, touched, summed, 9
        )
        numba_backend.feedback_flush(
            aware_b, pop_b, state["quality"], dirty_b, touched, summed, 9
        )
        np.testing.assert_array_equal(aware_a, aware_b)
        np.testing.assert_array_equal(pop_a, pop_b)
        np.testing.assert_array_equal(dirty_a, dirty_b)
