"""Tests for the backend-dispatched kernel layer (``repro.core.kernels``).

Three concerns live here:

* **dispatch** — registry resolution (explicit name, environment variable,
  process default), the hard error on unknown explicit names, and the
  import-guarded degradation: a requested-but-unavailable backend must fall
  back to numpy *silently* except for exactly one ``RuntimeWarning``;
* **numpy reference semantics** — the carved-out kernels must equal the
  pre-refactor inline passes (the day tail against the hand-chained
  reference ops, the merge repair against an independent ``lexsort``
  oracle, the grouped lane repair against the single-lane core), plus a
  structural guarantee that the sweep's hot path actually routes repairs
  through one grouped ``lane_repair`` call rather than lane by lane;
* **cross-backend bit parity** — when numba is installed, a Hypothesis
  property asserts that the numpy and numba backends produce bit-identical
  ``(R, n)`` day steps (fluid and stochastic) and bit-identical sweep rows
  at equal seeds, and per-kernel equality on random inputs.  Without
  numba these tests skip; CI runs them in the numba matrix leg.
"""

import importlib.util

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.community import CommunityConfig
from repro.core import kernels
from repro.core.kernels import get_backend, set_backend, use_backend
from repro.core.kernels.numpy_backend import BACKEND as NUMPY_BACKEND
from repro.core.kernels.numpy_backend import merge_repair
from repro.core.policy import RankPromotionPolicy
from repro.serving.state import PopularityState
from repro.serving.sweep import ServingSweep, SweepVariant
from repro.simulation import BatchSimulator, SimulationConfig
from repro.simulation.batch import run_batch
from repro.utils.rng import spawn_rngs
from repro.visits.attention import PowerLawAttention
from repro.visits.surfing import MixedSurfingModel

HAVE_NUMBA = importlib.util.find_spec("numba") is not None

needs_numba = pytest.mark.skipif(
    not HAVE_NUMBA, reason="numba not installed (optional backend)"
)


@pytest.fixture(autouse=True)
def clean_dispatch(monkeypatch):
    """Isolate every test from ambient backend selection state."""
    monkeypatch.delenv(kernels.ENV_VAR, raising=False)
    kernels._reset_dispatch_state()
    yield
    kernels._reset_dispatch_state()


def _kernel_community() -> CommunityConfig:
    # A plain helper (not a fixture): the Hypothesis properties below may
    # not mix @given with function-scoped fixtures.
    return CommunityConfig(
        n_pages=120,
        n_users=40,
        monitored_fraction=0.25,
        visits_per_user_per_day=1.0,
        expected_lifetime_days=30.0,
    )


@pytest.fixture
def kernel_community():
    return _kernel_community()


# ---------------------------------------------------------------- dispatch


class TestDispatch:
    def test_default_backend_is_numpy(self):
        assert get_backend().name == "numpy"
        assert get_backend("numpy") is NUMPY_BACKEND

    def test_unknown_explicit_name_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("cupy")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        assert get_backend().name == "numpy"

    def test_env_var_unknown_name_degrades_with_single_warning(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "banana")
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert get_backend().name == "numpy"
        # Second resolution stays silent: the warning fires once per name.
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert get_backend().name == "numpy"

    def test_missing_numba_degrades_silently_with_single_warning(self, monkeypatch):
        """The satellite contract: no numba => numpy, one warning, no crash."""
        monkeypatch.setitem(
            kernels._BACKEND_MODULES, "numba", ".does_not_exist"
        )
        monkeypatch.delitem(kernels._instances, "numba", raising=False)
        with pytest.warns(RuntimeWarning, match="unavailable"):
            backend = get_backend("numba")
        assert backend.name == "numpy"
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert get_backend("numba").name == "numpy"
            # set_backend goes through the same fallback and pins numpy.
            assert set_backend("numba").name == "numpy"
            assert get_backend().name == "numpy"

    def test_set_and_use_backend_restore(self):
        assert set_backend("numpy").name == "numpy"
        with use_backend("numpy") as active:
            assert active is NUMPY_BACKEND
        assert get_backend().name == "numpy"

    def test_available_backends_always_lists_numpy(self):
        names = kernels.available_backends()
        assert names[0] == "numpy"
        assert ("numba" in names) == HAVE_NUMBA


# ------------------------------------------------- numpy reference parity


def _reference_day_tail(rankings, attention, surfing, popularity, rate, mode,
                        rngs, aware, m):
    """The pre-refactor inline day tail, kept verbatim as the test oracle."""
    from repro.community.page import awareness_gain_batch
    from repro.visits.allocation import (
        allocate_monitored_visits_batch,
        rank_visit_shares_batch,
    )

    shares = rank_visit_shares_batch(rankings, attention, surfing, popularity)
    monitored = allocate_monitored_visits_batch(shares, rate, mode, rngs)
    gained = awareness_gain_batch(aware, m, monitored, mode=mode, rngs=rngs)
    np.minimum(m, aware + np.asarray(gained, dtype=float), out=aware)
    return shares


class TestNumpyKernelSemantics:
    @pytest.mark.parametrize("mode", ["fluid", "stochastic"])
    @pytest.mark.parametrize("surf_fraction", [0.0, 0.3])
    def test_day_tail_matches_inline_reference(self, mode, surf_fraction):
        rng = np.random.default_rng(5)
        R, n = 4, 60
        quality = rng.random((R, n))
        aware_a = np.floor(rng.random((R, n)) * 10)
        aware_b = aware_a.copy()
        m = 12
        popularity = aware_a / m * quality
        rankings = np.argsort(-popularity, axis=1)
        attention = PowerLawAttention()
        surfing = MixedSurfingModel(surfing_fraction=surf_fraction)
        rngs_a = spawn_rngs(3, R)
        rngs_b = spawn_rngs(3, R)

        reference = _reference_day_tail(
            rankings, attention, surfing, popularity, 7.0, mode,
            rngs_a, aware_a, m,
        )
        surf_shares = (
            surfing.surfing_shares_batch(popularity)
            if not surfing.is_pure_search
            else None
        )
        shares = NUMPY_BACKEND.day_tail(
            rankings,
            attention.visit_shares(n),
            7.0,
            mode,
            rngs_b,
            aware_b,
            m,
            surfing_fraction=surf_fraction,
            surf_shares=surf_shares,
        )
        np.testing.assert_array_equal(shares, reference)
        np.testing.assert_array_equal(aware_b, aware_a)

    def test_feedback_flush_matches_sequential_state_update(self):
        """apply_visits_at's kernel route equals the pre-refactor arithmetic."""
        from repro.community.page import awareness_gain

        rng = np.random.default_rng(9)
        n, m = 80, 15
        quality = rng.random(n)
        aware0 = np.floor(rng.random(n) * m)

        from repro.community.page import PagePool

        pool = PagePool(quality, m)
        pool.aware_count[:] = aware0
        state = PopularityState(pool, mode="fluid")
        indices = rng.integers(0, n, size=30)
        visits = rng.random(30) * 3
        state.apply_visits_at(indices, visits)

        # Pre-refactor reference on copies.
        aware = aware0.copy()
        touched, inverse = np.unique(indices, return_inverse=True)
        summed = np.zeros(touched.size)
        np.add.at(summed, inverse, visits)
        gained = awareness_gain(aware[touched], m, summed, mode="fluid")
        aware[touched] = np.minimum(m, aware[touched] + gained)

        np.testing.assert_array_equal(state.pool.aware_count, aware)
        np.testing.assert_array_equal(
            state.popularity, aware / m * quality
        )
        assert state.version == 1
        assert set(np.flatnonzero(state._dirty_mask)) == set(touched)

    @given(seed=st.integers(0, 2**32 - 1), d=st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_merge_repair_matches_lexsort_oracle(self, seed, d):
        """Repaired orders equal an independent composite-key sort.

        The merge repair promises: keeps stay in relative order, moved
        pages re-enter *after* keeps of equal popularity, moved ties fall
        back to ascending page index.  That order is exactly a lexsort by
        ``(-popularity, is_moved, old-position-or-index)`` — an oracle
        that shares no code with the implementation.
        """
        rng = np.random.default_rng(seed)
        n = 50
        popularity = np.round(rng.random(n), 1)  # coarse grid forces ties
        tie = rng.random(n)
        order = np.lexsort((tie, -popularity))
        dirty = np.sort(rng.choice(n, size=min(d, n // 2 - 1) or 1, replace=False))
        popularity[dirty] = np.round(rng.random(dirty.size), 1)

        merged, _ = merge_repair(order, popularity, dirty)

        rank_of = np.empty(n, dtype=int)
        rank_of[order] = np.arange(n)
        is_moved = np.zeros(n, dtype=bool)
        is_moved[dirty] = True
        tiebreak = np.where(is_moved, np.arange(n), rank_of)
        oracle = np.lexsort((tiebreak, is_moved, -popularity))
        np.testing.assert_array_equal(merged, oracle)

    def test_lane_repair_matches_single_lane_core(self):
        rng = np.random.default_rng(11)
        n, lanes = 40, 5
        orders, pops, dirties = [], [], []
        for _ in range(lanes):
            pop = np.round(rng.random(n), 1)
            order = np.lexsort((rng.random(n), -pop))
            dirty = np.sort(rng.choice(n, size=6, replace=False))
            pop[dirty] = np.round(rng.random(6), 1)
            orders.append(order)
            pops.append(pop)
            dirties.append(dirty)
        repaired = get_backend().lane_repair(orders, pops, dirties)
        for lane in range(lanes):
            expected, _ = merge_repair(orders[lane], pops[lane], dirties[lane])
            np.testing.assert_array_equal(repaired[lane], expected)

    def test_sweep_routes_repairs_through_grouped_lane_repair(
        self, kernel_community, monkeypatch
    ):
        """The sweep hot path must issue grouped calls, not per-lane loops."""
        from test_sweep import make_trace

        calls = []
        original = type(NUMPY_BACKEND).lane_repair

        def spy(self, orders, popularity, dirty):
            calls.append(len(orders))
            return original(self, orders, popularity, dirty)

        monkeypatch.setattr(type(NUMPY_BACKEND), "lane_repair", spy)
        variants = [
            SweepVariant(k=8, r=0.1, cache_capacity=16, staleness_budget=0),
            SweepVariant(k=8, r=0.2, cache_capacity=16, staleness_budget=0),
            SweepVariant(k=8, r=0.3, cache_capacity=16, staleness_budget=0),
            SweepVariant(k=8, r=0.0, cache_capacity=16, staleness_budget=0),
        ]
        sweep = ServingSweep(kernel_community, variants, seed=3)
        sweep.run(make_trace(n_queries=200, flush_every=8))
        repairs = sum(
            lane.engine.repairs
            for replay in sweep._replays
            for lane in replay.lanes
        )
        assert repairs > 0, "workload produced no repairs to group"
        assert calls, "repairs bypassed the grouped lane_repair kernel"
        assert max(calls) > 1, "lane_repair was never actually grouped"
        assert sum(calls) == repairs, "some repairs ran outside the kernel"


# --------------------------------------------------- adaptive rank_day


def _drifted_day(rng, R, n, moved, block=False):
    """Yesterday's perm + today's scores under a fluid-like drift."""
    scores_prev = rng.random((R, n))
    prev_perm = np.argsort(-scores_prev, axis=1)
    scores = scores_prev * 1.05  # monotone growth keeps survivor order
    for row in range(R):
        hot = rng.choice(n, size=min(moved, n), replace=False)
        scores[row, hot] = rng.random(hot.size)
        if hot.size >= 2:
            scores[row, hot[: hot.size // 2]] = 0.0  # lifecycle resets tie at 0
    if block and n >= 40:
        # A displaced block defeats the re-insertion heal and must fall
        # back to the full sort — still bit-identical.
        scores[:, 10:30] = scores_prev[:, 10:30] * 10.0
    return scores, prev_perm


def _fluid_day(rng, R, n, scale=1e-4):
    """The fluid steady state: everything jitters, nothing travels far.

    Yesterday's scores are a shared descending base; today multiplies in
    per-page noise small enough that every page stays within a narrow
    displacement band of its old rank — the windowed route's home turf.
    """
    base = np.sort(rng.random(n))[::-1]
    scores_prev = np.tile(base, (R, 1))
    prev_perm = np.argsort(-scores_prev, axis=1)
    scores = scores_prev * (1.0 + rng.normal(0.0, scale, (R, n)))
    return scores, prev_perm


def _exact_breaks_day(R, n, breaks):
    """Descending scores with exactly ``breaks`` descent violations.

    ``prev_perm`` is the identity (the base is already sorted), and each
    adjacent-column swap manufactures exactly one break; swaps are spaced
    three apart so breaks never merge.  Lets a test sit a row precisely on
    the ``4 * breaks <= max_moved`` run-merge threshold.
    """
    assert n >= 3 * breaks + 2, "need room for %d isolated swaps" % breaks
    scores = np.tile(np.linspace(1.0, 0.5, n), (R, 1))
    prev_perm = np.tile(np.arange(n), (R, 1))
    for b in range(breaks):
        j = 3 * b + 1
        scores[:, [j, j + 1]] = scores[:, [j + 1, j]]
    return scores, prev_perm


class TestAdaptiveRankDay:
    """The prev_perm hint must never change rank_day's output."""

    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(1, 120),
        moved=st.integers(1, 30),
        block=st.booleans(),
        fluid=st.booleans(),
        tie_breaker=st.sampled_from(["random", "age", "index"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_to_full_sort(
        self, seed, n, moved, block, fluid, tie_breaker
    ):
        rng = np.random.default_rng(seed)
        R = 3
        if fluid:
            scores, prev_perm = _fluid_day(rng, R, n)
        else:
            scores, prev_perm = _drifted_day(rng, R, n, moved, block=block)
        ages = np.floor(rng.random((R, n)) * 4) if tie_breaker == "age" else None
        backend = get_backend()
        full = backend.rank_day(scores, ages, tie_breaker, spawn_rngs(seed, R))
        adaptive = backend.rank_day(
            scores, ages, tie_breaker, spawn_rngs(seed, R), prev_perm=prev_perm
        )
        np.testing.assert_array_equal(full, adaptive)

    def test_chunked_rows_bit_identical(self):
        """R large enough that the adaptive analysis row-blocks internally."""
        from repro.core.kernels import numpy_backend as npk

        rng = np.random.default_rng(5)
        R = 16
        n = npk.ADAPTIVE_BLOCK_ELEMENTS // 4  # forces > 1 row block
        scores, prev_perm = _drifted_day(rng, R, n, moved=12)
        backend = get_backend()
        full = backend.rank_day(scores, None, "random", spawn_rngs(2, R))
        adaptive = backend.rank_day(
            scores, None, "random", spawn_rngs(2, R), prev_perm=prev_perm
        )
        np.testing.assert_array_equal(full, adaptive)

    def test_unchanged_scores_take_the_copy_path(self):
        """A fully sorted hint returns yesterday's order outright."""
        rng = np.random.default_rng(3)
        scores = rng.random((2, 50))
        backend = get_backend()
        perm = backend.rank_day(scores, None, "index", spawn_rngs(0, 2))
        again = backend.rank_day(
            scores, None, "index", spawn_rngs(0, 2), prev_perm=perm
        )
        np.testing.assert_array_equal(perm, again)

    def test_prev_perm_shape_mismatch_raises(self):
        backend = get_backend()
        with pytest.raises(ValueError, match="prev_perm"):
            backend.rank_day(
                np.zeros((2, 5)), None, "index", spawn_rngs(0, 2),
                prev_perm=np.zeros((2, 4), dtype=int),
            )

    @pytest.mark.parametrize(
        "backend_name", ["numpy", *(["numba"] if HAVE_NUMBA else [])]
    )
    def test_run_merge_threshold_boundary(self, backend_name):
        """Rows exactly at ``4 * breaks == max_moved`` route deterministically.

        At the boundary the run-merge candidacy check must accept (``<=``),
        one break past it must decline into the windowed route — on both
        backends, bit-identical to the full sort either way.
        """
        from repro.core.kernels.numpy_backend import (
            ADAPTIVE_MAX_MOVED_FRACTION, ROUTE_STATS,
        )

        backend = get_backend(backend_name)
        backend.warmup()
        R, n = 3, 96
        max_moved = max(4, int(n * ADAPTIVE_MAX_MOVED_FRACTION))
        at_boundary = max_moved // 4
        for breaks, route in ((at_boundary, "rank_route_run_merge"),
                              (at_boundary + 1, "rank_route_windowed")):
            scores, prev_perm = _exact_breaks_day(R, n, breaks)
            full = backend.rank_day(scores, None, "index", spawn_rngs(9, R))
            ROUTE_STATS.reset()
            adaptive = backend.rank_day(
                scores, None, "index", spawn_rngs(9, R), prev_perm=prev_perm
            )
            np.testing.assert_array_equal(full, adaptive)
            stats = ROUTE_STATS.as_dict()
            assert stats[route] == R, (breaks, stats)

    @pytest.mark.parametrize("tie_breaker", ["random", "index"])
    def test_windowed_route_bit_identical(self, tie_breaker):
        """A fluid day routes every row through the windowed sort."""
        from repro.core.kernels.numpy_backend import ROUTE_STATS

        rng = np.random.default_rng(17)
        R, n = 4, 3000
        scores, prev_perm = _fluid_day(rng, R, n)
        backend = get_backend()
        full = backend.rank_day(scores, None, tie_breaker, spawn_rngs(4, R))
        ROUTE_STATS.reset()
        adaptive = backend.rank_day(
            scores, None, tie_breaker, spawn_rngs(4, R), prev_perm=prev_perm
        )
        np.testing.assert_array_equal(full, adaptive)
        stats = ROUTE_STATS.as_dict()
        assert stats["rank_route_windowed"] == R, stats
        assert stats["rank_displacement_max"] >= 1

    def test_windowed_undershoot_falls_back_exactly(self, monkeypatch):
        """An undershooting displacement estimate must be caught, not trusted.

        Forcing the estimator to claim d=1 while a perfect shuffle moved
        every page up to n/2 slots makes the windowed sort produce a wrong
        permutation; the post-hoc descent verification has to detect every
        such row, re-sort it, and rebook it from the windowed to the full
        counter.
        """
        from repro.core.kernels.numpy_backend import ROUTE_STATS

        monkeypatch.setattr(
            type(NUMPY_BACKEND), "_estimate_displacement",
            lambda self, prev_keys: np.ones(prev_keys.shape[0], dtype=np.int64),
        )
        rng = np.random.default_rng(23)
        R, n = 3, 2000
        scores_prev = np.sort(rng.random((R, n)), axis=1)[:, ::-1]
        prev_perm = np.argsort(-scores_prev, axis=1)
        # Riffle yesterday's halves: page 2k takes rank-k value, page 2k+1
        # the rank-(n/2 + k) value — breaks at every other slot (declines
        # the run-merge route) and true displacements far past any window.
        shuffle = np.empty(n, dtype=np.int64)
        shuffle[0::2] = np.arange(n // 2)
        shuffle[1::2] = np.arange(n // 2, n)
        scores = scores_prev[:, shuffle]
        full = NUMPY_BACKEND.rank_day(scores, None, "index", spawn_rngs(1, R))
        ROUTE_STATS.reset()
        adaptive = NUMPY_BACKEND.rank_day(
            scores, None, "index", spawn_rngs(1, R), prev_perm=prev_perm
        )
        np.testing.assert_array_equal(full, adaptive)
        stats = ROUTE_STATS.as_dict()
        assert stats["rank_route_windowed"] == 0, stats
        assert stats["rank_route_full"] == R, stats

    @pytest.mark.parametrize("mode", ["fluid", "stochastic"])
    def test_batch_simulator_adaptive_parity(self, kernel_community, mode):
        """adaptive_rank=True is bit-identical to the full-sort engine."""
        policy = RankPromotionPolicy("selective", 1, 0.2)
        config = SimulationConfig(warmup_days=2, measure_days=3, mode=mode, seed=11)
        outcomes = {}
        for adaptive in (False, True):
            simulator = BatchSimulator(
                kernel_community,
                policy.build_ranker(),
                config,
                replicates=3,
                adaptive_rank=adaptive,
            )
            shares = [simulator.step() for _ in range(5)]
            outcomes[adaptive] = (
                np.asarray(shares),
                simulator.pool.aware_count.copy(),
                simulator.pool.page_ids.copy(),
            )
        for ours, theirs in zip(outcomes[False], outcomes[True], strict=True):
            np.testing.assert_array_equal(ours, theirs)

    def test_run_batch_adaptive_parity(self, kernel_community):
        config = SimulationConfig(warmup_days=2, measure_days=3, seed=7)
        ranker = RankPromotionPolicy("selective", 1, 0.1).build_ranker()
        qpc = {}
        for adaptive in (False, True):
            results = run_batch(
                kernel_community, ranker, config, replicates=3,
                n_workers=1, adaptive_rank=adaptive,
            )
            qpc[adaptive] = [r.qpc_absolute for r in results]
        assert qpc[False] == qpc[True]

    def test_custom_ranker_without_det_order_is_fine(self, kernel_community):
        """Rankers that never set deterministic_order keep the full path."""
        from repro.core.rankers import Ranker, _deterministic_order

        class PlainRanker(Ranker):
            def rank(self, context, rng=None):
                return _deterministic_order(
                    context.popularity, None, "index", None
                )

        config = SimulationConfig(warmup_days=1, measure_days=2, seed=1)
        simulator = BatchSimulator(
            kernel_community, PlainRanker(), config,
            replicates=2, adaptive_rank=True,
        )
        simulator.step()
        assert simulator._prev_order is None  # fallback stays engaged
        simulator.step()  # and the second day still works

    def test_sweep_resorts_thread_prev_perm(self, kernel_community, monkeypatch):
        """Grouped stale-lane resorts hand yesterday's orders to rank_day."""
        from repro.serving.sweep import ServingSweep, SweepVariant

        seen = []
        original = type(NUMPY_BACKEND).rank_day

        def spy(self, scores, ages, tie_breaker, rngs, out_tie_keys=None,
                prev_perm=None):
            seen.append(prev_perm is not None)
            return original(
                self, scores, ages, tie_breaker, rngs,
                out_tie_keys=out_tie_keys, prev_perm=prev_perm,
            )

        monkeypatch.setattr(type(NUMPY_BACKEND), "rank_day", spy)
        variants = [
            SweepVariant(k=8, r=0.1, cache_capacity=16, staleness_budget=0),
            SweepVariant(k=8, r=0.2, cache_capacity=16, staleness_budget=0),
        ]
        sweep = ServingSweep(kernel_community, variants, seed=5)
        engines = [replay.lanes[0].engine for replay in sweep._replays]
        for engine in engines:
            engine.top_k(4)  # bootstrap the maintained orders
            n = engine.state.n
            engine.apply_feedback(np.arange(n - n // 3), np.ones(n - n // 3))
        seen.clear()
        sweep._refresh_stale(engines)
        assert seen == [True], "batched resort must pass the prev_perm hint"


# ------------------------------------------------------ kernel edge cases


class TestKernelEdgeCases:
    """n=0 / n=1 / R=1 degeneracy across the kernel surface."""

    def test_promotion_merge_empty_community_regression(self):
        """promotion_merge(n=0) used to raise IndexError; now returns empty."""
        backend = get_backend()
        perms = np.zeros((3, 0), dtype=np.intp)
        mask = np.zeros((3, 0), dtype=bool)
        rngs = spawn_rngs(0, 3)
        merged = backend.promotion_merge(perms, mask, 1, 0.5, rngs)
        assert merged.shape == (3, 0)
        # The sequential contract: an empty community consumes no draws.
        probe = rngs[0].random()
        assert probe == spawn_rngs(0, 3)[0].random()

    def test_promotion_merge_validates_r_and_k(self):
        backend = get_backend()
        perms = np.array([[1, 0]])
        mask = np.array([[True, False]])
        with pytest.raises(ValueError, match="r must be"):
            backend.promotion_merge(perms, mask, 1, 1.5, spawn_rngs(0, 1))
        with pytest.raises(ValueError, match="r must be"):
            backend.promotion_merge(perms, mask, 1, -0.1, spawn_rngs(0, 1))
        with pytest.raises(ValueError, match="k must be"):
            backend.promotion_merge(perms, mask, 0, 0.5, spawn_rngs(0, 1))

    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(1, 6),
        k=st.integers(1, 12),
        all_tied=st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_promotion_merge_tiny_and_clamped_k_matches_sequential(
        self, seed, n, k, all_tied
    ):
        """k >= n clamps to the sequential merge's behaviour, bit for bit."""
        from repro.core.merge import randomized_merge

        rng = np.random.default_rng(seed)
        R = 2
        scores = np.full((R, n), 0.25) if all_tied else rng.random((R, n))
        perms = np.argsort(-scores, axis=1)
        mask = rng.random((R, n)) < 0.5
        batched = get_backend().promotion_merge(
            perms, mask, k, 0.4, spawn_rngs(seed, R)
        )
        rngs = spawn_rngs(seed, R)
        for row in range(R):
            by_rank = mask[row][perms[row]]
            deterministic = perms[row][~by_rank]
            promoted = perms[row][by_rank]
            if promoted.size == 0:
                expected = perms[row]
            else:
                expected = randomized_merge(
                    deterministic, promoted, k, 0.4, rngs[row]
                )
            np.testing.assert_array_equal(batched[row], expected)

    @pytest.mark.parametrize("tie_breaker", ["random", "age", "index"])
    @pytest.mark.parametrize("n", [0, 1])
    def test_rank_day_degenerate_sizes(self, tie_breaker, n):
        backend = get_backend()
        scores = np.zeros((2, n))
        perm = backend.rank_day(scores, None, tie_breaker, spawn_rngs(0, 2))
        assert perm.shape == (2, n)
        hinted = backend.rank_day(
            scores, None, tie_breaker, spawn_rngs(0, 2),
            prev_perm=perm if n else None,
        )
        np.testing.assert_array_equal(perm, hinted)

    def test_rank_day_all_tied_matches_lexsort(self):
        backend = get_backend()
        R, n = 2, 40
        scores = np.full((R, n), 0.5)
        rngs = spawn_rngs(4, R)
        perm = backend.rank_day(scores, None, "random", spawn_rngs(4, R))
        for row in range(R):
            tie_key = rngs[row].random(n)
            np.testing.assert_array_equal(
                perm[row], np.lexsort((tie_key, -scores[row]))
            )

    def test_rank_day_zero_age_short_circuits_to_index_order(self):
        """tie_breaker='age' with no ages equals the index rule exactly."""
        backend = get_backend()
        scores = np.round(np.random.default_rng(8).random((3, 30)), 1)
        by_age_none = backend.rank_day(scores, None, "age", spawn_rngs(0, 3))
        by_index = backend.rank_day(scores, None, "index", spawn_rngs(0, 3))
        by_zero_ages = backend.rank_day(
            scores, np.zeros((3, 30)), "age", spawn_rngs(0, 3)
        )
        np.testing.assert_array_equal(by_age_none, by_index)
        np.testing.assert_array_equal(by_age_none, by_zero_ages)

    @pytest.mark.parametrize("mode", ["fluid", "stochastic"])
    @pytest.mark.parametrize("R,n", [(1, 5), (2, 0), (2, 1), (9, 7)])
    def test_day_tail_degenerate_shapes(self, mode, R, n):
        """day_tail survives n=0 / n=1 / R=1 — and the blocked and plain
        chains agree on every such shape."""
        from repro.core.kernels.api import KernelBackend

        backend = get_backend()
        rng = np.random.default_rng(1)
        m = 10
        aware_blocked = np.floor(rng.random((R, n)) * m)
        aware_chain = aware_blocked.copy()
        rankings = np.argsort(-rng.random((R, n)), axis=1)
        shares_by_rank = np.full(n, 1.0 / n) if n else np.zeros(0)
        shares = backend.day_tail(
            rankings, shares_by_rank, 3.0, mode, spawn_rngs(0, R),
            aware_blocked, m,
        )
        assert shares.shape == (R, n)
        assert np.all(aware_blocked <= m)
        chained = KernelBackend.day_tail(
            backend, rankings, shares_by_rank, 3.0, mode, spawn_rngs(0, R),
            aware_chain, m,
        )
        np.testing.assert_array_equal(shares, chained)
        np.testing.assert_array_equal(aware_blocked, aware_chain)

    def test_feedback_flush_empty_touched_is_noop(self):
        backend = get_backend()
        aware = np.ones(5)
        popularity = np.zeros(5)
        quality = np.ones(5)
        dirty = np.zeros(5, dtype=bool)
        backend.feedback_flush(
            aware, popularity, quality, dirty,
            np.zeros(0, dtype=np.int64), np.zeros(0), 10,
        )
        assert not dirty.any()
        np.testing.assert_array_equal(aware, np.ones(5))

    def test_lane_repair_empty_lane_list(self):
        assert get_backend().lane_repair([], [], []) == []


@pytest.mark.skipif(
    HAVE_NUMBA, reason="real numba installed; the JIT parity suite covers this"
)
def test_numba_adaptive_algorithm_parity_with_stubbed_njit(monkeypatch):
    """The numba adaptive kernel's *algorithm*, checked without numba.

    On hosts without numba the JIT backend cannot import, so its ~90-line
    `_rank_adaptive_nb` merge would only ever run on the numba CI leg.
    Stubbing ``numba`` with an identity ``njit`` executes the same kernel
    body as plain Python, pinning the algorithm (run detection, moved-set
    window, spine check, two-pointer merge, fallback flagging) against
    the numpy reference on every host.
    """
    import importlib
    import sys
    import types

    stub = types.ModuleType("numba")

    def njit(*args, **kwargs):
        if args and callable(args[0]):
            return args[0]
        return lambda fn: fn

    stub.njit = njit
    stub.prange = range
    monkeypatch.setitem(sys.modules, "numba", stub)
    sys.modules.pop("repro.core.kernels.numba_backend", None)
    try:
        module = importlib.import_module("repro.core.kernels.numba_backend")
        backend = module.NumbaKernelBackend()
        rng = np.random.default_rng(0)
        for R, n in ((3, 80), (2, 1), (2, 2), (4, 25)):
            for trial in range(6):
                scores, prev_perm = _drifted_day(
                    rng, R, n, moved=max(1, n // 10),
                    block=(trial % 2 == 0),
                )
                for tie_breaker in ("random", "index"):
                    full = NUMPY_BACKEND.rank_day(
                        scores, None, tie_breaker, spawn_rngs(trial, R)
                    )
                    hinted = backend.rank_day(
                        scores, None, tie_breaker, spawn_rngs(trial, R),
                        prev_perm=prev_perm,
                    )
                    np.testing.assert_array_equal(full, hinted)
        # Fluid days exercise the bounded-insertion (windowed) pass: dense
        # local jitter declines the run-merge route but every shift stays
        # inside the n/8 bound.
        for R, n in ((3, 400), (2, 64)):
            for trial in range(3):
                scores, prev_perm = _fluid_day(rng, R, n, scale=0.01)
                for tie_breaker in ("random", "index"):
                    full = NUMPY_BACKEND.rank_day(
                        scores, None, tie_breaker, spawn_rngs(trial, R)
                    )
                    hinted = backend.rank_day(
                        scores, None, tie_breaker, spawn_rngs(trial, R),
                        prev_perm=prev_perm,
                    )
                    np.testing.assert_array_equal(full, hinted)
    finally:
        # Never leave a stub-built backend module importable: a later
        # get_backend("numba") must re-attempt the real import.
        sys.modules.pop("repro.core.kernels.numba_backend", None)


# ------------------------------------------------ numba cross-backend parity


@needs_numba
class TestNumbaBitParity:
    @given(
        seed=st.integers(0, 2**31 - 1),
        mode=st.sampled_from(["fluid", "stochastic"]),
        replicates=st.integers(1, 4),
    )
    @settings(max_examples=10, deadline=None)
    def test_batch_day_steps_bit_identical(self, seed, mode, replicates):
        """(R, n) day steps agree bit for bit between numpy and numba."""
        kernel_community = _kernel_community()
        policy = RankPromotionPolicy("selective", 1, 0.2)
        config = SimulationConfig(
            warmup_days=2, measure_days=4, mode=mode, seed=seed
        )
        results = {}
        for name in ("numpy", "numba"):
            with use_backend(name):
                simulator = BatchSimulator(
                    kernel_community,
                    policy.build_ranker(),
                    config,
                    replicates=replicates,
                )
                shares = [simulator.step() for _ in range(4)]
                results[name] = (
                    np.asarray(shares),
                    simulator.pool.aware_count.copy(),
                    simulator.pool.page_ids.copy(),
                )
        for ours, theirs in zip(results["numpy"], results["numba"], strict=True):
            np.testing.assert_array_equal(ours, theirs)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_run_batch_results_bit_identical(self, seed):
        kernel_community = _kernel_community()
        config = SimulationConfig(warmup_days=2, measure_days=3, seed=seed)
        ranker = RankPromotionPolicy("selective", 1, 0.2).build_ranker()
        qpc = {}
        for name in ("numpy", "numba"):
            with use_backend(name):
                results = run_batch(
                    kernel_community, ranker, config, replicates=3, n_workers=1
                )
                qpc[name] = [r.qpc_absolute for r in results]
        assert qpc["numpy"] == qpc["numba"]

    @given(
        seed=st.integers(0, 2**31 - 1),
        mode=st.sampled_from(["fluid", "stochastic"]),
    )
    @settings(max_examples=5, deadline=None)
    def test_sweep_rows_bit_identical(self, seed, mode):
        """Sweep rows agree bit for bit between backends at equal seeds."""
        kernel_community = _kernel_community()
        from test_sweep import make_trace

        variants = [
            SweepVariant(k=8, r=0.1, cache_capacity=16, staleness_budget=1,
                         mode=mode),
            SweepVariant(k=6, r=0.0, cache_capacity=8, staleness_budget=0,
                         n_shards=2, mode=mode),
            SweepVariant(k=8, r=0.2, cache_capacity=16, staleness_budget=2,
                         mode=mode),
        ]
        trace = make_trace(n_queries=120, flush_every=8, day_every=40)
        rows = {}
        for name in ("numpy", "numba"):
            with use_backend(name):
                sweep = ServingSweep(kernel_community, variants, seed=seed % 97)
                rows[name] = sweep.run(trace)
        for ours, theirs in zip(rows["numpy"], rows["numba"], strict=True):
            assert ours.matches(theirs)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_kernel_level_equality(self, seed):
        """rank_day / promotion_merge / lane_repair / feedback_flush agree."""
        rng = np.random.default_rng(seed)
        R, n = 3, 40
        numba_backend = get_backend("numba")
        scores = np.round(rng.random((R, n)), 1)
        ages = np.floor(rng.random((R, n)) * 5)
        for tie_breaker in ("random", "age", "index"):
            a = NUMPY_BACKEND.rank_day(
                scores, ages, tie_breaker, spawn_rngs(seed, R)
            )
            b = numba_backend.rank_day(
                scores, ages, tie_breaker, spawn_rngs(seed, R)
            )
            np.testing.assert_array_equal(a, b)

        # Adaptive hint: both backends must match the full sort bit for bit
        # (numpy via batched re-insertion, numba via the fused JIT nest).
        drift_scores, drift_prev = _drifted_day(rng, R, n, moved=6)
        a = NUMPY_BACKEND.rank_day(
            drift_scores, None, "random", spawn_rngs(seed, R),
            prev_perm=drift_prev,
        )
        b = numba_backend.rank_day(
            drift_scores, None, "random", spawn_rngs(seed, R),
            prev_perm=drift_prev,
        )
        c = numba_backend.rank_day(
            drift_scores, None, "random", spawn_rngs(seed, R)
        )
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(a, c)

        perms = NUMPY_BACKEND.rank_day(scores, None, "index", spawn_rngs(seed, R))
        mask = rng.random((R, n)) < 0.3
        a = NUMPY_BACKEND.promotion_merge(perms, mask, 2, 0.4, spawn_rngs(seed, R))
        b = numba_backend.promotion_merge(perms, mask, 2, 0.4, spawn_rngs(seed, R))
        np.testing.assert_array_equal(a, b)

        pop = np.round(rng.random((2, n)), 1)
        orders = [np.lexsort((rng.random(n), -pop[i])) for i in range(2)]
        dirty = [np.sort(rng.choice(n, size=5, replace=False)) for _ in range(2)]
        for i, d in enumerate(dirty):
            pop[i, d] = np.round(rng.random(5), 1)
        a = NUMPY_BACKEND.lane_repair(orders, list(pop), dirty)
        b = numba_backend.lane_repair(orders, list(pop), dirty)
        for ours, theirs in zip(a, b, strict=True):
            np.testing.assert_array_equal(ours, theirs)

        aware_a = np.floor(rng.random(n) * 9)
        aware_b = aware_a.copy()
        state = {
            "pop": np.zeros(n), "quality": rng.random(n),
            "dirty": np.zeros(n, dtype=bool),
        }
        touched = np.unique(rng.integers(0, n, size=10))
        summed = rng.random(touched.size) * 4
        pop_a, dirty_a = state["pop"].copy(), state["dirty"].copy()
        pop_b, dirty_b = state["pop"].copy(), state["dirty"].copy()
        NUMPY_BACKEND.feedback_flush(
            aware_a, pop_a, state["quality"], dirty_a, touched, summed, 9
        )
        numba_backend.feedback_flush(
            aware_b, pop_b, state["quality"], dirty_b, touched, summed, 9
        )
        np.testing.assert_array_equal(aware_a, aware_b)
        np.testing.assert_array_equal(pop_a, pop_b)
        np.testing.assert_array_equal(dirty_a, dirty_b)
