"""Tests for the robustness layer: faults, OCC writes, recovery.

The load-bearing contract is crash consistency: *checkpoint + journal
replay restores a shard's popularity state bit-identically* — covered
directly (unit replay, hypothesis-fuzzed batches, both kernel backends)
and end-to-end (the chaos benchmark's internal digest and its external
fault-free-reference parity).  The rest covers the scripted fault plans,
the OCC retry/backoff/dead-letter write path, degradation budgets and
load shedding, cache poisoning, and the telemetry context manager.
"""

import importlib.util
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.community import CommunityConfig
from repro.core.kernels import use_backend
from repro.robustness import (
    POISON_VERSION,
    DeadLetterQueue,
    DegradationPolicy,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FeedbackJournal,
    FlushReport,
    LoadShedError,
    RetryPolicy,
    ShardCheckpoint,
    pinned_fault_plan,
    run_chaos_benchmark,
    state_digest,
)
from repro.serving import (
    PopularityState,
    ResultPageCache,
    ServingEngine,
    ShardedRouter,
)
from repro.telemetry import TelemetryRecorder

HAVE_NUMBA = importlib.util.find_spec("numba") is not None

needs_numba = pytest.mark.skipif(
    not HAVE_NUMBA, reason="numba not installed (optional backend)"
)

COMMUNITY = CommunityConfig(
    n_pages=240,
    n_users=48,
    monitored_fraction=0.3,
    visits_per_user_per_day=1.0,
    expected_lifetime_days=40.0,
)


def build_router(n_shards=2, cache_capacity=8, staleness_budget=2, seed=0):
    return ShardedRouter.from_community(
        COMMUNITY,
        n_shards=n_shards,
        cache_capacity=cache_capacity,
        staleness_budget=staleness_budget,
        seed=seed,
    )


def query_for_shard(router, shard):
    """A query id that routes to ``shard`` (stable hashing, so search)."""
    for query_id in range(10_000):
        if router.shard_for(query_id) == shard:
            return query_id
    raise AssertionError("no query id found for shard %d" % shard)


# ------------------------------------------------------------- fault plans


class TestFaultPlan:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="meteor", at_query=1)
        with pytest.raises(ValueError):
            FaultEvent(kind="crash", at_query=0)
        with pytest.raises(ValueError):
            FaultEvent(kind="crash", at_query=1, shard=-1)
        with pytest.raises(ValueError):
            FaultEvent(kind="stall", at_query=1, duration=-1)
        with pytest.raises(ValueError):
            FaultEvent(kind="conflict", at_query=1, count=0)

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            events=(
                FaultEvent(kind="crash", at_query=10, shard=1, duration=5),
                FaultEvent(kind="conflict", at_query=3, shard=0, count=2),
            )
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert FaultPlan.load(path) == plan
        # The wire format is plain JSON an operator can write by hand.
        payload = json.loads(plan.to_json())
        assert payload["events"][0]["kind"] == "crash"

    def test_sorted_events_and_max_shard(self):
        plan = FaultPlan(
            events=(
                FaultEvent(kind="stall", at_query=9, shard=3),
                FaultEvent(kind="drop", at_query=2, shard=1),
            )
        )
        assert [event.at_query for event in plan.sorted_events()] == [2, 9]
        assert plan.max_shard() == 3
        assert FaultPlan().max_shard() == -1

    def test_injector_rejects_out_of_range_shard(self):
        router = build_router(n_shards=2)
        plan = FaultPlan(events=(FaultEvent(kind="stall", at_query=1, shard=5),))
        with pytest.raises(ValueError, match="shard 5"):
            FaultInjector(plan, router)

    def test_pinned_plan_validation(self):
        with pytest.raises(ValueError, match="n_queries"):
            pinned_fault_plan(100, 4, flush_every=64)
        with pytest.raises(ValueError, match="shards"):
            pinned_fault_plan(1024, 1)
        plan = pinned_fault_plan(1024, 4)
        kinds = sorted(event.kind for event in plan.events)
        assert kinds == ["conflict", "crash", "poison", "stall"]
        # The crash fires first so recovery can be parity-checked against
        # the fault-free reference.
        assert plan.sorted_events()[0].kind == "crash"


# ------------------------------------------------------------- retry policy


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_seconds=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_seconds(0, np.random.default_rng(0))

    def test_backoff_deterministic_and_bounded(self):
        policy = RetryPolicy(
            base_backoff_seconds=1e-3,
            backoff_multiplier=2.0,
            max_backoff_seconds=4e-3,
            jitter=0.5,
        )
        first = [
            policy.backoff_seconds(c, np.random.default_rng(7)) for c in (1, 2, 3, 9)
        ]
        second = [
            policy.backoff_seconds(c, np.random.default_rng(7)) for c in (1, 2, 3, 9)
        ]
        assert first == second  # seeded jitter replays exactly
        for conflict_count, backoff in zip((1, 2, 3, 9), first, strict=True):
            ceiling = min(4e-3, 1e-3 * 2.0 ** (conflict_count - 1))
            assert 0.5 * ceiling <= backoff <= ceiling

    def test_no_jitter_is_exact_exponential(self):
        policy = RetryPolicy(
            base_backoff_seconds=1e-3, max_backoff_seconds=1.0, jitter=0.0
        )
        rng = np.random.default_rng(0)
        assert policy.backoff_seconds(1, rng) == pytest.approx(1e-3)
        assert policy.backoff_seconds(2, rng) == pytest.approx(2e-3)
        assert policy.backoff_seconds(3, rng) == pytest.approx(4e-3)


# ------------------------------------------------------------ flush report


class TestFlushReport:
    def test_merge_and_bool(self):
        empty = FlushReport()
        assert not empty
        report = FlushReport(batches=1, committed=3, conflicts=1, retries=1)
        report.merge(FlushReport(batches=2, committed=0, dead_letter_events=4))
        assert bool(report)
        assert report.batches == 3
        assert report.committed == 3
        assert report.dead_letter_events == 4

    def test_as_dict_prefix(self):
        report = FlushReport(committed=2, dropped_events=1)
        payload = report.as_dict()
        assert payload["flush_committed"] == 2.0
        assert payload["flush_dropped_events"] == 1.0
        assert set(report.as_dict(prefix="x_")) == {
            "x_" + key.split("flush_", 1)[1] for key in payload
        }

    def test_dead_letter_queue_totals_survive_drain(self):
        from repro.robustness import DeadLetter

        queue = DeadLetterQueue()
        queue.park(
            DeadLetter(
                shard=0,
                indices=np.array([1, 2]),
                visits=np.array([1.0, 1.0]),
                attempts=4,
            )
        )
        assert len(queue) == 1
        assert queue.total_events == 2
        assert len(queue.drain()) == 1
        assert len(queue) == 0
        assert queue.total_batches == 1
        assert queue.total_events == 2


# --------------------------------------------------------------- OCC state


class TestOCCState:
    def test_commit_rejected_without_mutation(self):
        state = PopularityState.from_config(COMMUNITY, np.random.default_rng(0))
        before = state.pool.aware_count.copy()
        stale_version = state.version
        state.bump_version()  # a concurrent writer got there first
        committed = state.commit_visits_at(
            np.array([1, 2]), np.array([1.0, 1.0]), stale_version
        )
        assert committed is False
        np.testing.assert_array_equal(state.pool.aware_count, before)

    def test_commit_applies_at_matching_version(self):
        state = PopularityState.from_config(COMMUNITY, np.random.default_rng(0))
        state.pool.quality[:] = 0.9
        assert state.commit_visits_at(
            np.array([1]), np.array([5.0]), state.version
        )
        assert state.pool.aware_count[1] > 0

    def test_router_retries_injected_conflict(self):
        router = build_router()
        query = query_for_shard(router, 0)
        plan = FaultPlan(
            events=(FaultEvent(kind="conflict", at_query=1, shard=0, count=1),)
        )
        router.enable_robustness(plan, seed=0, sleep=lambda seconds: None)
        router.serve(query, k=5)  # fires the scripted conflict
        router.submit_feedback(query, page_index=3)
        report = router.flush_feedback()
        assert report.committed == 1
        assert report.conflicts == 1
        assert report.retries == 1
        assert report.dead_letter_batches == 0
        assert report.backoff_seconds > 0.0
        assert router.occ_conflicts == 1

    def test_router_dead_letters_then_redelivers(self):
        router = build_router()
        query = query_for_shard(router, 0)
        plan = FaultPlan(
            events=(FaultEvent(kind="conflict", at_query=1, shard=0, count=5),)
        )
        router.enable_robustness(
            plan,
            retry=RetryPolicy(max_attempts=2, base_backoff_seconds=0.0),
            seed=0,
        )
        router.serve(query, k=5)
        router.submit_feedback(query, page_index=3)
        report = router.flush_feedback()
        assert report.committed == 0
        assert report.dead_letter_batches == 1
        assert report.dead_letter_events == 1
        assert len(router.dead_letters) == 1
        # Two more injected conflicts remain: the first redelivery conflicts
        # out again and is re-parked ...
        report = router.redeliver_dead_letters()
        assert report.committed == 0
        assert report.dead_letter_batches == 1
        # ... and once the storm passes (one conflict left), it commits.
        report = router.redeliver_dead_letters()
        assert report.committed == 1
        assert len(router.dead_letters) == 0
        assert router.dead_letters.total_batches == 2  # history preserved

    def test_flush_truthiness_preserved(self):
        router = build_router()
        query = query_for_shard(router, 1)
        assert not router.flush_feedback()  # nothing buffered
        router.submit_feedback(query, page_index=0)
        assert router.flush_feedback()  # legacy truthy contract


# ------------------------------------------------------------ batch faults


class TestBatchFaults:
    def arm(self, kind, count=1):
        router = build_router()
        query = query_for_shard(router, 0)
        events = tuple(
            FaultEvent(kind=kind, at_query=1, shard=0) for _ in range(count)
        )
        router.enable_robustness(FaultPlan(events=events), seed=0)
        router.serve(query, k=5)
        return router, query

    def test_drop_loses_the_batch(self):
        router, query = self.arm("drop")
        router.submit_feedback(query, page_index=1)
        report = router.flush_feedback()
        assert report.committed == 0
        assert report.dropped_events == 1
        assert router._pending_indices[0] == []  # gone, not retried
        assert router.faults.batches_dropped == 1

    def test_duplicate_commits_twice(self):
        router, query = self.arm("duplicate")
        engine = router.engines[0]
        version_before = engine.state.version
        router.submit_feedback(query, page_index=1)
        report = router.flush_feedback()
        assert report.batches == 2
        assert report.committed == 2
        assert engine.state.version == version_before + 2

    def test_reorder_defers_to_next_flush(self):
        router, query = self.arm("reorder")
        router.submit_feedback(query, page_index=1)
        first = router.flush_feedback()
        assert first.committed == 0  # held back
        router.submit_feedback(query, page_index=2)
        second = router.flush_feedback()
        # The fresh batch commits first, then the held one — both land.
        assert second.batches == 2
        assert second.committed == 2


# ----------------------------------------------------- checkpoint / journal


def apply_journaled_batches(state, journal, batches, rng=None):
    """Apply feedback batches to ``state``, journaling like the router."""
    for indices, visits in batches:
        rng_state = None
        if state.mode != "fluid" and rng is not None:
            rng_state = rng.bit_generator.state
        state.apply_visits_at(indices, visits, rng=rng)
        journal.append_commit(indices, visits, rng_state=rng_state)


class TestCheckpointJournal:
    def test_checkpoint_restore_is_bit_identical(self):
        state = PopularityState.from_config(COMMUNITY, np.random.default_rng(1))
        state.set_awareness(np.minimum(np.arange(state.n) % 7, 5).astype(float))
        checkpoint = ShardCheckpoint.capture(state, day=3)
        # Mutating the live state must not leak into the snapshot.
        state.apply_visits_at(np.array([0, 1]), np.array([2.0, 2.0]))
        restored = checkpoint.restore_state()
        assert state_digest(restored, 3) == checkpoint.digest()
        assert state_digest(restored, 3) != state_digest(state, 3)

    def test_checkpoint_npz_round_trip(self, tmp_path):
        state = PopularityState.from_config(COMMUNITY, np.random.default_rng(2))
        checkpoint = ShardCheckpoint.capture(state, day=5)
        path = str(tmp_path / "shard.npz")
        checkpoint.save(path)
        loaded = ShardCheckpoint.load(path)
        assert loaded.digest() == checkpoint.digest()
        assert state_digest(loaded.restore_state(), 5) == checkpoint.digest()

    def test_journal_jsonl_round_trip(self, tmp_path):
        journal = FeedbackJournal()
        rng_state = np.random.default_rng(3).bit_generator.state
        journal.append_commit(
            np.array([4, 5]), np.array([1.0, 2.0]), rng_state=rng_state
        )
        journal.append_bump()
        journal.append_day(np.array([7]), now=2.0)
        path = str(tmp_path / "journal.jsonl")
        journal.to_jsonl(path)
        loaded = FeedbackJournal.from_jsonl(path)
        assert len(loaded) == 3
        assert [entry.kind for entry in loaded.entries] == ["commit", "bump", "day"]
        assert loaded.entries[0].rng_state == rng_state
        np.testing.assert_array_equal(loaded.entries[2].indices, [7])

    @pytest.mark.parametrize("mode", ["fluid", "stochastic"])
    def test_replay_restores_bit_identical(self, mode):
        rng = np.random.default_rng(11)
        state = PopularityState.from_config(COMMUNITY, rng, mode=mode)
        state.set_awareness((np.arange(state.n) % 4).astype(float))
        checkpoint = ShardCheckpoint.capture(state, day=0)
        journal = FeedbackJournal()
        batches = [
            (np.array([1, 2, 1]), np.array([1.0, 2.0, 1.0])),
            (np.array([10, 50]), np.array([3.0, 1.0])),
        ]
        apply_journaled_batches(state, journal, batches, rng=rng)
        state.bump_version()
        journal.append_bump()
        expected = state_digest(state, 0)

        restored = checkpoint.restore_state()
        journal.replay(restored)
        assert state_digest(restored, 0) == expected

    @pytest.mark.parametrize(
        "backend",
        ["numpy", pytest.param("numba", marks=needs_numba)],
    )
    @pytest.mark.parametrize("mode", ["fluid", "stochastic"])
    def test_replay_parity_across_backends(self, backend, mode):
        with use_backend(backend):
            rng = np.random.default_rng(5)
            state = PopularityState.from_config(COMMUNITY, rng, mode=mode)
            state.set_awareness((np.arange(state.n) % 3).astype(float))
            checkpoint = ShardCheckpoint.capture(state, day=0)
            journal = FeedbackJournal()
            apply_journaled_batches(
                state,
                journal,
                [(np.array([0, 1, 2]), np.array([1.0, 1.0, 4.0]))],
                rng=rng,
            )
            restored = checkpoint.restore_state()
            journal.replay(restored)
            assert state_digest(restored, 0) == state_digest(state, 0)

    @settings(max_examples=25, deadline=None)
    @given(
        batches=st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=COMMUNITY.n_pages - 1),
                    st.floats(min_value=0.25, max_value=4.0),
                ),
                min_size=1,
                max_size=6,
            ),
            min_size=1,
            max_size=5,
        ),
        mode=st.sampled_from(["fluid", "stochastic"]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_replay_parity_property(self, batches, mode, seed):
        """Any journaled batch sequence replays to the exact same digest."""
        rng = np.random.default_rng(seed)
        state = PopularityState.from_config(COMMUNITY, rng, mode=mode)
        checkpoint = ShardCheckpoint.capture(state, day=0)
        journal = FeedbackJournal()
        arrays = [
            (
                np.array([pair[0] for pair in batch], dtype=int),
                np.array([pair[1] for pair in batch]),
            )
            for batch in batches
        ]
        apply_journaled_batches(state, journal, arrays, rng=rng)
        restored = checkpoint.restore_state()
        journal.replay(restored)
        assert state_digest(restored, 0) == state_digest(state, 0)


# ------------------------------------------------------------- degradation


class TestDegradation:
    def test_policy_validation_and_escalation(self):
        with pytest.raises(ValueError):
            DegradationPolicy(base_staleness_budget=-1)
        with pytest.raises(ValueError):
            DegradationPolicy(base_staleness_budget=8, max_staleness_budget=4)
        policy = DegradationPolicy(
            base_staleness_budget=4, escalation_step=2, max_staleness_budget=9
        )
        assert [policy.budget(i) for i in (1, 2, 3, 4, 50)] == [4, 6, 8, 9, 9]
        with pytest.raises(ValueError):
            policy.budget(0)

    def test_degraded_serve_then_load_shed(self):
        router = build_router()
        query = query_for_shard(router, 0)
        plan = FaultPlan(
            events=(FaultEvent(kind="crash", at_query=2, shard=0, duration=50),)
        )
        router.enable_robustness(
            plan,
            degradation=DegradationPolicy(
                base_staleness_budget=0,
                escalation_step=0,
                max_staleness_budget=0,
            ),
            seed=0,
        )
        fresh = router.serve(query, k=5)  # up: records last-known-good
        degraded = router.serve(query, k=5)  # crash fired; staleness 0 passes
        np.testing.assert_array_equal(fresh, degraded)
        # Buffered feedback counts toward staleness: budget 0 now sheds.
        router.submit_feedback(query, page_index=1)
        with pytest.raises(LoadShedError):
            router.serve(query, k=5)
        supervisor = router.supervisors[0]
        assert supervisor.degraded_serves == 1
        assert supervisor.load_sheds == 1

    def test_unknown_k_is_shed_immediately(self):
        router = build_router()
        query = query_for_shard(router, 0)
        plan = FaultPlan(
            events=(FaultEvent(kind="crash", at_query=1, shard=0, duration=50),)
        )
        router.enable_robustness(plan, seed=0)
        with pytest.raises(LoadShedError, match="no last-known-good"):
            router.serve(query, k=5)

    def test_flush_skips_downed_shard_backpressure(self):
        router = build_router()
        query_down = query_for_shard(router, 0)
        query_up = query_for_shard(router, 1)
        plan = FaultPlan(
            events=(FaultEvent(kind="crash", at_query=1, shard=0, duration=500),)
        )
        router.enable_robustness(plan, seed=0)
        router.serve(query_up, k=5)  # fires the crash on shard 0
        router.submit_feedback(query_down, page_index=1)
        router.submit_feedback(query_up, page_index=1)
        report = router.flush_feedback()
        # Shard 1 committed; shard 0's buffer is held until recovery.
        assert report.committed == 1
        assert len(router._pending_indices[0]) == 1
        assert len(router._pending_indices[1]) == 0


# ---------------------------------------------------------- cache poisoning


class TestCachePoison:
    def test_poison_versions_forces_revalidation(self):
        cache = ResultPageCache(capacity=4, staleness_budget=10)
        cache.store("key", np.array([1, 2, 3]), version=5)
        assert cache.lookup("key", current_version=5) is not None
        cache.poison_versions(POISON_VERSION)
        # The poisoned stamp is so old no finite budget can accept it.
        assert cache.lookup("key", current_version=5) is None

    def test_exact_boundary_staleness(self):
        cache = ResultPageCache(capacity=4, staleness_budget=2)
        cache.store("key", np.array([1, 2]), version=10)
        assert cache.lookup("key", current_version=12) is not None  # == budget
        cache.store("key", np.array([1, 2]), version=10)
        assert cache.lookup("key", current_version=13) is None  # budget + 1

    def test_invalidate_under_conflict(self):
        """A version bumped by a concurrent writer evicts within budget 0."""
        router = build_router(cache_capacity=4, staleness_budget=0)
        query = query_for_shard(router, 0)
        router.serve(query, k=5)
        engine = router.engines[0]
        hits_before = engine.cache.stats.hits
        router.serve(query, k=5)
        assert engine.cache.stats.hits == hits_before + 1
        engine.state.bump_version()  # concurrent writer commits elsewhere
        router.serve(query, k=5)
        assert engine.cache.stats.hits == hits_before + 1  # stale, recomputed

    def test_poison_event_end_to_end(self):
        router = build_router(cache_capacity=4, staleness_budget=10)
        query = query_for_shard(router, 0)
        plan = FaultPlan(
            events=(FaultEvent(kind="poison", at_query=2, shard=0),)
        )
        router.enable_robustness(plan, seed=0)
        router.serve(query, k=5)  # miss; page cached
        engine = router.engines[0]
        stale_before = engine.cache.stats.stale_evictions
        router.serve(query, k=5)  # poison fires: hit becomes stale eviction
        assert engine.cache.stats.stale_evictions == stale_before + 1
        assert router.faults.poisons_applied == 1


# ----------------------------------------------------------- engine checks


class TestConstructionValidation:
    def test_engine_rejects_mismatched_state(self):
        state = PopularityState.from_config(COMMUNITY.scaled(100))
        with pytest.raises(ValueError, match="100 pages"):
            ServingEngine(COMMUNITY, state=state)

    def test_router_rejects_bad_serving_knobs(self):
        with pytest.raises(ValueError, match="cache_capacity"):
            build_router(cache_capacity=0)
        with pytest.raises(ValueError, match="staleness_budget"):
            build_router(staleness_budget=-1)


# ----------------------------------------------------- telemetry lifecycle


class TestRecorderLifecycle:
    def test_context_manager_flushes_on_exception(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with pytest.raises(RuntimeError, match="mid-stream"):
            with TelemetryRecorder(window=64, out=str(path)) as recorder:
                for _ in range(5):
                    recorder.record_query(0)
                raise RuntimeError("mid-stream")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        # The partial window (5 < 64 queries) still reached the file.
        assert rows
        assert rows[-1]["queries"] == 5.0

    def test_close_is_idempotent(self):
        recorder = TelemetryRecorder(window=16)
        recorder.record_query(0)
        recorder.close()
        rows_after_first_close = len(recorder.rows)
        recorder.close()
        assert len(recorder.rows) == rows_after_first_close

    def test_caller_owned_handle_not_closed(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with open(path, "w") as handle:
            with TelemetryRecorder(window=8, out=handle) as recorder:
                recorder.record_query(0)
            assert not handle.closed  # flushed, but still the caller's


# ------------------------------------------------------------- chaos bench


class TestChaosBench:
    @pytest.mark.parametrize("mode", ["fluid", "stochastic"])
    def test_recovery_is_bit_identical(self, mode):
        report = run_chaos_benchmark(
            n_pages=2_000,
            n_queries=640,
            n_shards=2,
            flush_every=64,
            mode=mode,
            seed=3,
        )
        assert report["fault_crashes"] == 1.0
        assert report["recoveries"] >= 1.0
        assert report["recovery_bit_identical"] == 1.0
        assert report["clean_parity"] == 1.0
        assert report["dead_letter_events"] == 0.0
        assert report["occ_conflicts"] > 0
        assert report["degraded_serves"] > 0
        assert report["degraded_serve_recovery_ratio"] == 1.0

    @pytest.mark.parametrize(
        "backend",
        ["numpy", pytest.param("numba", marks=needs_numba)],
    )
    def test_recovery_parity_across_backends(self, backend):
        report = run_chaos_benchmark(
            n_pages=2_000,
            n_queries=640,
            n_shards=2,
            flush_every=64,
            seed=3,
            backend=backend,
        )
        assert report["kernel_backend"] == backend
        assert report["recovery_bit_identical"] == 1.0
        assert report["clean_parity"] == 1.0

    def test_report_is_deterministic(self):
        kwargs = dict(n_pages=2_000, n_queries=640, n_shards=2, seed=9)
        first = run_chaos_benchmark(**kwargs)
        second = run_chaos_benchmark(**kwargs)
        timing_keys = {"elapsed_seconds", "qps", "recovery_seconds"}
        for key in first:
            if key in timing_keys or key.startswith("telemetry_"):
                continue
            assert first[key] == second[key], key

    def test_disabled_faults_leave_serving_untouched(self):
        """enable + disable returns the router to the no-op hot path."""
        router = build_router()
        router.enable_robustness(FaultPlan(), seed=0)
        router.disable_robustness()
        query = query_for_shard(router, 0)
        router.serve(query, k=5)
        assert router.supervisors is None
        assert not router.faults.enabled
