"""Fixture: suppressed kernel impurity with rationale."""

from numba import njit


@njit
def integer_pow_table(base, exponents):
    out = base
    # contracts: ignore[numba-backend-purity] -- fixture: exponent is provably integral here, no ulp hazard
    out = out**exponents
    return out
