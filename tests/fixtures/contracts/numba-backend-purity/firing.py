"""Fixture: impurities the numba-backend-purity rule must flag."""

import numpy as np
from numba import njit, objmode


@njit(cache=True)
def kernel_with_rng(n):
    return np.random.random(n)  # RNG inside the JIT nest


@njit
def kernel_with_float_pow(base, decay):
    return base**decay  # float ** lowers to libm pow


@njit
def kernel_with_power_call(values):
    return np.power(values, 0.5)


@njit
def kernel_with_objmode(values):
    with objmode(out="float64[:]"):
        out = values.copy()
    return out
