"""Fixture: pure kernels and outside-nest precomputation the rule accepts."""

import numpy as np
from numba import njit


@njit(parallel=True, fastmath=False)
def pure_kernel(values, pow_precomputed):
    # The float pow pass arrives as an array computed by numpy outside.
    total = 0.0
    for i in range(values.size):
        total += values[i] * pow_precomputed[i] + values[i] ** 2
    return total


def host_side(rng, values, decay):
    # RNG draws and the float pow stay in numpy, outside the JIT region.
    noise = rng.random(values.size)
    pow_pass = values**decay
    return pure_kernel(values + noise, pow_pass)
