"""Fixture: clock reads the no-wall-clock-in-kernels rule must flag."""

import time
from datetime import datetime
from time import perf_counter


def timed_kernel(values):
    started = time.perf_counter()
    total = sum(values)
    return total, time.perf_counter() - started


def bare_alias():
    return perf_counter()


def stamped():
    return datetime.now()


def epoch():
    return time.time()
