"""Fixture: deterministic code the wall-clock rule must accept."""


def pure_kernel(values):
    return sum(v * v for v in values)


def simulated_days(day_index, horizon):
    # Simulation time is an integer day counter, never the wall clock.
    return min(day_index + 1, horizon)
