"""Fixture: suppressed clock read with rationale."""

import time


def coarse_progress_stamp():
    return time.time()  # contracts: ignore[no-wall-clock-in-kernels] -- fixture: progress logging only, never feeds results
