"""Fixture: every way the no-unseeded-rng rule must fire."""

import random  # stdlib random import

import numpy as np


def entropy_seeded():
    return np.random.default_rng()  # no seed: OS entropy


def legacy_global_draw(n):
    return np.random.random(n)  # module-level legacy stream


def legacy_shuffle(items):
    np.random.shuffle(items)
    return items


def stdlib_draw():
    return random.random()
