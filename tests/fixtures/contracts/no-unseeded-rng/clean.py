"""Fixture: seeded-generator usage the no-unseeded-rng rule must accept."""

import numpy as np


def seeded(seed):
    return np.random.default_rng(seed)


def constructors(seed):
    sequence = np.random.SeedSequence(seed)
    return np.random.Generator(np.random.PCG64(sequence))


def draw_from_threaded(rng, n):
    return rng.random(n)
