"""Fixture: rationale-bearing suppressions the rule must honor."""

import numpy as np


def state_overwritten_later(saved_state):
    rng = np.random.default_rng()  # contracts: ignore[no-unseeded-rng] -- fixture: state is overwritten below
    rng.bit_generator.state = saved_state
    return rng


def own_line_suppression(n):
    # contracts: ignore[no-unseeded-rng] -- fixture: comment-above form covers the next line
    return np.random.random(n)
