"""Fixture: suppressed direct backend import with rationale."""

# contracts: ignore[kernel-registry-discipline] -- fixture: parity harness compares the raw singletons on purpose
from repro.core.kernels.numpy_backend import BACKEND


def reference():
    return BACKEND
