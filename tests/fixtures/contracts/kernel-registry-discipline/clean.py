"""Fixture: registry-mediated backend access the rule accepts."""

from repro.core.kernels import ROUTE_STATS, get_backend, merge_repair, use_backend


def dispatch(scores, ages, rngs):
    backend = get_backend()
    return backend.rank_day(scores, ages, "random", rngs)


def pinned_region(name):
    with use_backend(name) as backend:
        return backend.describe(), ROUTE_STATS.as_dict()


def repair(order, popularity, dirty):
    return merge_repair(order, popularity, dirty)
