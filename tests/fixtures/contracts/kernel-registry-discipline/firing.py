"""Fixture: direct backend imports the registry rule must flag."""

import repro.core.kernels.numba_backend as nb  # direct module import
from repro.core.kernels import numpy_backend  # member import of a backend
from repro.core.kernels.numpy_backend import NumpyKernelBackend


def pinned_backend():
    return NumpyKernelBackend()


def pinned_module():
    return numpy_backend.BACKEND, nb.BACKEND
