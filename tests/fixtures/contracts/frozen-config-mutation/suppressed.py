"""Fixture: suppressed config write with rationale."""

from repro.serving.config import ServingConfig


def build_mutable_shim(payload):
    config = ServingConfig.from_json(payload)
    # contracts: ignore[frozen-config-mutation] -- fixture: object.__setattr__-style shim documented at the call site
    config.label = "shim"
    return config
