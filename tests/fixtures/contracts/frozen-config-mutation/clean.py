"""Fixture: replace()-based evolution the frozen-config rule accepts."""

from repro.serving.config import ServingConfig


def evolve(base: ServingConfig):
    wider = base.replace(tenants=base.tenants * 2)
    return wider


def build(payload):
    config = ServingConfig.from_json(payload)
    return config.replace(cache_capacity=None)


def read_only(config: ServingConfig):
    return config.tenants, config.shards
