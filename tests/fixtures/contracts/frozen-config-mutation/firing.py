"""Fixture: in-place config writes the frozen-config rule must flag."""

from repro.serving.config import ServingConfig


def mutate_constructed():
    config = ServingConfig(tenants=2)
    config.tenants = 4  # frozen dataclass: would raise at runtime
    return config


def mutate_parsed(payload):
    parsed = ServingConfig.from_json(payload)
    parsed.shards = 8
    return parsed


def mutate_through_attribute(router):
    router.config.cache_capacity = 0


def mutate_annotated(base: ServingConfig):
    base.k = 20
    return base


class Holder:
    def tweak(self):
        self.config.staleness_budget += 1
