"""Fixture: suppressed unprotected store with rationale."""


class SingleProcessState:
    def reset_for_tests(self):
        self.version = 0  # contracts: ignore[occ-write-discipline] -- fixture: test-only reset before any worker attaches
