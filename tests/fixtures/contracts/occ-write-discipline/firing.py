"""Fixture: unprotected stores the occ-write-discipline rule must flag."""


class LeakyState:
    def sneak_version_bump(self):
        self.version += 1  # not a contract method, no lock

    def poke_header(self, value):
        self._header[0] = value

    def fix_up_awareness(self, pool, touched, values):
        pool.aware_count[touched] = values

    def overwrite_quality(self, fresh):
        self.quality = fresh


def module_level_patch(state):
    state._dirty_mask[:] = False
