"""Fixture: contract-method and under-lock stores the rule accepts."""


class DisciplinedState:
    def __init__(self, n):
        self.version = 0  # constructors lay out private state
        self._dirty_mask = [False] * n

    def commit_visits_at(self, indices, visits, version):
        with self._lock:
            if version != self.version:
                return False
            self._popularity[indices] = visits
            self.version += 1
        return True

    def bump_version(self):
        with self._lock:
            self.version += 1

    def helper_under_lock(self, indices):
        with self._lock:
            self._dirty_mask[indices] = True

    def read_only(self):
        return self.version
