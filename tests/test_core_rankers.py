"""Tests for the ranker hierarchy and the policy objects."""

import numpy as np
import pytest

from repro.core.policy import (
    DETERMINISTIC_POLICY,
    RECOMMENDED_POLICY,
    RECOMMENDED_POLICY_SAFE_TOP,
    RankPromotionPolicy,
)
from repro.core.promotion import SelectivePromotionRule, UniformPromotionRule
from repro.core.rankers import (
    NoPromotionRanker,
    PopularityRanker,
    QualityOracleRanker,
    RandomRanker,
    RandomizedPromotionRanker,
    selective_ranker,
    uniform_ranker,
)
from repro.core.rankers_context import RankingContext


def make_context(popularity, quality=None, awareness=None, ages=None, m=10):
    popularity = np.asarray(popularity, dtype=float)
    awareness = popularity.copy() if awareness is None else np.asarray(awareness, dtype=float)
    return RankingContext(
        popularity=popularity,
        awareness=awareness,
        quality=None if quality is None else np.asarray(quality, dtype=float),
        ages=None if ages is None else np.asarray(ages, dtype=float),
        monitored_population=m,
    )


class TestPopularityRanker:
    def test_sorts_by_popularity(self):
        context = make_context([0.1, 0.9, 0.5])
        ranking = PopularityRanker().rank(context, rng=0)
        assert ranking.tolist() == [1, 2, 0]

    def test_age_tie_breaking(self):
        context = make_context([0.5, 0.5, 0.5], ages=[1.0, 10.0, 5.0])
        ranking = PopularityRanker(tie_breaker="age").rank(context, rng=0)
        assert ranking.tolist() == [1, 2, 0]

    def test_index_tie_breaking_is_stable(self):
        context = make_context([0.5, 0.5, 0.5])
        ranking = PopularityRanker(tie_breaker="index").rank(context, rng=0)
        assert ranking.tolist() == [0, 1, 2]

    def test_random_tie_breaking_varies(self):
        context = make_context(np.zeros(50))
        rankings = {tuple(PopularityRanker().rank(context, rng=s)) for s in range(5)}
        assert len(rankings) > 1

    def test_random_tie_breaking_respects_popularity(self):
        context = make_context([0.0, 0.3, 0.0, 0.8])
        for seed in range(5):
            ranking = PopularityRanker().rank(context, rng=seed)
            assert ranking[0] == 3 and ranking[1] == 1

    def test_invalid_tie_breaker(self):
        with pytest.raises(ValueError):
            PopularityRanker(tie_breaker="bogus")

    def test_is_permutation(self):
        context = make_context(np.random.default_rng(0).random(100))
        ranking = PopularityRanker().rank(context, rng=0)
        assert sorted(ranking.tolist()) == list(range(100))


class TestRandomizedPromotionRanker:
    def test_returns_permutation(self):
        context = make_context(np.random.default_rng(1).random(200),
                               awareness=np.zeros(200))
        ranker = RandomizedPromotionRanker(SelectivePromotionRule(), k=1, r=0.2)
        ranking = ranker.rank(context, rng=0)
        assert sorted(ranking.tolist()) == list(range(200))

    def test_r_zero_equals_popularity_ranking(self):
        popularity = np.random.default_rng(2).random(50)
        context = make_context(popularity, awareness=np.ones(50))
        randomized = RandomizedPromotionRanker(SelectivePromotionRule(), k=1, r=0.0)
        baseline = PopularityRanker(tie_breaker="index")
        context_sorted_a = randomized.rank(context, rng=0)
        context_sorted_b = baseline.rank(context, rng=0)
        # No zero-awareness pages and r=0: ordering by popularity either way.
        assert np.array_equal(
            np.asarray(popularity)[context_sorted_a].round(12),
            np.asarray(popularity)[context_sorted_b].round(12),
        )

    def test_protected_top_result_with_k2(self):
        popularity = np.linspace(1.0, 0.1, 30)
        awareness = np.concatenate([np.ones(20), np.zeros(10)])
        context = make_context(popularity, awareness=awareness)
        ranker = RandomizedPromotionRanker(SelectivePromotionRule(), k=2, r=0.9)
        for seed in range(10):
            assert ranker.rank(context, rng=seed)[0] == 0

    def test_k1_r_high_promotes_unexplored_to_top(self):
        popularity = np.linspace(1.0, 0.5, 20)
        awareness = np.concatenate([np.ones(19), [0.0]])
        context = make_context(popularity, awareness=awareness)
        ranker = RandomizedPromotionRanker(SelectivePromotionRule(), k=1, r=0.99)
        ranking = ranker.rank(context, rng=0)
        assert ranking[0] == 19

    def test_selective_promotes_only_zero_awareness(self):
        # Promoted pages are exactly the zero-awareness ones; with r=1 they
        # all appear before the deterministic remainder (k=1).
        popularity = np.array([0.9, 0.0, 0.8, 0.0])
        awareness = np.array([1.0, 0.0, 1.0, 0.0])
        context = make_context(popularity, awareness=awareness)
        ranker = RandomizedPromotionRanker(SelectivePromotionRule(), k=1, r=1.0)
        ranking = ranker.rank(context, rng=1)
        assert set(ranking[:2].tolist()) == {1, 3}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomizedPromotionRanker(SelectivePromotionRule(), k=0, r=0.1)
        with pytest.raises(ValueError):
            RandomizedPromotionRanker(SelectivePromotionRule(), k=1, r=1.5)

    def test_is_randomized_flag(self):
        assert RandomizedPromotionRanker(SelectivePromotionRule()).is_randomized
        assert not PopularityRanker(tie_breaker="index").is_randomized

    def test_convenience_constructors(self):
        assert isinstance(selective_ranker(0.1, 2).promotion_rule, SelectivePromotionRule)
        uniform = uniform_ranker(0.2, 1)
        assert isinstance(uniform.promotion_rule, UniformPromotionRule)
        assert uniform.promotion_rule.probability == pytest.approx(0.2)

    def test_no_promotion_ranker_is_deterministic_order(self):
        context = make_context([0.3, 0.7, 0.1], awareness=np.zeros(3))
        ranking = NoPromotionRanker().rank(context, rng=0)
        assert ranking.tolist() == [1, 0, 2]


class TestQualityOracleRanker:
    def test_sorts_by_quality(self):
        context = make_context([0.9, 0.1, 0.5], quality=[0.1, 0.9, 0.5])
        assert QualityOracleRanker().rank(context).tolist() == [1, 2, 0]

    def test_requires_quality(self):
        with pytest.raises(ValueError):
            QualityOracleRanker().rank(make_context([0.1, 0.2]))


class TestRandomRanker:
    def test_is_permutation(self):
        context = make_context(np.random.default_rng(0).random(64))
        ranking = RandomRanker().rank(context, rng=0)
        assert sorted(ranking.tolist()) == list(range(64))

    def test_varies_with_seed(self):
        context = make_context(np.random.default_rng(0).random(64))
        a = RandomRanker().rank(context, rng=0)
        b = RandomRanker().rank(context, rng=1)
        assert not np.array_equal(a, b)


class TestRankPromotionPolicy:
    def test_recommended_policy_values(self):
        assert RECOMMENDED_POLICY.rule == "selective"
        assert RECOMMENDED_POLICY.r == pytest.approx(0.1)
        assert RECOMMENDED_POLICY.k == 1
        assert RECOMMENDED_POLICY_SAFE_TOP.k == 2

    def test_deterministic_policy(self):
        assert DETERMINISTIC_POLICY.is_deterministic
        assert isinstance(DETERMINISTIC_POLICY.build_ranker(), PopularityRanker)

    def test_r_zero_is_deterministic(self):
        assert RankPromotionPolicy("selective", 1, 0.0).is_deterministic

    def test_build_selective_ranker(self):
        ranker = RankPromotionPolicy("selective", 2, 0.3).build_ranker()
        assert isinstance(ranker, RandomizedPromotionRanker)
        assert isinstance(ranker.promotion_rule, SelectivePromotionRule)
        assert ranker.k == 2 and ranker.r == pytest.approx(0.3)

    def test_build_uniform_ranker(self):
        ranker = RankPromotionPolicy("uniform", 1, 0.25).build_ranker()
        assert isinstance(ranker.promotion_rule, UniformPromotionRule)
        assert ranker.promotion_rule.probability == pytest.approx(0.25)

    def test_invalid_rule_rejected(self):
        with pytest.raises(ValueError):
            RankPromotionPolicy("magic", 1, 0.1)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            RankPromotionPolicy("selective", 0, 0.1)

    def test_describe(self):
        assert "Selective" in RECOMMENDED_POLICY.describe()
        assert "No randomization" in DETERMINISTIC_POLICY.describe()
