"""Tests for repro.community.page and repro.community.lifecycle."""

import numpy as np
import pytest

from repro.community.config import CommunityConfig
from repro.community.lifecycle import FixedLifetimeLifecycle, PoissonLifecycle
from repro.community.page import Page, PagePool


class TestPage:
    def test_awareness_and_popularity(self):
        page = Page(page_id=1, quality=0.4, aware_monitored_users=50,
                    monitored_population=100)
        assert page.awareness == pytest.approx(0.5)
        assert page.popularity == pytest.approx(0.2)

    def test_record_visit_new_user(self):
        page = Page(page_id=1, quality=0.4, monitored_population=10)
        page.record_monitored_visit(user_is_new=True)
        assert page.aware_monitored_users == 1

    def test_record_visit_known_user_no_change(self):
        page = Page(page_id=1, quality=0.4, aware_monitored_users=3,
                    monitored_population=10)
        page.record_monitored_visit(user_is_new=False)
        assert page.aware_monitored_users == 3

    def test_awareness_capped_at_population(self):
        page = Page(page_id=1, quality=0.4, aware_monitored_users=10,
                    monitored_population=10)
        page.record_monitored_visit(user_is_new=True)
        assert page.aware_monitored_users == 10

    def test_age(self):
        page = Page(page_id=1, quality=0.4, created_at=10.0)
        assert page.age(25.0) == pytest.approx(15.0)

    def test_invalid_quality_rejected(self):
        with pytest.raises(ValueError):
            Page(page_id=1, quality=1.5)

    def test_invalid_awareness_rejected(self):
        with pytest.raises(ValueError):
            Page(page_id=1, quality=0.5, aware_monitored_users=20,
                 monitored_population=10)


class TestPagePool:
    def test_initial_state(self):
        pool = PagePool(np.array([0.1, 0.2, 0.3]), monitored_population=10)
        assert pool.n == 3
        assert np.allclose(pool.awareness, 0.0)
        assert np.allclose(pool.popularity, 0.0)
        assert pool.zero_awareness_mask().all()

    def test_add_awareness_updates_popularity(self):
        pool = PagePool(np.array([0.5, 0.5]), monitored_population=10)
        pool.add_awareness(0, 5)
        assert pool.awareness[0] == pytest.approx(0.5)
        assert pool.popularity[0] == pytest.approx(0.25)
        assert pool.awareness[1] == 0.0

    def test_add_awareness_clipped(self):
        pool = PagePool(np.array([0.5]), monitored_population=10)
        pool.add_awareness(0, 50)
        assert pool.awareness[0] == pytest.approx(1.0)

    def test_add_awareness_bulk(self):
        pool = PagePool(np.array([0.5, 0.5, 0.5]), monitored_population=4)
        pool.add_awareness_bulk(np.array([1.0, 2.0, 10.0]))
        assert np.allclose(pool.aware_count, [1.0, 2.0, 4.0])

    def test_replace_pages_resets_state(self):
        pool = PagePool(np.array([0.5, 0.6]), monitored_population=10)
        pool.add_awareness(1, 5)
        old_ids = pool.page_ids.copy()
        replaced = pool.replace_pages(np.array([1]), now=7.0)
        assert pool.aware_count[1] == 0.0
        assert pool.created_at[1] == 7.0
        assert pool.quality[1] == pytest.approx(0.6)
        assert pool.page_ids[1] != old_ids[1]
        assert replaced.tolist() == [1]

    def test_replace_no_pages_is_noop(self):
        pool = PagePool(np.array([0.5]), monitored_population=10)
        assert pool.replace_pages(np.array([], dtype=int), now=1.0).size == 0

    def test_ages(self):
        pool = PagePool(np.array([0.5]), monitored_population=10, created_at=2.0)
        assert pool.ages(5.0)[0] == pytest.approx(3.0)

    def test_as_pages_roundtrip(self):
        pool = PagePool(np.array([0.2, 0.3]), monitored_population=10)
        pool.add_awareness(0, 4)
        pages = pool.as_pages()
        assert len(pages) == 2
        assert pages[0].aware_monitored_users == 4
        assert pages[1].quality == pytest.approx(0.3)

    def test_from_config(self):
        config = CommunityConfig(n_pages=20, n_users=10, monitored_fraction=0.5)
        pool = PagePool.from_config(config, rng=0)
        assert pool.n == 20
        assert pool.monitored_population == config.n_monitored_users

    def test_rejects_invalid_quality(self):
        with pytest.raises(ValueError):
            PagePool(np.array([1.5]), monitored_population=10)

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            PagePool(np.array([]), monitored_population=10)


class TestPoissonLifecycle:
    def test_expected_lifetime_inverse_of_rate(self):
        assert PoissonLifecycle(0.01).expected_lifetime() == pytest.approx(100.0)

    def test_from_lifetime(self):
        assert PoissonLifecycle.from_lifetime(50.0).rate_per_day == pytest.approx(0.02)

    def test_step_replaces_roughly_expected_fraction(self):
        pool = PagePool(np.full(20_000, 0.3), monitored_population=10)
        lifecycle = PoissonLifecycle(rate_per_day=0.1)
        replaced = lifecycle.step(pool, now=1.0, rng=0)
        fraction = replaced.size / pool.n
        assert 0.07 < fraction < 0.12

    def test_step_resets_awareness_of_replaced(self):
        pool = PagePool(np.full(100, 0.3), monitored_population=10)
        pool.add_awareness_bulk(np.full(100, 5.0))
        lifecycle = PoissonLifecycle(rate_per_day=0.5)
        replaced = lifecycle.step(pool, now=3.0, rng=1)
        assert replaced.size > 0
        assert np.all(pool.aware_count[replaced] == 0.0)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonLifecycle(0.0)


class TestFixedLifetimeLifecycle:
    def test_pages_live_exactly_lifetime(self):
        pool = PagePool(np.full(5, 0.3), monitored_population=10)
        lifecycle = FixedLifetimeLifecycle(lifetime_days=10.0)
        assert lifecycle.step(pool, now=9.0).size == 0
        assert lifecycle.step(pool, now=10.0).size == 5

    def test_expected_lifetime(self):
        assert FixedLifetimeLifecycle(30.0).expected_lifetime() == pytest.approx(30.0)

    def test_staggered_creation_times(self):
        pool = PagePool(np.full(4, 0.3), monitored_population=10)
        pool.created_at = np.array([-9.0, -5.0, -1.0, 0.0])
        lifecycle = FixedLifetimeLifecycle(lifetime_days=10.0)
        replaced = lifecycle.step(pool, now=1.0)
        assert replaced.tolist() == [0]
