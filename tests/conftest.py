"""Shared fixtures for the test suite.

Tests use deliberately tiny communities and short horizons so the whole
suite stays fast; the benchmark harness covers larger scales.
"""

import numpy as np
import pytest

from repro.community import CommunityConfig, PagePool, PowerLawQualityDistribution
from repro.simulation import SimulationConfig


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_community():
    """A very small community for fast simulator tests."""
    return CommunityConfig(
        n_pages=200,
        n_users=40,
        monitored_fraction=0.25,
        visits_per_user_per_day=1.0,
        expected_lifetime_days=50.0,
    )


@pytest.fixture
def small_community():
    """A slightly larger community used by integration tests."""
    return CommunityConfig(
        n_pages=600,
        n_users=60,
        monitored_fraction=0.20,
        visits_per_user_per_day=1.0,
        expected_lifetime_days=80.0,
        quality_distribution=PowerLawQualityDistribution(),
    )


@pytest.fixture
def tiny_pool(tiny_community, rng):
    """A page pool for the tiny community."""
    return PagePool.from_config(tiny_community, rng)


@pytest.fixture
def fast_sim_config():
    """A short stochastic simulation configuration."""
    return SimulationConfig(warmup_days=60, measure_days=60, mode="stochastic")
