"""Tests for the streaming telemetry layer (``repro.telemetry``).

Four contracts are pinned here:

* **P² accuracy** — the streaming quantile is bit-identical to
  ``numpy.percentile`` through its exact storage phase (n <= 5), always
  bracketed by the observed minimum and maximum afterwards, and within
  the documented ``q +/- 0.15`` empirical band for continuous i.i.d.
  streams at n >= 100 (hypothesis-fuzzed);
* **window exactness** — a trailing-window aggregate is a difference of
  cumulative sums, so while the stream is no longer than the window every
  windowed counter equals the end-of-run total bit for bit, for serving
  streams and for fluid/stochastic batch-simulation runs on every
  available kernel backend;
* **observation is passive** — a live recorder must not change a single
  served page or counter: runs with telemetry on and off produce
  identical router stats, and batch-simulation results are bit-identical
  with kernel spans installed or not;
* **disabled means free** — the null recorder is inert, and components
  default to it.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.community.config import DEFAULT_COMMUNITY
from repro.core import kernels
from repro.core.kernels import get_backend, use_backend
from repro.core.policy import RECOMMENDED_POLICY, RankPromotionPolicy
from repro.serving.bench import (
    measure_telemetry_overhead,
    seed_steady_state_awareness,
)
from repro.serving.cache import CacheStats, ResultPageCache
from repro.serving.figures import (
    load_telemetry_rows,
    sweep_tradeoff_figures,
    telemetry_series_figure,
)
from repro.serving.router import ShardedRouter
from repro.serving.sweep import SweepVariant, run_sweep, variant_grid
from repro.serving.workload import (
    StreamingWorkload,
    WorkloadConfig,
    record_trace,
    run_stream,
)
from repro.simulation.batch import run_batch
from repro.simulation.config import SimulationConfig
from repro.telemetry import (
    BASE_FIELDS,
    NULL_RECORDER,
    NullRecorder,
    P2Quantile,
    QuantileBank,
    SlidingWindowCounters,
    SpanTable,
    TelemetryRecorder,
    TimedKernelBackend,
    ratio,
)
from repro.utils.rng import derive_seed, spawn_rngs


@pytest.fixture(autouse=True)
def clean_dispatch(monkeypatch):
    """Isolate tests from ambient backend/instrumentation state."""
    monkeypatch.delenv(kernels.ENV_VAR, raising=False)
    kernels._reset_dispatch_state()
    yield
    kernels._reset_dispatch_state()


# ------------------------------------------------------------------ P²


class TestP2Quantile:
    def test_rejects_degenerate_quantiles(self):
        for q in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                P2Quantile(q)

    def test_nan_before_first_observation(self):
        assert math.isnan(P2Quantile(0.5).value)

    @given(
        values=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=5
        ),
        q=st.sampled_from([0.1, 0.25, 0.5, 0.9, 0.99]),
    )
    @settings(max_examples=200, deadline=None)
    def test_storage_phase_bit_identical_to_numpy(self, values, q):
        sketch = P2Quantile(q)
        for value in values:
            sketch.observe(value)
        assert sketch.value == float(np.percentile(values, q * 100.0))

    @given(
        values=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=6, max_size=300
        ),
        q=st.sampled_from([0.1, 0.5, 0.9]),
    )
    @settings(max_examples=200, deadline=None)
    def test_estimate_bracketed_by_observed_extremes(self, values, q):
        sketch = P2Quantile(q)
        for value in values:
            sketch.observe(value)
        assert min(values) <= sketch.value <= max(values)
        assert sketch.count == len(values)

    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(100, 2_000),
        q=st.sampled_from([0.25, 0.5, 0.75, 0.9]),
    )
    @settings(max_examples=60, deadline=None)
    def test_continuous_iid_band(self, seed, n, q):
        """For continuous i.i.d. data the estimate sits in the q±0.15 band."""
        rng = np.random.default_rng(seed)
        values = rng.random(n)
        sketch = P2Quantile(q)
        for value in values:
            sketch.observe(float(value))
        low = float(np.quantile(values, max(0.0, q - 0.15)))
        high = float(np.quantile(values, min(1.0, q + 0.15)))
        assert low <= sketch.value <= high

    def test_bank_labels_and_count(self):
        bank = QuantileBank((0.5, 0.9, 0.999))
        assert bank.count == 0
        for value in (1.0, 2.0, 3.0):
            bank.observe(value)
        values = bank.values(prefix="p")
        assert set(values) == {"p50", "p90", "p99_9"}
        assert bank.count == 3


# -------------------------------------------------------------- window


class TestSlidingWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowCounters(["a"], window=0)
        with pytest.raises(ValueError):
            SlidingWindowCounters(["a"], window=4, buckets=0)
        with pytest.raises(ValueError):
            SlidingWindowCounters(["a", "a"], window=4)

    def test_windowed_equals_cumulative_while_stream_fits(self):
        window = SlidingWindowCounters(["hits", "sum"], window=64, buckets=8)
        for event in range(64):
            window.add(0, 1.0)
            window.add(1, 0.1 * event)
            if window.tick():
                _, _, _, values = window.delta()
                assert values == window.cumulative  # bit for bit
                window.rotate()

    @given(
        amounts=st.lists(st.integers(0, 5), min_size=1, max_size=200),
        window_size=st.integers(1, 64),
        buckets=st.integers(1, 8),
    )
    @settings(max_examples=100, deadline=None)
    def test_window_delta_matches_naive_rescan(self, amounts, window_size, buckets):
        """After any rotation pattern the delta equals a naive re-sum."""
        window = SlidingWindowCounters(["x"], window=window_size, buckets=buckets)
        boundaries = [0]
        for amount in amounts:
            window.add(0, float(amount))
            if window.tick():
                window.rotate()
                boundaries.append(window.events)
        start_event, end_event, _, values = window.delta()
        assert end_event == len(amounts)
        # The baseline snapshot is the oldest retained bucket boundary.
        retained = boundaries[-window.capacity:]
        assert start_event == retained[0]
        assert values[0] == float(sum(amounts[start_event:]))

    def test_row_names_fields(self):
        window = SlidingWindowCounters(["hits", "misses"], window=8, buckets=2)
        window.add(0, 3.0)
        window.tick()
        row = window.row()
        assert row["hits"] == 3.0
        assert row["misses"] == 0.0
        assert row["event_end"] == 1.0

    def test_ratio_helper(self):
        assert ratio(1.0, 0.0) is None
        assert ratio(1.0, 2.0) == 0.5


# --------------------------------------------------------------- spans


class TestSpans:
    def test_span_table_accumulates(self):
        table = SpanTable()
        table.observe("rank", 0.5)
        table.observe("rank", 0.25)
        table.observe("flush", 1.0)
        report = table.as_dict()
        assert report["span_rank_calls"] == 2.0
        assert report["span_rank_seconds"] == 0.75
        assert report["span_flush_calls"] == 1.0

    def test_timed_backend_is_transparent_and_records(self):
        table = SpanTable()
        raw = get_backend("numpy")
        timed = TimedKernelBackend(raw, table)
        scores = np.random.default_rng(0).random((3, 50))
        ours = timed.rank_day(
            scores, None, "index", list(spawn_rngs(0, 3))
        )
        theirs = raw.rank_day(
            scores, None, "index", list(spawn_rngs(0, 3))
        )
        assert np.array_equal(ours, theirs)
        report = table.as_dict()
        assert report["span_rank_day@numpy_calls"] == 1.0
        assert report["span_rank_day@numpy_seconds"] >= 0.0

    def test_kernel_instrumentation_hook(self):
        recorder = TelemetryRecorder(window=8)
        recorder.install_kernel_spans()
        try:
            backend = get_backend("numpy")
            assert isinstance(backend, TimedKernelBackend)
            # The registry cache must keep the raw backend underneath.
            assert not isinstance(backend._inner, TimedKernelBackend)
            backend.rank_day(
                np.zeros((1, 4)), None, "index", list(spawn_rngs(0, 1))
            )
            assert recorder.spans.as_dict()["span_rank_day@numpy_calls"] == 1.0
        finally:
            recorder.close()
        # close() unhooks the proxy factory again.
        assert not isinstance(get_backend("numpy"), TimedKernelBackend)


# ------------------------------------------------------------ recorder


class TestNullRecorder:
    def test_inert(self):
        recorder = NullRecorder()
        assert recorder.enabled is False
        recorder.record_query(0)
        recorder.record_hit(1)
        recorder.record_miss()
        recorder.record_occ_rejection(2)
        recorder.record_feedback(0.5)
        recorder.record_flush(3)
        recorder.record_repair()
        recorder.record_full_sort()
        recorder.record_day_step(0, 0.1)
        recorder.emit_row({})
        assert recorder.snapshot() == {}
        recorder.close()

    def test_components_default_to_null(self):
        router = ShardedRouter.from_community(
            DEFAULT_COMMUNITY.scaled(200), RECOMMENDED_POLICY, n_shards=2, seed=0
        )
        assert router.telemetry is NULL_RECORDER
        for engine in router.engines:
            assert engine.telemetry is NULL_RECORDER
            assert engine.cache.telemetry is NULL_RECORDER


class TestTelemetryRecorder:
    def test_validation(self):
        with pytest.raises(ValueError):
            TelemetryRecorder(n_shards=0)
        with pytest.raises(ValueError):
            TelemetryRecorder(quantile_sample=0)

    def test_counters_and_snapshot(self):
        recorder = TelemetryRecorder(
            window=8, buckets=2, n_shards=2, quantile_sample=1
        )
        recorder.record_hit(2)
        recorder.record_query(0)
        recorder.record_miss()
        recorder.record_query(1)
        recorder.record_occ_rejection(5)
        recorder.record_query(1)
        recorder.record_feedback(0.25)
        recorder.record_flush(4)
        recorder.record_repair()
        recorder.record_full_sort()
        recorder.close()
        snapshot = recorder.snapshot()
        assert snapshot["telemetry_queries"] == 3.0
        assert snapshot["telemetry_cache_hits"] == 1.0
        # An OCC rejection counts as a miss too, mirroring CacheStats.
        assert snapshot["telemetry_cache_misses"] == 2.0
        assert snapshot["telemetry_occ_rejections"] == 1.0
        assert snapshot["telemetry_staleness_sum"] == 2.0
        assert snapshot["telemetry_shard0_queries"] == 1.0
        assert snapshot["telemetry_shard1_queries"] == 2.0
        assert snapshot["telemetry_feedback_events"] == 1.0
        assert snapshot["telemetry_clicked_quality_sum"] == 0.25
        assert snapshot["telemetry_flushes"] == 1.0
        assert snapshot["telemetry_flush_size_sum"] == 4.0
        assert snapshot["telemetry_repairs"] == 1.0
        assert snapshot["telemetry_full_sorts"] == 1.0
        assert snapshot["telemetry_cache_hit_rate"] == pytest.approx(1 / 3)
        assert snapshot["telemetry_qpc"] == 0.25
        # Quantile feed saw both staleness observations (sample stride 1).
        assert recorder.staleness_quantiles.count == 2

    def test_quantile_sampling_stride(self):
        recorder = TelemetryRecorder(window=8, quantile_sample=4)
        for _ in range(8):
            recorder.record_hit(1)
        assert recorder.staleness_quantiles.count == 2
        recorder.close()

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with TelemetryRecorder(window=4, buckets=2, out=str(path), label="t") as r:
            for event in range(5):
                r.record_hit(event % 2)
                r.record_query(0)
        rows = load_telemetry_rows(str(path))
        assert rows == r.rows
        for row in rows:
            assert row["kind"] == "window"
            assert row["stream"] == "t"
            assert row["event_end"] > row["event_start"] or row["event_start"] == 0
            assert set(BASE_FIELDS) <= set(row)
        # 5 events over bucket size 2: boundary rows at 2 and 4, final
        # partial row at 5 from close().
        assert [row["event_end"] for row in rows] == [2.0, 4.0, 5.0]

    def test_flush_window_skips_exact_boundary(self):
        recorder = TelemetryRecorder(window=4, buckets=2)
        for _ in range(4):
            recorder.record_query(0)
        emitted = len(recorder.rows)
        assert recorder.flush_window() is None
        assert len(recorder.rows) == emitted
        recorder.close()


def _serving_run(n_queries, recorder=None, seed=7):
    router = ShardedRouter.from_community(
        DEFAULT_COMMUNITY.scaled(600),
        RECOMMENDED_POLICY,
        n_shards=2,
        cache_capacity=32,
        staleness_budget=2,
        seed=seed,
    )
    seed_steady_state_awareness(router, rng=derive_seed(seed, "warm"))
    workload = StreamingWorkload(
        WorkloadConfig(n_distinct_queries=64, k=10, feedback_rate=0.3,
                       flush_every=32),
        seed=derive_seed(seed, "stream"),
    )
    if recorder is not None:
        router.attach_telemetry(recorder)
    try:
        run_stream(router, n_queries, workload=workload)
    finally:
        if recorder is not None:
            router.attach_telemetry(NULL_RECORDER)
    return router


class TestWindowedVsAggregate:
    @pytest.mark.parametrize("backend", kernels.available_backends())
    def test_serving_full_window_row_equals_totals(self, backend):
        """window > stream: the final row IS the end-of-run aggregate.

        The window is strictly larger than the stream so no bucket
        boundary fires mid-run (a boundary row at the last query would
        miss that query's own feedback, which run_stream submits after
        serve returns); close() then flushes a single partial row whose
        baseline is the zero origin — the full cumulative totals.
        """
        with use_backend(backend):
            recorder = TelemetryRecorder(
                window=512, buckets=1, n_shards=2, quantile_sample=1
            )
            router = _serving_run(400, recorder)
            recorder.close()
        (row,) = [r for r in recorder.rows if r["kind"] == "window"]
        assert row["event_start"] == 0.0
        assert row["event_end"] == 400.0
        totals = dict(zip(recorder.window.fields, recorder.window.cumulative, strict=True))
        for field, total in totals.items():
            assert row[field] == total  # bit for bit
        # And the recorder agrees with the serving stack's own books.
        stats = router.cache_stats()
        assert row["queries"] == float(router.queries_routed)
        assert row["cache_hits"] == float(stats.hits)
        assert row["cache_misses"] == float(stats.misses)
        assert row["occ_rejections"] == float(stats.stale_evictions)
        assert row["shard0_queries"] == float(router.queries_per_shard[0])
        assert row["shard1_queries"] == float(router.queries_per_shard[1])

    def test_telemetry_does_not_perturb_serving(self):
        recorder = TelemetryRecorder(window=64, n_shards=2)
        recorder.install_kernel_spans()
        with_telemetry = _serving_run(300, recorder)
        recorder.close()
        without = _serving_run(300, None)
        assert with_telemetry.stats() == without.stats()

    @pytest.mark.parametrize("backend", kernels.available_backends())
    @pytest.mark.parametrize("mode", ["fluid", "stochastic"])
    def test_batch_day_rows_and_parity(self, backend, mode):
        community = DEFAULT_COMMUNITY.scaled(300)
        config = SimulationConfig(
            warmup_days=3, measure_days=5, mode=mode, snapshot_awareness=False
        )
        ranker = RECOMMENDED_POLICY.build_ranker()
        with use_backend(backend):
            baseline = run_batch(
                community, ranker, config, rngs=spawn_rngs(3, 4), n_workers=1
            )
            recorder = TelemetryRecorder(window=8, buckets=1, label="sim")
            recorder.install_kernel_spans()
            try:
                observed = run_batch(
                    community, ranker, config, rngs=spawn_rngs(3, 4),
                    n_workers=1, telemetry=recorder,
                )
            finally:
                recorder.close()
        # Observation is passive: per-replicate QPC is bit-identical.
        assert [r.qpc_absolute for r in observed] == [
            r.qpc_absolute for r in baseline
        ]
        day_rows = [row for row in recorder.rows if row["kind"] == "day"]
        assert [row["day"] for row in day_rows] == [float(d) for d in range(8)]
        snapshot = recorder.snapshot()
        assert snapshot["telemetry_span_day_step_calls"] == 8.0
        # The span total is the same float sum as the per-day rows.
        total = 0.0
        for row in day_rows:
            total += row["seconds"]
        assert snapshot["telemetry_span_day_step_seconds"] == total


# ----------------------------------------------------- cache stats (sat 2)


class TestCacheStatsSnapshot:
    def test_snapshot_is_single_source_of_truth(self):
        stats = CacheStats(hits=3, misses=2, stale_evictions=1,
                           capacity_evictions=4, invalidations=5)
        snapshot = stats.snapshot()
        assert snapshot == {
            "hits": 3,
            "misses": 2,
            "staleness_rejections": 1,
            "capacity_evictions": 4,
            "invalidations": 5,
            "lookups": 5,
            "hit_rate": 0.6,
        }
        as_dict = stats.as_dict()
        assert as_dict["cache_hits"] == 3.0
        assert as_dict["cache_invalidations"] == 5.0

    def test_invalidate_counts(self):
        cache = ResultPageCache(capacity=4)
        cache.store("a", np.arange(3), version=0)
        cache.invalidate()
        cache.invalidate()
        assert cache.stats.invalidations == 2
        assert cache.lookup("a", current_version=0) is None

    def test_lookup_records_into_recorder(self):
        recorder = TelemetryRecorder(window=8, quantile_sample=1)
        cache = ResultPageCache(capacity=4, staleness_budget=1,
                                telemetry=recorder)
        cache.store("a", np.arange(3), version=0)
        assert cache.lookup("a", current_version=1) is not None  # hit
        assert cache.lookup("b", current_version=1) is None      # miss
        assert cache.lookup("a", current_version=5) is None      # stale
        recorder.close()
        snapshot = recorder.snapshot()
        assert snapshot["telemetry_cache_hits"] == 1.0
        assert snapshot["telemetry_cache_misses"] == 2.0
        assert snapshot["telemetry_occ_rejections"] == 1.0
        assert snapshot["telemetry_staleness_sum"] == 1.0
        # Recorder mirrors CacheStats exactly.
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.stale_evictions == 1


# ------------------------------------------------------- figures / bench


class TestFigures:
    def test_sweep_tradeoff_and_series_figures(self):
        variants = variant_grid(
            ks=[8], rs=[0.0, 0.2], staleness_budgets=[0, 2], shard_counts=[1]
        )
        workload = StreamingWorkload(
            WorkloadConfig(n_distinct_queries=32, k=8, feedback_rate=0.3,
                           flush_every=16),
            seed=derive_seed(11, "sweep-stream"),
        )
        trace = record_trace(workload, 160)
        recorder = TelemetryRecorder(window=32, label="sweep")
        try:
            result = run_sweep(
                DEFAULT_COMMUNITY.scaled(300), variants, trace, seed=11,
                n_workers=1, telemetry=recorder,
            )
        finally:
            recorder.close()
        figures = sweep_tradeoff_figures(result)
        names = [figure.experiment for figure in figures]
        assert "sweep-qpc" in names
        assert "sweep-hit-rate" in names
        for figure in figures:
            assert figure.series
            assert figure.render()
        sweep_rows = [r for r in recorder.rows if r["kind"] == "sweep"]
        assert sweep_rows, "live sweep emits per-variant boundary rows"
        series = telemetry_series_figure(recorder.rows, kind="sweep")
        assert series is not None
        assert any("[" in s.name for s in series.series)

    def test_series_figure_empty(self):
        assert telemetry_series_figure([], kind="window") is None


class TestOverheadBench:
    def test_overhead_report_shape(self):
        report = measure_telemetry_overhead(
            n_pages=1_000, n_queries=200, repetitions=1
        )
        assert report["parity_bit_identical"] == 1.0
        assert report["qps_disabled"] > 0
        assert report["qps_enabled"] > 0
        assert report["telemetry_overhead_ratio"] > 0
        assert "overhead_us_per_query" in report
