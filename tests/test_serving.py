"""Tests for the online serving subsystem.

The load-bearing property is serving/offline *parity*: replaying simulated
days through a :class:`ServingEngine` (cache off, equal seeds) must produce
bit-identical visit allocations to the :class:`Simulator`, in both fluid
and stochastic modes.  The rest covers the incremental state, the
version-stamped cache, the sharded router and the workload generator.
"""

import numpy as np
import pytest

from repro.community import CommunityConfig, PagePool
from repro.core.policy import (
    DETERMINISTIC_POLICY,
    RECOMMENDED_POLICY,
    RankPromotionPolicy,
)
from repro.serving import (
    PopularityState,
    ResultPageCache,
    ServingEngine,
    ShardedRouter,
    StreamingWorkload,
    WorkloadConfig,
    run_stream,
)
from repro.serving.router import stable_shard_hash
from repro.simulation import SimulationConfig, Simulator, replay_day


@pytest.fixture
def serving_community():
    return CommunityConfig(
        n_pages=250,
        n_users=50,
        monitored_fraction=0.3,
        visits_per_user_per_day=1.0,
        expected_lifetime_days=40.0,
    )


# ----------------------------------------------------------------- parity


@pytest.mark.parametrize("mode", ["fluid", "stochastic"])
@pytest.mark.parametrize(
    "policy",
    [RECOMMENDED_POLICY, DETERMINISTIC_POLICY, RankPromotionPolicy("uniform", k=2, r=0.2)],
)
def test_replay_day_matches_simulator(serving_community, mode, policy):
    """One replayed day (and the next 24) allocate visits identically."""
    seed = 1234
    simulator = Simulator(
        serving_community,
        policy.build_ranker(),
        SimulationConfig(warmup_days=1, measure_days=1, mode=mode, seed=seed),
    )
    engine = ServingEngine(serving_community, policy, mode=mode, seed=seed)
    for day in range(25):
        expected = simulator.step()
        observed = replay_day(engine)
        np.testing.assert_array_equal(expected, observed, err_msg="day %d" % day)
    np.testing.assert_array_equal(
        simulator.pool.aware_count, engine.state.pool.aware_count
    )
    np.testing.assert_array_equal(simulator.pool.page_ids, engine.state.pool.page_ids)
    assert simulator.day == engine.day


def test_replay_day_ignores_cache(serving_community):
    """The parity path never reads or writes the result cache."""
    cache = ResultPageCache(capacity=4)
    engine = ServingEngine(serving_community, cache=cache, seed=0)
    replay_day(engine)
    assert cache.stats.lookups == 0
    assert len(cache) == 0


# ------------------------------------------------------------------ state


def test_state_version_monotone_and_dirty_tracking(serving_community):
    state = PopularityState.from_config(serving_community, rng=0)
    assert state.version == 0
    state.apply_visits_at(np.array([3, 7, 3]), np.array([1.0, 2.0, 1.0]))
    assert state.version == 1
    dirty = state.consume_dirty()
    assert set(dirty) == {3, 7}
    assert state.consume_dirty().size == 0  # consumed exactly once
    state.pool.replace_pages(np.array([7]), now=1.0)
    state.note_replaced(np.array([7]))
    assert state.version == 2
    assert state.popularity[7] == 0.0
    assert set(state.consume_dirty()) == {7}


def test_state_sparse_update_matches_full_vector(serving_community):
    """O(batch) sparse updates equal the full-vector fluid update."""
    sparse = PopularityState.from_config(serving_community, rng=5)
    full = PopularityState.from_config(serving_community, rng=5)
    visits = np.zeros(sparse.n)
    visits[[2, 9, 100]] = [4.0, 1.0, 2.5]
    sparse.apply_visits_at(np.array([2, 9, 100]), np.array([4.0, 1.0, 2.5]))
    full.apply_visit_feedback(visits)
    np.testing.assert_allclose(sparse.pool.aware_count, full.pool.aware_count)
    np.testing.assert_allclose(sparse.popularity, full.popularity)


def test_state_popularity_cache_consistent(serving_community):
    state = PopularityState.from_config(serving_community, rng=2)
    rng = np.random.default_rng(0)
    for _ in range(10):
        idx = rng.integers(0, state.n, size=8)
        state.apply_visits_at(idx, np.ones(8))
    np.testing.assert_allclose(state.popularity, state.pool.popularity)


# ----------------------------------------------------------------- engine


def test_top_k_returns_distinct_valid_pages(serving_community):
    engine = ServingEngine(serving_community, RECOMMENDED_POLICY, seed=3)
    for k in (1, 5, 50, 250, 400):
        page = engine.top_k(k)
        expected = min(k, serving_community.n_pages)
        assert page.size == expected
        assert np.unique(page).size == expected
        assert page.min() >= 0 and page.max() < serving_community.n_pages


def test_deterministic_top_k_matches_full_sort(serving_community):
    """With distinct popularity values the maintained order is exact."""
    engine = ServingEngine(serving_community, DETERMINISTIC_POLICY, seed=4)
    rng = np.random.default_rng(7)
    # Distinct awareness counts -> distinct popularity (qualities distinct w.p. 1).
    engine.state.set_awareness(
        rng.permutation(engine.state.n) % engine.state.pool.monitored_population
    )
    page = engine.top_k(10)
    expected = np.argsort(-engine.state.popularity, kind="stable")[:10]
    np.testing.assert_array_equal(np.sort(engine.state.popularity[page])[::-1],
                                  engine.state.popularity[expected])


def test_incremental_repair_matches_full_resort(serving_community):
    """After feedback, the repaired order equals a from-scratch sort."""
    engine = ServingEngine(serving_community, DETERMINISTIC_POLICY, seed=8)
    rng = np.random.default_rng(11)
    for round_ in range(12):
        idx = rng.integers(0, engine.state.n, size=6)
        engine.apply_feedback(idx, rng.integers(1, 5, size=6).astype(float))
        engine.top_k(5)  # triggers the repair
        pop = engine.state.popularity
        served = pop[engine._order]
        assert np.all(np.diff(served) <= 1e-15), "order not descending, round %d" % round_
    assert engine.repairs >= 10
    assert engine.full_sorts == 1  # only the initial sort was a full one


def test_selective_promotion_pool_tracked(serving_community):
    engine = ServingEngine(serving_community, RECOMMENDED_POLICY, seed=9)
    engine.top_k(5)
    np.testing.assert_array_equal(
        engine._promoted_mask, engine.state.pool.aware_count < 1.0 - 1e-9
    )
    engine.apply_feedback(np.arange(20), np.full(20, 50.0))
    engine.top_k(5)
    np.testing.assert_array_equal(
        engine._promoted_mask, engine.state.pool.aware_count < 1.0 - 1e-9
    )


def test_protected_prefix_never_promoted(serving_community):
    """With k_start > 1 the top slots always hold the popularity leaders."""
    policy = RankPromotionPolicy(rule="selective", k=3, r=0.5)
    engine = ServingEngine(serving_community, policy, seed=10)
    rng = np.random.default_rng(1)
    engine.state.set_awareness(
        rng.integers(1, engine.state.pool.monitored_population, size=engine.state.n).astype(float)
    )
    # All pages aware -> empty selective pool except none; force some zeros.
    leaders = np.argsort(-engine.state.popularity, kind="stable")[:2]
    for _ in range(20):
        page = engine.top_k(10)
        assert set(page[:2]) == set(leaders)


def test_cold_start_ties_not_pinned_to_index_order(serving_community):
    """Zero-awareness ties are served in random (per-engine) order, not 0..k-1."""
    pages = [
        ServingEngine(serving_community, DETERMINISTIC_POLICY, seed=s).top_k(5)
        for s in (1, 2, 3)
    ]
    assert any(not np.array_equal(pages[0], other) for other in pages[1:])
    assert not np.array_equal(pages[0], np.arange(5))


# ------------------------------------------------------------------ cache


def test_cache_hit_within_staleness_budget():
    cache = ResultPageCache(capacity=4, staleness_budget=2)
    page = np.array([1, 2, 3])
    cache.store("key", page, version=10)
    assert cache.lookup("key", current_version=10) is not None
    assert cache.lookup("key", current_version=12) is not None  # lag == budget
    assert cache.stats.hits == 2


def test_cache_stale_entry_evicted():
    cache = ResultPageCache(capacity=4, staleness_budget=2)
    cache.store("key", np.array([1]), version=10)
    assert cache.lookup("key", current_version=13) is None  # lag 3 > budget 2
    assert cache.stats.stale_evictions == 1
    assert len(cache) == 0


def test_cache_lru_eviction_order():
    cache = ResultPageCache(capacity=2, staleness_budget=0)
    cache.store("a", np.array([0]), 0)
    cache.store("b", np.array([1]), 0)
    cache.lookup("a", 0)  # refresh a
    cache.store("c", np.array([2]), 0)  # evicts b (least recently used)
    assert cache.lookup("b", 0) is None
    assert cache.lookup("a", 0) is not None
    assert cache.lookup("c", 0) is not None
    assert cache.stats.capacity_evictions == 1


def test_cache_staleness_boundary_exact():
    """Lag == budget is served; lag == budget + 1 evicts, precisely."""
    cache = ResultPageCache(capacity=4, staleness_budget=3)
    cache.store("key", np.array([7]), version=5)
    assert cache.lookup("key", current_version=8) is not None  # lag == budget
    assert cache.stats.stale_evictions == 0
    assert cache.lookup("key", current_version=9) is None  # budget + 1
    assert cache.stats.stale_evictions == 1
    assert len(cache) == 0


def test_cache_stats_survive_invalidate():
    """invalidate() drops entries but keeps the accumulated counters."""
    cache = ResultPageCache(capacity=4, staleness_budget=0)
    cache.store("key", np.array([1, 2]), version=0)
    assert cache.lookup("key", 0) is not None
    assert cache.lookup("missing", 0) is None
    hits, misses = cache.stats.hits, cache.stats.misses
    cache.invalidate()
    assert len(cache) == 0
    assert (cache.stats.hits, cache.stats.misses) == (hits, misses)
    assert cache.lookup("key", 0) is None  # entries gone, stats keep counting
    assert cache.stats.misses == misses + 1
    assert cache.stats.hit_rate == pytest.approx(
        cache.stats.hits / cache.stats.lookups
    )


def test_engine_serve_rejects_bad_k(serving_community):
    """serve() validates k before touching the cache (mirrors top_k)."""
    from repro.serving.engine import ServingEngine

    engine = ServingEngine(
        serving_community, cache=ResultPageCache(capacity=4), seed=0
    )
    with pytest.raises(ValueError, match="k must be >= 1"):
        engine.serve(0)
    with pytest.raises(ValueError, match="k must be >= 1"):
        engine.top_k(-3)
    assert engine.cache.stats.lookups == 0  # no phantom miss was recorded


def test_cached_pages_are_isolated_from_caller_mutation():
    cache = ResultPageCache(capacity=2, staleness_budget=0)
    original = np.array([5, 6, 7])
    cache.store("key", original, version=0)
    original[0] = 99  # caller mutates its own array after store
    np.testing.assert_array_equal(cache.lookup("key", 0), [5, 6, 7])
    with pytest.raises(ValueError):
        cache.lookup("key", 0)[0] = 1  # served hits are read-only


def test_engine_serves_from_cache_until_feedback(serving_community):
    cache = ResultPageCache(capacity=4, staleness_budget=0)
    engine = ServingEngine(serving_community, DETERMINISTIC_POLICY, cache=cache, seed=12)
    first = engine.serve(10)
    second = engine.serve(10)
    np.testing.assert_array_equal(first, second)
    assert cache.stats.hits == 1
    engine.apply_feedback(np.array([int(first[-1])]), np.array([25.0]))
    engine.serve(10)  # version advanced past budget -> recompute
    assert cache.stats.stale_evictions == 1


# ----------------------------------------------------------------- router


def test_router_stable_hashing(serving_community):
    router = ShardedRouter.from_community(
        serving_community, RECOMMENDED_POLICY, n_shards=4, seed=0
    )
    for query in ("q1", "q2", 42, ("tuple", 3)):
        assert router.shard_for(query) == router.shard_for(query)
    assert stable_shard_hash("q1") == stable_shard_hash("q1")
    shards = {router.shard_for("query-%d" % i) for i in range(200)}
    assert shards == set(range(4))  # every shard receives traffic


def test_router_shard_sizes_sum_to_requested_pages(serving_community):
    """Non-divisible page counts are spread over shards, never dropped."""
    router = ShardedRouter.from_community(
        serving_community, RECOMMENDED_POLICY, n_shards=3, seed=0
    )
    assert router.n_pages == serving_community.n_pages
    sizes = [engine.state.n for engine in router.engines]
    assert max(sizes) - min(sizes) <= 1
    with pytest.raises(ValueError):
        ShardedRouter.from_community(
            serving_community, RECOMMENDED_POLICY,
            n_shards=serving_community.n_pages + 1,
        )


def test_router_feedback_batched_until_flush(serving_community):
    router = ShardedRouter.from_community(
        serving_community, RECOMMENDED_POLICY, n_shards=2, cache_capacity=None, seed=1
    )
    before = [engine.state.version for engine in router.engines]
    page = router.serve("hot-query", 5)
    router.submit_feedback("hot-query", int(page[0]))
    router.submit_feedback("hot-query", int(page[1]))
    assert [e.state.version for e in router.engines] == before  # buffered only
    report = router.flush_feedback()
    assert report  # truthy: something committed
    assert report.committed == 2
    assert report.batches == 1
    assert report.conflicts == report.retries == report.dead_letter_events == 0
    shard = router.shard_for("hot-query")
    # One batch -> exactly one version bump on the target shard.
    assert router.engines[shard].state.version == before[shard] + 1


def test_router_from_community_validates_serving_knobs(serving_community):
    """Bad cache/staleness knobs fail at construction, not mid-serve."""
    with pytest.raises(ValueError):
        ShardedRouter.from_community(
            serving_community, RECOMMENDED_POLICY, cache_capacity=0
        )
    with pytest.raises(ValueError):
        ShardedRouter.from_community(
            serving_community, RECOMMENDED_POLICY, staleness_budget=-1
        )


def test_router_advance_day_flushes_and_ages(serving_community):
    router = ShardedRouter.from_community(
        serving_community, RECOMMENDED_POLICY, n_shards=2, seed=2
    )
    page = router.serve("q", 3)
    router.submit_feedback("q", int(page[0]))
    router.advance_day()
    assert all(engine.day == 1 for engine in router.engines)
    assert router.feedback_buffered == 1
    assert sum(len(buf) for buf in router._pending_indices) == 0


# --------------------------------------------------------------- workload


def test_workload_zipf_skew_and_determinism():
    workload_a = StreamingWorkload(
        WorkloadConfig(n_distinct_queries=100, zipf_exponent=1.2), seed=5
    )
    workload_b = StreamingWorkload(
        WorkloadConfig(n_distinct_queries=100, zipf_exponent=1.2), seed=5
    )
    draws_a = workload_a.sample_queries(5000)
    draws_b = workload_b.sample_queries(5000)
    np.testing.assert_array_equal(draws_a, draws_b)
    counts = np.bincount(draws_a, minlength=100)
    assert counts[0] > counts[10] > counts[90]  # head >> tail


def test_run_stream_rejects_conflicting_seed_and_workload(serving_community):
    router = ShardedRouter.from_community(
        serving_community, RECOMMENDED_POLICY, n_shards=1, seed=0
    )
    with pytest.raises(ValueError):
        run_stream(router, 10, workload=StreamingWorkload(seed=1), seed=2)
    with pytest.raises(ValueError):
        run_stream(router, -1)


def test_run_stream_end_to_end(serving_community):
    router = ShardedRouter.from_community(
        serving_community,
        RECOMMENDED_POLICY,
        n_shards=2,
        cache_capacity=8,
        staleness_budget=1,
        seed=3,
    )
    workload = StreamingWorkload(
        WorkloadConfig(n_distinct_queries=40, k=5, feedback_rate=0.5, flush_every=16),
        seed=4,
    )
    stats = run_stream(router, 300, workload=workload)
    assert stats.queries == 300
    assert stats.queries_per_second > 0
    assert stats.feedback_events > 0
    assert stats.extra["cache_hit_rate"] > 0.5
    assert stats.extra["flushes"] >= 1
