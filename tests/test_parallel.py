"""Tests for worker-count resolution and its wiring into run_batch."""

from unittest import mock

import pytest

from repro.core.policy import RECOMMENDED_POLICY
from repro.simulation import SimulationConfig, run_batch
from repro.utils.parallel import MIN_TASKS_PER_WORKER, default_workers


class TestDefaultWorkers:
    def test_explicit_request_honoured_and_clamped(self):
        assert default_workers(100, requested=4) == 4
        assert default_workers(3, requested=8) == 3  # never more than tasks
        assert default_workers(10, requested=0) == 1
        assert default_workers(10, requested=-2) == 1

    def test_trivial_task_counts(self):
        assert default_workers(0) == 1
        assert default_workers(1) == 1
        assert default_workers(1, requested=16) == 1

    def test_auto_respects_cpu_count(self):
        with mock.patch("repro.utils.parallel.os.cpu_count", return_value=4):
            # Plenty of tasks: one worker per core.
            assert default_workers(64) == 4
            # Too few tasks per prospective worker: stay in-process.
            assert default_workers(MIN_TASKS_PER_WORKER - 1) == 1
            # Exactly one worker's worth engages no pool.
            assert default_workers(MIN_TASKS_PER_WORKER) == 1
            # Two workers' worth engages two.
            assert default_workers(2 * MIN_TASKS_PER_WORKER) == 2

    def test_auto_single_core_stays_in_process(self):
        with mock.patch("repro.utils.parallel.os.cpu_count", return_value=1):
            assert default_workers(1000) == 1

    def test_cpu_count_unknown_falls_back_to_one(self):
        with mock.patch("repro.utils.parallel.os.cpu_count", return_value=None):
            assert default_workers(1000) == 1

    def test_min_tasks_per_worker_validated(self):
        with pytest.raises(ValueError):
            default_workers(10, min_tasks_per_worker=0)


class TestMaxWorkersEnvOverride:
    """REPRO_MAX_WORKERS caps auto-sizing (container CPU quotas lie)."""

    def test_override_caps_cpu_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "2")
        with mock.patch("repro.utils.parallel.os.cpu_count", return_value=16):
            assert default_workers(1000) == 2

    def test_override_above_cpu_count_is_not_a_raise(self, monkeypatch):
        # The override is a cap, not a target: a generous quota never
        # engages more workers than the host reports.
        monkeypatch.setenv("REPRO_MAX_WORKERS", "64")
        with mock.patch("repro.utils.parallel.os.cpu_count", return_value=4):
            assert default_workers(1000) == 4

    def test_explicit_request_wins_over_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "1")
        assert default_workers(100, requested=4) == 4

    @pytest.mark.parametrize("raw", ["", "  ", "zero", "-3", "0"])
    def test_invalid_or_nonpositive_values_ignored(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_MAX_WORKERS", raw)
        with mock.patch("repro.utils.parallel.os.cpu_count", return_value=4):
            assert default_workers(1000) == 4


class TestRunBatchAutoWorkers:
    def test_auto_workers_results_identical(self, tiny_community):
        """run_batch(n_workers=None) auto-shards without changing results.

        The ROADMAP bugfix: ``None`` used to silently mean single-process;
        it now means "size the pool from os.cpu_count()" — and because each
        replicate keeps its own generator wherever it runs, the results are
        identical whatever the resolved worker count is.
        """
        config = SimulationConfig(warmup_days=2, measure_days=3, seed=11)
        ranker = RECOMMENDED_POLICY.build_ranker()
        auto = run_batch(tiny_community, ranker, config, replicates=4)
        forced = run_batch(
            tiny_community, ranker, config, replicates=4, n_workers=2
        )
        assert [r.qpc_absolute for r in auto] == [
            r.qpc_absolute for r in forced
        ]
