"""Tests for the rank/visit relationships of the analytical model."""

import numpy as np
import pytest

from repro.analysis.awareness import awareness_distribution
from repro.analysis.rank_visit import (
    RankToVisitLaw,
    expected_promoted_visit_rate,
    popularity_to_rank,
    selective_rank_shift,
    uniform_rank_adjustment,
)


class TestRankToVisitLaw:
    def test_total_visits_normalized(self):
        law = RankToVisitLaw(n_pages=500, total_visits=100.0)
        assert law.visits_by_rank().sum() == pytest.approx(100.0)

    def test_power_law_ratio(self):
        law = RankToVisitLaw(n_pages=100, total_visits=10.0)
        assert law(1.0) / law(4.0) == pytest.approx(8.0)

    def test_rank_clipped_to_bounds(self):
        law = RankToVisitLaw(n_pages=10, total_visits=10.0)
        assert law(0.5) == pytest.approx(law(1.0))
        assert law(100.0) == pytest.approx(law(10.0))

    def test_custom_exponent(self):
        law = RankToVisitLaw(n_pages=100, total_visits=10.0, exponent=1.0)
        assert law(1.0) / law(2.0) == pytest.approx(2.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            RankToVisitLaw(n_pages=0, total_visits=10.0)
        with pytest.raises(ValueError):
            RankToVisitLaw(n_pages=10, total_visits=0.0)


def build_awareness(quality_values, visit_rate, death_rate=0.01, m=10):
    return {
        float(q): awareness_distribution(float(q), visit_rate, death_rate, m)
        for q in quality_values
    }


class TestPopularityToRank:
    def test_rank_decreases_with_popularity(self):
        quality_values = np.array([0.1, 0.4])
        counts = np.array([50.0, 50.0])
        awareness = build_awareness(quality_values, lambda x: np.full_like(np.asarray(x, float), 0.2))
        x = np.array([0.0, 0.05, 0.2, 0.39])
        ranks = popularity_to_rank(x, quality_values, counts, awareness)
        assert np.all(np.diff(ranks) <= 0)

    def test_rank_at_least_one(self):
        quality_values = np.array([0.4])
        counts = np.array([10.0])
        awareness = build_awareness(quality_values, lambda x: np.full_like(np.asarray(x, float), 0.2))
        ranks = popularity_to_rank(np.array([0.5]), quality_values, counts, awareness)
        assert ranks[0] == pytest.approx(1.0)

    def test_rank_bounded_by_community_size(self):
        quality_values = np.array([0.2, 0.4])
        counts = np.array([100.0, 100.0])
        awareness = build_awareness(quality_values, lambda x: np.full_like(np.asarray(x, float), 5.0),
                                    death_rate=0.0001)
        ranks = popularity_to_rank(np.array([0.0]), quality_values, counts, awareness)
        assert ranks[0] <= 201.0

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            popularity_to_rank(np.array([0.1]), np.array([0.4]), np.array([1.0, 2.0]), {})


class TestSelectiveRankShift:
    def test_ranks_above_k_unchanged(self):
        base = np.array([1.0, 2.0, 5.0])
        shifted = selective_rank_shift(base, k=3, r=0.5, expected_zero_awareness=100.0)
        assert shifted[0] == pytest.approx(1.0)
        assert shifted[1] == pytest.approx(2.0)
        assert shifted[2] > 5.0

    def test_shift_capped_by_pool_size(self):
        base = np.array([1000.0])
        shifted = selective_rank_shift(base, k=1, r=0.5, expected_zero_awareness=10.0)
        assert shifted[0] == pytest.approx(1010.0)

    def test_shift_formula_matches_paper(self):
        base = np.array([50.0])
        shifted = selective_rank_shift(base, k=1, r=0.2, expected_zero_awareness=1e9)
        expected = 50.0 + 0.2 * (50.0 - 1 + 1) / 0.8
        assert shifted[0] == pytest.approx(expected)

    def test_r_one_rejected(self):
        with pytest.raises(ValueError):
            selective_rank_shift(np.array([10.0]), k=1, r=1.0, expected_zero_awareness=5.0)


class TestExpectedPromotedVisitRate:
    def test_zero_pool_gives_zero(self):
        law = RankToVisitLaw(n_pages=100, total_visits=10.0)
        assert expected_promoted_visit_rate(law, 0.0, k=1, r=0.1) == 0.0

    def test_r_zero_gives_zero(self):
        law = RankToVisitLaw(n_pages=100, total_visits=10.0)
        assert expected_promoted_visit_rate(law, 10.0, k=1, r=0.0) == 0.0

    def test_single_promoted_page_r_one_gets_top_open_slot(self):
        law = RankToVisitLaw(n_pages=100, total_visits=10.0)
        rate = expected_promoted_visit_rate(law, 1.0, k=3, r=1.0)
        assert rate == pytest.approx(float(law(3.0)))

    def test_rate_decreases_with_pool_size(self):
        law = RankToVisitLaw(n_pages=1000, total_visits=100.0)
        small_pool = expected_promoted_visit_rate(law, 10.0, k=1, r=0.1)
        large_pool = expected_promoted_visit_rate(law, 500.0, k=1, r=0.1)
        assert small_pool > large_pool

    def test_rate_increases_with_r(self):
        law = RankToVisitLaw(n_pages=1000, total_visits=100.0)
        low = expected_promoted_visit_rate(law, 50.0, k=1, r=0.05)
        high = expected_promoted_visit_rate(law, 50.0, k=1, r=0.5)
        assert high > low

    def test_total_mass_conserved(self):
        # Promoted pages cannot receive more than the total visit budget.
        law = RankToVisitLaw(n_pages=200, total_visits=50.0)
        pool = 80.0
        rate = expected_promoted_visit_rate(law, pool, k=1, r=0.3)
        assert rate * pool <= 50.0 + 1e-9


class TestUniformRankAdjustment:
    def test_returns_visits_not_ranks(self):
        law = RankToVisitLaw(n_pages=100, total_visits=10.0)
        visits = uniform_rank_adjustment(np.array([1.0, 50.0]), law, k=1, r=0.1)
        assert visits[0] <= 10.0
        assert visits[0] > visits[1]

    def test_r_zero_equals_plain_f2(self):
        law = RankToVisitLaw(n_pages=100, total_visits=10.0)
        base = np.array([1.0, 10.0, 50.0])
        assert np.allclose(uniform_rank_adjustment(base, law, k=1, r=0.0), law(base))

    def test_promotion_lifts_deep_ranks(self):
        law = RankToVisitLaw(n_pages=1000, total_visits=100.0)
        deep = np.array([900.0])
        plain = float(law(deep)[0])
        promoted = float(uniform_rank_adjustment(deep, law, k=1, r=0.2)[0])
        assert promoted > plain
