"""Tests for the CI benchmark regression gate (repro.utils.benchgate)."""

import json

import pytest

from repro.utils.benchgate import (
    check_measurements,
    collect_measurements,
    load_baselines,
    run_gate,
)


@pytest.fixture
def baseline_file(tmp_path):
    path = tmp_path / "floor.json"
    path.write_text(
        json.dumps(
            {
                "tolerance": 0.25,
                "benchmarks": {
                    "bench_a[32]": {"speedup": 4.0},
                    "bench_b": {"speedup": 2.0, "hit_rate": 0.9},
                },
            }
        )
    )
    return path


@pytest.fixture
def measurement_file(tmp_path):
    path = tmp_path / "out.json"
    path.write_text(
        json.dumps(
            {
                "benchmarks": [
                    {
                        "name": "bench_a[32]",
                        "extra_info": {"speedup": 3.9, "scale": "smoke"},
                    },
                    {
                        "name": "bench_b",
                        "extra_info": {"speedup": 2.2, "hit_rate": 0.95},
                    },
                    {"name": "ungated_bench", "extra_info": {"speedup": 0.1}},
                ]
            }
        )
    )
    return path


def test_gate_passes_within_tolerance(baseline_file, measurement_file):
    findings, tolerance = run_gate([measurement_file], baseline_file)
    assert tolerance == 0.25
    assert len(findings) == 3  # ungated benchmarks are ignored
    assert all(finding.ok for finding in findings)


def test_gate_fails_beyond_tolerance(baseline_file, measurement_file):
    # 25% tolerance on a reference of 4.0 puts the floor at 3.0; a measured
    # 2.9 (a ~28% regression) must fail while 3.1 passes.
    measurements = collect_measurements([measurement_file])
    measurements["bench_a[32]"]["speedup"] = 2.9
    baselines, tolerance = load_baselines(baseline_file)
    findings = check_measurements(measurements, baselines, tolerance)
    failed = [f for f in findings if not f.ok]
    assert [f.benchmark for f in failed] == ["bench_a[32]"]
    measurements["bench_a[32]"]["speedup"] = 3.1
    findings = check_measurements(measurements, baselines, tolerance)
    assert all(f.ok for f in findings)


def test_artificial_2x_slowdown_fails(baseline_file, measurement_file):
    """The documented self-test: halved throughput must trip the gate."""
    findings, _ = run_gate([measurement_file], baseline_file, scale=0.5)
    assert any(not finding.ok for finding in findings)


def test_missing_benchmark_or_metric_fails(baseline_file, tmp_path):
    sparse = tmp_path / "sparse.json"
    sparse.write_text(
        json.dumps(
            {
                "benchmarks": [
                    {"name": "bench_b", "extra_info": {"speedup": 2.2}}
                ]
            }
        )
    )
    findings, _ = run_gate([sparse], baseline_file)
    failed = {(f.benchmark, f.metric) for f in findings if not f.ok}
    # bench_a missing entirely, bench_b missing its hit_rate metric.
    assert failed == {("bench_a[32]", "speedup"), ("bench_b", "hit_rate")}
    for finding in findings:
        assert isinstance(finding.describe(), str)


def test_measurements_merged_across_files(baseline_file, tmp_path):
    one = tmp_path / "one.json"
    one.write_text(
        json.dumps(
            {"benchmarks": [{"name": "bench_a[32]", "extra_info": {"speedup": 4.2}}]}
        )
    )
    two = tmp_path / "two.json"
    two.write_text(
        json.dumps(
            {
                "benchmarks": [
                    {"name": "bench_b", "extra_info": {"speedup": 2.0, "hit_rate": 0.9}}
                ]
            }
        )
    )
    findings, _ = run_gate([one, two], baseline_file)
    assert all(finding.ok for finding in findings)


def test_invalid_baseline_files_rejected(tmp_path):
    empty = tmp_path / "empty.json"
    empty.write_text(json.dumps({"benchmarks": {}}))
    with pytest.raises(ValueError):
        load_baselines(empty)
    bad_tolerance = tmp_path / "bad.json"
    bad_tolerance.write_text(
        json.dumps({"tolerance": 1.5, "benchmarks": {"a": {"m": 1.0}}})
    )
    with pytest.raises(ValueError):
        load_baselines(bad_tolerance)


def test_committed_baseline_file_loads():
    """The floors CI actually uses must stay well-formed."""
    from pathlib import Path

    committed = (
        Path(__file__).resolve().parent.parent
        / "benchmarks" / "baselines" / "bench-floor.json"
    )
    baselines, tolerance = load_baselines(committed)
    assert 0 < tolerance < 1
    assert "test_bench_sweep_lockstep[32]" in baselines
    assert "test_bench_batch_pagedays[32]" in baselines
    assert "test_bench_serving_topk[200000]" in baselines
